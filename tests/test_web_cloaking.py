"""Server-side cloaking guard tests (Section III-B.2)."""

import pytest

from repro.web.cloaking import (
    ActivationWindowGuard,
    GeoGuard,
    IPBlocklistGuard,
    TokenGuard,
    UserAgentGuard,
)
from repro.web.context import ClientContext, IP_DATACENTER, IP_MOBILE
from repro.web.http import HttpRequest


def _request(url="https://evil.example/tok123", user_agent="", timestamp=0.0):
    request = HttpRequest.get(url, timestamp=timestamp)
    if user_agent:
        request.headers.set("User-Agent", user_agent)
    return request


class TestActivationWindow:
    def test_denies_before_activation(self):
        guard = ActivationWindowGuard(activate_at=100.0)
        assert not guard.evaluate(_request(timestamp=50.0), ClientContext()).allowed

    def test_allows_inside_window(self):
        guard = ActivationWindowGuard(activate_at=100.0, deactivate_at=200.0)
        assert guard.evaluate(_request(timestamp=150.0), ClientContext()).allowed

    def test_denies_after_deactivation(self):
        guard = ActivationWindowGuard(activate_at=100.0, deactivate_at=200.0)
        assert not guard.evaluate(_request(timestamp=250.0), ClientContext()).allowed


class TestUserAgentGuard:
    def test_mobile_only_blocks_desktop(self):
        guard = UserAgentGuard.mobile_only()
        desktop = _request(user_agent="Mozilla/5.0 (Windows NT 10.0) Chrome/120")
        mobile = _request(user_agent="Mozilla/5.0 (iPhone; CPU iPhone OS 17_0) Mobile Safari")
        assert not guard.evaluate(desktop, ClientContext()).allowed
        assert guard.evaluate(mobile, ClientContext()).allowed

    def test_block_substrings(self):
        guard = UserAgentGuard(block_substrings=("HeadlessChrome",))
        headless = _request(user_agent="HeadlessChrome/120")
        assert not guard.evaluate(headless, ClientContext()).allowed

    def test_no_constraints_allows(self):
        assert UserAgentGuard().evaluate(_request(user_agent="anything"), ClientContext()).allowed


class TestIPBlocklistGuard:
    def test_blocks_known_scanner(self):
        guard = IPBlocklistGuard()
        context = ClientContext(ip="52.1.2.3", known_scanner=True)
        assert not guard.evaluate(_request(), context).allowed

    def test_blocks_explicit_ip(self):
        guard = IPBlocklistGuard(blocked_ips=frozenset({"9.9.9.9"}))
        request = _request()
        request.client_ip = "9.9.9.9"
        assert not guard.evaluate(request, ClientContext()).allowed

    def test_blocks_cloud_types(self):
        guard = IPBlocklistGuard(block_cloud=True)
        assert not guard.evaluate(_request(), ClientContext(ip_type=IP_DATACENTER)).allowed
        assert guard.evaluate(_request(), ClientContext(ip_type=IP_MOBILE)).allowed

    def test_cloud_allowed_when_disabled(self):
        guard = IPBlocklistGuard(block_cloud=False)
        assert guard.evaluate(_request(), ClientContext(ip_type=IP_DATACENTER)).allowed


class TestGeoGuard:
    def test_country_filter(self):
        guard = GeoGuard(("BR", "IN"))
        assert guard.evaluate(_request(), ClientContext(country="br")).allowed
        assert not guard.evaluate(_request(), ClientContext(country="FR")).allowed


class TestTokenGuard:
    def test_path_token_flow(self):
        guard = TokenGuard()
        guard.issue("dhfYWfH", "victim@corp.example")
        good = _request("https://evil.example/dhfYWfH")
        assert guard.evaluate(good, ClientContext()).allowed
        assert guard.token_owner["dhfYWfH"] == "victim@corp.example"

    def test_unknown_token_denied(self):
        guard = TokenGuard()
        guard.issue("valid")
        assert not guard.evaluate(_request("https://evil.example/other"), ClientContext()).allowed

    def test_disabled_token_denied(self):
        """"Attackers can disable individual tokens"."""
        guard = TokenGuard()
        guard.issue("one-shot")
        request = _request("https://evil.example/one-shot")
        assert guard.evaluate(request, ClientContext()).allowed
        guard.disable("one-shot")
        assert not guard.evaluate(request, ClientContext()).allowed

    def test_query_parameter_token(self):
        guard = TokenGuard(parameter="t")
        guard.issue("abc")
        assert guard.evaluate(_request("https://evil.example/page?t=abc"), ClientContext()).allowed
        assert not guard.evaluate(_request("https://evil.example/page?t=zzz"), ClientContext()).allowed
        assert not guard.evaluate(_request("https://evil.example/page"), ClientContext()).allowed

    def test_no_token_in_bare_path(self):
        guard = TokenGuard()
        guard.issue("x")
        assert not guard.evaluate(_request("https://evil.example/"), ClientContext()).allowed
