"""Storage-fault injection and the crash-consistent durable-write layer.

Covers the determinism contract of :class:`~repro.storage.faults.
StorageFaultEngine` (every decision a pure hash of ``(seed, path key,
op, op_index)``), the rewind semantics of :class:`~repro.storage.
durable.DurableFile` (a failed append never leaves interior corruption
for a retry to concatenate onto), the bounded-retry discipline, torn
renames, and the end-to-end contract: a full run under the ``heavy``
storage-fault profile exports byte-identical records to a fault-free
run on both executors, and its checkpoint is fsck-clean.
"""

from __future__ import annotations

import errno
import json
import pathlib

import pytest

from repro.cli import main
from repro.core.export import encode_record_line
from repro.runner import CheckpointStore
from repro.runner.checkpoint import ManifestCorrupt
from repro.storage.durable import (
    RETRY_ATTEMPTS,
    DurableFile,
    durable_write_text,
    install_storage_faults,
    retrying,
)
from repro.storage.faults import (
    STORAGE_FAULT_PROFILES,
    FsyncFailure,
    InjectedDiskFull,
    ShortWrite,
    StorageFaultEngine,
    StorageFaultProfile,
    TornRename,
    storage_fault_profile,
)

SEED, SCALE = 31, 0.02


@pytest.fixture(autouse=True)
def _clean_engine():
    """The engine is process-global: never leak one into other tests."""
    yield
    install_storage_faults(None)


class FakeEngine:
    """A scripted stand-in: fail exactly the operations the test says.

    Duck-types the three interception points of StorageFaultEngine, so
    tests control the failure schedule instead of probabilities.
    """

    active = True

    def __init__(self):
        #: Popped per write: None = succeed, (error, prefix) = inject.
        self.write_script: list = []
        self.fail_fsync = 0
        self.fail_replace = 0
        #: Only writes to these basenames are scripted ("" = all).
        self.only = ""

    def _mine(self, path) -> bool:
        return not self.only or pathlib.PurePath(path).name == self.only

    def write_fault(self, path, nbytes):
        if self.write_script and self._mine(path):
            return self.write_script.pop(0)
        return None

    def check_fsync(self, path):
        if self.fail_fsync > 0 and self._mine(path):
            self.fail_fsync -= 1
            raise FsyncFailure(f"{path}: fsync failed (scripted)")

    def check_replace(self, path):
        if self.fail_replace > 0 and self._mine(path):
            self.fail_replace -= 1
            raise TornRename(f"{path}: torn rename (scripted)")


def _decisions(engine: StorageFaultEngine, path: str, n: int) -> list:
    """The observable fault sequence for n same-sized writes to path."""
    out = []
    for _ in range(n):
        fault = engine.write_fault(path, 100)
        out.append(None if fault is None else (type(fault[0]).kind, fault[1]))
    return out


class TestEngineDeterminism:
    def test_same_seed_same_weather(self):
        profile = storage_fault_profile("hostile")
        a = _decisions(StorageFaultEngine(profile, seed=7), "records.jsonl", 500)
        b = _decisions(StorageFaultEngine(profile, seed=7), "records.jsonl", 500)
        assert a == b
        assert any(d is not None for d in a), "hostile profile injected nothing"

    def test_different_seed_different_weather(self):
        profile = storage_fault_profile("hostile")
        a = _decisions(StorageFaultEngine(profile, seed=7), "records.jsonl", 500)
        b = _decisions(StorageFaultEngine(profile, seed=8), "records.jsonl", 500)
        assert a != b

    def test_basename_keying_reproduces_across_directories(self):
        profile = storage_fault_profile("hostile")
        a = _decisions(
            StorageFaultEngine(profile, seed=7), "/ci/ckpt/records.jsonl", 300
        )
        b = _decisions(
            StorageFaultEngine(profile, seed=7), "/tmp/pytest-0/records.jsonl", 300
        )
        assert a == b

    def test_enospc_fires_in_episodes(self):
        profile = StorageFaultProfile(name="t", enospc=0.05, enospc_run_length=4)
        engine = StorageFaultEngine(profile, seed=3)
        failed = [
            i
            for i in range(2000)
            if engine.write_fault("records.jsonl", 10) is not None
        ]
        assert failed, "no episode started in 2000 ops at 5%"
        runs, current = [], [failed[0]]
        for index in failed[1:]:
            if index == current[-1] + 1:
                current.append(index)
            else:
                runs.append(current)
                current = [index]
        runs.append(current)
        if runs[-1][-1] == 1999:
            runs.pop()  # the final episode may be cut off by the horizon
        assert runs and all(len(run) >= 4 for run in runs)

    def test_injected_errors_carry_real_errnos(self):
        assert InjectedDiskFull("x").errno == errno.ENOSPC
        assert ShortWrite("x", written=3).errno == errno.EIO
        assert FsyncFailure("x").errno == errno.EIO
        assert TornRename("x").errno == errno.EIO
        assert isinstance(InjectedDiskFull("x"), OSError)

    def test_off_profile_is_inert(self):
        engine = StorageFaultEngine(STORAGE_FAULT_PROFILES["off"], seed=1)
        assert not engine.active
        assert engine.write_fault("records.jsonl", 10) is None
        install_storage_faults(engine)
        from repro.storage.durable import storage_engine

        assert storage_engine() is None  # inactive engines are not installed

    def test_unknown_profile_is_an_error(self):
        with pytest.raises(ValueError, match="unknown storage fault profile"):
            storage_fault_profile("catastrophic")


class TestDurableFile:
    def test_short_write_rewinds_to_clean_tail(self, tmp_path):
        fake = FakeEngine()
        install_storage_faults(fake)
        durable = DurableFile(tmp_path / "records.jsonl", durability="none")
        durable.append(b"alpha\n")
        fake.write_script = [(ShortWrite("short", written=3), 3)]
        with pytest.raises(OSError):
            durable.append(b"bravo\n")
        # The partial "bra" was truncated away: retrying appends onto a
        # clean tail instead of producing "brabravo\n".
        assert (tmp_path / "records.jsonl").read_bytes() == b"alpha\n"
        durable.append(b"bravo\n")
        durable.close()
        assert (tmp_path / "records.jsonl").read_bytes() == b"alpha\nbravo\n"

    def test_checkpoint_append_rides_out_enospc_episode(self, tmp_path):
        fake = FakeEngine()
        fake.write_script = [
            (InjectedDiskFull("full"), 0),
            (InjectedDiskFull("full"), 0),
        ]
        install_storage_faults(fake)
        store = CheckpointStore(tmp_path)
        store.append_wire(encode_record_line('{"message_index": 0}').encode())
        store.close()
        scan = store.scan()
        assert scan.issues == [] and scan.indices == {0}
        assert scan.total_lines == 1  # retried, not duplicated

    def test_persistent_enospc_propagates_after_bounded_retry(self, tmp_path):
        fake = FakeEngine()
        # Exactly as many failures as the bounded retry has attempts.
        fake.write_script = [(InjectedDiskFull("full"), 0)] * RETRY_ATTEMPTS
        install_storage_faults(fake)
        store = CheckpointStore(tmp_path)
        wire = encode_record_line('{"message_index": 0}').encode()
        with pytest.raises(OSError) as info:
            store.append_wire(wire)
        assert info.value.errno == errno.ENOSPC
        # Space "returns": the same append lands exactly once, cleanly.
        store.append_wire(wire)
        store.close()
        scan = store.scan()
        assert scan.issues == [] and scan.total_lines == 1

    def test_fsync_failure_duplicates_are_tolerated(self, tmp_path):
        # durability=always: the line lands, then fsync fails, so the
        # bounded retry appends again — a duplicate, which load_records
        # resolves last-append-wins.  Never a lost or torn record.
        fake = FakeEngine()
        fake.fail_fsync = 1
        install_storage_faults(fake)
        store = CheckpointStore(tmp_path, durability="always")
        store.append_wire(encode_record_line('{"message_index": 4}').encode())
        store.close()
        scan = store.scan()
        assert scan.issues == []
        assert scan.total_lines == 2 and scan.indices == {4}

    def test_torn_rename_leaves_temp_and_old_content(self, tmp_path):
        target = tmp_path / "manifest.json"
        target.write_text("old", encoding="utf-8")
        fake = FakeEngine()
        fake.fail_replace = 1
        install_storage_faults(fake)
        with pytest.raises(TornRename):
            durable_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "old"
        temp = tmp_path / "manifest.json.tmp"
        assert temp.read_text(encoding="utf-8") == "new"
        # The bounded-retry path recovers once the fault clears.
        retrying(lambda: durable_write_text(target, "new"))
        assert target.read_text(encoding="utf-8") == "new"
        assert not temp.exists()

    def test_retrying_does_not_mask_permanent_errors(self):
        calls = []

        def operation():
            calls.append(1)
            raise PermissionError(errno.EACCES, "denied")

        with pytest.raises(PermissionError):
            retrying(operation)
        assert len(calls) == 1  # EACCES is not transient: no retry loop


class TestFsckDiagnostics:
    def _seed_records(self, directory) -> CheckpointStore:
        store = CheckpointStore(directory)
        for index in range(2):
            store.append_wire(
                encode_record_line(json.dumps({"message_index": index})).encode()
            )
        store.close()
        return store

    def test_corrupt_manifest_is_actionable(self, tmp_path, capsys):
        store = self._seed_records(tmp_path)
        (tmp_path / "manifest.json").write_text("{torn", encoding="utf-8")
        with pytest.raises(ManifestCorrupt, match="repro fsck"):
            store.read_manifest()
        assert main(["fsck", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "UNREADABLE" in out
        assert "hint:" in out and "--repair" in out

    def test_repair_survives_unreadable_manifest(
        self, tmp_path, baseline, capsys
    ):
        # Real records (salvage re-parses them), torn manifest.
        source = tmp_path / "src"
        source.mkdir()
        (source / "records.jsonl").write_bytes(
            (baseline["checkpoint"] / "records.jsonl").read_bytes()
        )
        (source / "manifest.json").write_text("{torn", encoding="utf-8")
        expected = len(baseline["records"])
        assert main(["fsck", str(source),
                     "--repair", str(tmp_path / "fixed")]) == 1
        out = capsys.readouterr().out
        assert f"Salvaged {expected} record(s)" in out
        assert "no readable source manifest" in out
        repaired = CheckpointStore(tmp_path / "fixed")
        assert len(repaired.completed_indices()) == expected
        assert repaired.read_manifest() is None

    def test_corrupt_endpoint_is_reported(self, tmp_path, capsys):
        self._seed_records(tmp_path)
        (tmp_path / "endpoint.json").write_text("{torn", encoding="utf-8")
        assert main(["fsck", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "endpoint.json: UNREADABLE" in out
        assert "daemon rewrites it on startup" in out

    def test_valid_endpoint_is_shown(self, tmp_path, capsys):
        self._seed_records(tmp_path)
        (tmp_path / "endpoint.json").write_text(
            json.dumps({"host": "127.0.0.1", "port": 4100}), encoding="utf-8"
        )
        assert main(["fsck", str(tmp_path)]) == 0
        assert "daemon endpoint 127.0.0.1:4100" in capsys.readouterr().out

    def test_leftover_compact_temp_is_reported_not_fatal(self, tmp_path, capsys):
        self._seed_records(tmp_path)
        (tmp_path / "records.jsonl.compact.tmp").write_text("x", encoding="utf-8")
        assert main(["fsck", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "leftover temp file" in out and "safe to delete" in out


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """A fault-free checkpointed run: exported records + checkpoint dir."""
    base = tmp_path_factory.mktemp("baseline")
    path = base / "run.json"
    checkpoint = base / "ckpt"
    assert main(["run", "--scale", str(SCALE), "--seed", str(SEED),
                 "--checkpoint", str(checkpoint), "--export", str(path)]) == 0
    return {
        "records": json.loads(path.read_text())["records"],
        "checkpoint": checkpoint,
    }


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestFaultyRunEndToEnd:
    def test_heavy_weather_run_is_lossless_and_identical(
        self, tmp_path, executor, baseline, capsys
    ):
        checkpoint = tmp_path / "ckpt"
        out = tmp_path / "out.json"
        assert main(["run", "--scale", str(SCALE), "--seed", str(SEED),
                     "--jobs", "2", "--executor", executor,
                     "--checkpoint", str(checkpoint),
                     "--storage-faults", "heavy", "--storage-fault-seed", "7",
                     "--export", str(out)]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["records"] == baseline["records"]

        # The checkpoint survived the weather: fsck-clean, every index
        # durable, and the manifest persists the fault settings so a
        # bare resume would replay the same schedule.
        install_storage_faults(None)
        store = CheckpointStore(checkpoint)
        scan = store.scan()
        assert scan.corruption == []
        assert scan.indices == {r["message_index"] for r in baseline["records"]}
        manifest = store.read_manifest()
        assert manifest.status == "complete"
        assert manifest.storage_faults == "heavy"
        assert manifest.storage_fault_seed == 7


class TestDefaultPathUnchanged:
    def test_off_manifest_has_no_storage_keys(self, baseline):
        manifest = json.loads(
            (baseline["checkpoint"] / "manifest.json").read_text()
        )
        assert "storage_faults" not in manifest
        assert "storage_fault_seed" not in manifest
