"""Every durable write flows through repro.storage — enforced statically.

The crash-consistency guarantees (clean torn tails, atomic replaces,
directory fsyncs, fault injection, the ``--durability`` policy) hold
only if *all* persistence goes through :mod:`repro.storage.durable`.
A stray ``open(path, "w")`` or bare ``os.replace`` elsewhere silently
reopens every hole that layer closed: writes the fault engine cannot
see, renames that are not power-loss durable, partial lines the
checkpoint scanner would call interior corruption.

So this test AST-walks ``src/repro`` (minus ``repro/storage`` itself,
which is the one place allowed to touch the primitives) and fails on:

- ``os.replace`` / ``os.fsync`` — use
  :func:`repro.storage.durable.atomic_replace` / ``fsync_dir``;
- ``open`` / ``.open`` with a write, append, exclusive, or update
  mode, and ``.write_text`` / ``.write_bytes`` — use
  :class:`repro.storage.durable.DurableFile` or ``durable_write_text``.

There is deliberately no exemption list: if a future module needs a
genuinely non-durable scratch write, route it through a helper in
``repro.storage`` so the policy stays auditable in one place.
"""

from __future__ import annotations

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: The only package allowed to call the raw persistence primitives.
ALLOWED_PACKAGE = "storage"

_FORBIDDEN_OS = {"replace", "fsync"}
_FORBIDDEN_METHODS = {"write_text", "write_bytes"}
_WRITE_MODE_CHARS = set("wax+")


def _mode_writes(call: ast.Call, mode_position: int) -> bool:
    """True if an ``open``-style call's mode can write (or is dynamic).

    ``mode_position`` is 1 for the builtin ``open(file, mode)`` and 0
    for the ``Path.open(mode)`` method form.
    """
    mode = None
    if len(call.args) > mode_position:
        mode = call.args[mode_position]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return True  # dynamic mode: flag it — prove it read-only to the AST


def _violations_in(source: str, filename: str) -> list[str]:
    found = []
    for node in ast.walk(ast.parse(source, filename=filename)):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "os"
                and func.attr in _FORBIDDEN_OS
            ):
                found.append(
                    f"{filename}:{node.lineno}: os.{func.attr} — use "
                    f"repro.storage.durable."
                    f"{'atomic_replace' if func.attr == 'replace' else 'fsync_dir'}"
                )
            elif func.attr in _FORBIDDEN_METHODS:
                found.append(
                    f"{filename}:{node.lineno}: .{func.attr}() — use "
                    f"repro.storage.durable.durable_write_text"
                )
            elif func.attr == "open" and _mode_writes(node, mode_position=0):
                found.append(
                    f"{filename}:{node.lineno}: .open() with a write mode — "
                    f"use repro.storage.durable (DurableFile or "
                    f"durable_write_text)"
                )
        elif (
            isinstance(func, ast.Name)
            and func.id == "open"
            and _mode_writes(node, mode_position=1)
        ):
            found.append(
                f"{filename}:{node.lineno}: open() with a write mode — use "
                f"repro.storage.durable (DurableFile or durable_write_text)"
            )
    return found


def _audited_files():
    files = [
        path
        for path in sorted(SRC.rglob("*.py"))
        if path.relative_to(SRC).parts[0] != ALLOWED_PACKAGE
    ]
    assert files, f"nothing to audit under {SRC}"
    return files


class TestDurableWritePolicy:
    def test_no_raw_persistence_outside_repro_storage(self):
        violations = []
        for path in _audited_files():
            relative = str(path.relative_to(SRC.parent.parent))
            violations.extend(_violations_in(path.read_text(), relative))
        assert not violations, (
            "raw durable-write primitives outside repro.storage "
            "(crash-consistency holds only at the choke point):\n  "
            + "\n  ".join(violations)
        )

    def test_checker_catches_each_forbidden_pattern(self):
        # Guard the guard: every pattern the policy names must trip it.
        bad = (
            "import os\n"
            "os.replace('a', 'b')\n"
            "os.fsync(3)\n"
            "path.write_text('x')\n"
            "path.write_bytes(b'x')\n"
            "open('a', 'w')\n"
            "open('a', mode='r+')\n"
            "path.open('ab')\n"
            "open('a', flags)\n"
        )
        assert len(_violations_in(bad, "<bad>")) == 8

    def test_checker_ignores_reads(self):
        fine = (
            "open('a')\n"
            "open('a', 'rb')\n"
            "path.open(mode='r')\n"
            "path.read_text()\n"
            "shutil.move('a', 'b')\n"
        )
        assert _violations_in(fine, "<fine>") == []
