"""Browser substrate tests: DOM, sessions, navigation, cookies, signals."""

import random

import pytest

from repro.browser.browser import Browser, VisitOutcome
from repro.browser.dom import parse_html
from repro.browser.profile import (
    BrowserProfile,
    datacenter_scanner_profile,
    human_chrome_profile,
    mobile_phone_profile,
)
from repro.web.context import ClientContext
from repro.web.http import HttpRequest, HttpResponse
from repro.web.network import Network
from repro.web.site import Page, Website
from repro.web.tls import TLSCertificate


def _simple_network(html="<html><body>hi</body></html>", domain="site.example"):
    network = Network()
    site = Website(domain, ip="7.7.7.7")
    site.add_page("/", Page(html=html))
    network.host_website(site)
    network.issue_certificate(TLSCertificate(domain, "CA", float("-inf"), float("inf")))
    return network, site


def _browser(network, profile=None, seed=1):
    return Browser(network, profile or human_chrome_profile(), rng=random.Random(seed), timestamp=10.0)


class TestDomParsing:
    def test_scripts_and_resources(self):
        doc = parse_html(
            """<html><head><title>T</title><script>var a=1;</script>
            <script src="/app.js"></script><link href="/style.css"/></head>
            <body><img src="/logo.png"/><a href="https://x.example/">go</a>
            <form action="/collect" method="POST"><input type="password" name="p"/></form>
            <div id="content">hidden</div></body></html>"""
        )
        assert doc.title == "T"
        assert doc.inline_scripts == ["var a=1;"]
        assert doc.external_scripts == ["/app.js"]
        assert "/logo.png" in doc.resource_urls and "/style.css" in doc.resource_urls
        assert doc.anchors == ["https://x.example/"]
        assert doc.forms[0].has_password_field
        assert doc.element_by_id("content").text == "hidden"

    def test_text_extraction(self):
        doc = parse_html("<html><body><p>Hello</p><p>World</p></body></html>")
        assert "Hello" in doc.text and "World" in doc.text

    def test_form_without_password(self):
        doc = parse_html('<form action="/a"><input type="text" name="q"/></form>')
        assert not doc.forms[0].has_password_field


class TestVisits:
    def test_simple_visit(self):
        network, _ = _simple_network()
        result = _browser(network).visit("https://site.example/")
        assert result.outcome == VisitOutcome.OK
        assert result.url_chain == ["https://site.example/"]
        assert result.final_session is not None

    def test_nxdomain_outcome(self):
        network, _ = _simple_network()
        result = _browser(network).visit("https://ghost.example/")
        assert result.outcome == VisitOutcome.NXDOMAIN

    def test_bad_url_outcome(self):
        network, _ = _simple_network()
        assert _browser(network).visit("not-a-url").outcome == VisitOutcome.BAD_URL

    def test_server_redirect_followed(self):
        network, site = _simple_network()
        target = Website("target.example", ip="7.7.7.8")
        target.set_default(Page(html="<html><body>final</body></html>"))
        network.host_website(target)
        network.issue_certificate(TLSCertificate("target.example", "CA", float("-inf"), float("inf")))
        site.add_handler("/jump", lambda r, c: HttpResponse.redirect("https://target.example/"))
        result = _browser(network).visit("https://site.example/jump")
        assert result.url_chain == ["https://site.example/jump", "https://target.example/"]
        assert "final" in result.final_response.body

    def test_redirect_loop_detected(self):
        network, site = _simple_network()
        site.add_handler("/loop", lambda r, c: HttpResponse.redirect("/loop"))
        result = _browser(network).visit("https://site.example/loop")
        assert result.outcome == VisitOutcome.REDIRECT_LOOP

    def test_script_navigation(self):
        html = """<html><head><script>location.href = 'https://site.example/next';</script></head><body></body></html>"""
        network, site = _simple_network(html)
        site.add_page("/next", Page(html="<html><body>arrived</body></html>"))
        result = _browser(network).visit("https://site.example/")
        assert result.url_chain[-1] == "https://site.example/next"

    def test_meta_refresh_navigation(self):
        html = '<html><head><meta http-equiv="refresh" content="0;url=https://site.example/meta"/></head><body></body></html>'
        network, site = _simple_network(html)
        site.add_page("/meta", Page(html="<html><body>meta target</body></html>"))
        result = _browser(network).visit("https://site.example/")
        assert result.url_chain[-1] == "https://site.example/meta"

    def test_http_error_classification(self):
        network, site = _simple_network()
        result = _browser(network).visit("https://site.example/does-not-exist")
        assert result.outcome == VisitOutcome.HTTP_ERROR

    def test_cookies_roundtrip(self):
        network, site = _simple_network()

        def _set_cookie(request, context):
            response = HttpResponse(status=200, body="<html></html>")
            response.headers.set("Set-Cookie", "sid=abc123; Path=/")
            return response

        def _echo_cookie(request, context):
            return HttpResponse(status=200, body=request.headers.get("Cookie", "none") or "none")

        site.add_handler("/set", _set_cookie)
        site.add_handler("/echo", _echo_cookie)
        browser = _browser(network)
        browser.visit("https://site.example/set")
        result = browser.visit("https://site.example/echo")
        assert "sid=abc123" in result.final_response.body

    def test_interception_quirk_headers(self):
        network, site = _simple_network()
        seen = {}

        def _capture(request, context):
            seen["cache"] = request.headers.get("Cache-Control")
            seen["pragma"] = request.headers.get("Pragma")
            return HttpResponse(status=200, body="<html></html>")

        site.add_handler("/capture", _capture)
        quirky = human_chrome_profile().derive(interception_cache_quirk=True)
        _browser(network, quirky).visit("https://site.example/capture")
        assert seen["cache"] == "no-cache" and seen["pragma"] == "no-cache"


class TestPageExecution:
    def test_scripts_see_profile_values(self):
        html = """<html><head><script>
        var ua = navigator.userAgent;
        var wd = navigator.webdriver;
        var tz = Intl.DateTimeFormat().resolvedOptions().timeZone;
        var sw = screen.width;
        </script></head><body></body></html>"""
        network, _ = _simple_network(html)
        profile = human_chrome_profile()
        result = _browser(network, profile).visit("https://site.example/")
        interp = result.final_session.interp
        assert interp.globals.lookup("ua") == profile.user_agent
        assert interp.globals.lookup("wd") is False
        assert interp.globals.lookup("tz") == profile.timezone
        assert interp.globals.lookup("sw") == float(profile.screen_width)

    def test_scanner_profile_exposes_webdriver(self):
        html = "<html><head><script>var wd = navigator.webdriver;</script></head><body></body></html>"
        network, _ = _simple_network(html)
        result = _browser(network, datacenter_scanner_profile()).visit("https://site.example/")
        assert result.final_session.interp.globals.lookup("wd") is True

    def test_element_manipulation(self):
        html = """<html><head><script>
        document.getElementById('content').style.display = 'block';
        document.getElementById('content').innerHTML = 'revealed';
        </script></head><body><div id="content" style="display:none">x</div></body></html>"""
        network, _ = _simple_network(html)
        result = _browser(network).visit("https://site.example/")
        element = result.final_session.elements["content"]
        assert element.get("style").get("display") == "block"
        assert element.get("innerHTML") == "revealed"

    def test_xhr_roundtrip(self):
        html = """<html><head><script>
        var xhr = new XMLHttpRequest();
        xhr.open('POST', '/api');
        xhr.onload = function() { window.__status = xhr.status; window.__body = xhr.responseText; };
        xhr.send('{"q":1}');
        </script></head><body></body></html>"""
        network, site = _simple_network(html)
        site.add_handler("/api", lambda r, c: HttpResponse(status=200, body="pong:" + r.body))
        result = _browser(network).visit("https://site.example/")
        window = result.final_session.window
        assert window.get("__status") == 200.0
        assert window.get("__body") == 'pong:{"q":1}'
        assert result.final_session.ajax_log[0].url.endswith("/api")

    def test_fetch_thenable(self):
        html = """<html><head><script>
        fetch('/api').then(function(r){ return r.text(); }).then(function(t){ window.__got = t; });
        </script></head><body></body></html>"""
        network, site = _simple_network(html)
        site.add_handler("/api", lambda r, c: HttpResponse(status=200, body="payload"))
        result = _browser(network).visit("https://site.example/")
        assert result.final_session.window.get("__got") == "payload"

    def test_mouse_events_trusted_for_human(self):
        html = """<html><head><script>
        window.__moves = 0; window.__trusted = 0;
        document.addEventListener('mousemove', function(e){
          window.__moves++; if (e.isTrusted) window.__trusted++;
        });
        </script></head><body></body></html>"""
        network, _ = _simple_network(html)
        result = _browser(network).visit("https://site.example/")
        window = result.final_session.window
        assert window.get("__moves") > 0
        assert window.get("__trusted") == window.get("__moves")

    def test_no_mouse_events_for_naive_scanner(self):
        html = """<html><head><script>
        window.__moves = 0;
        document.addEventListener('mousemove', function(e){ window.__moves++; });
        </script></head><body></body></html>"""
        network, _ = _simple_network(html)
        result = _browser(network, datacenter_scanner_profile()).visit("https://site.example/")
        assert result.final_session.window.get("__moves") == 0.0

    def test_signals_console_hijack(self):
        html = "<html><head><script>console.log = function(){};</script></head><body></body></html>"
        network, _ = _simple_network(html)
        result = _browser(network).visit("https://site.example/")
        assert result.final_session.signals().console_hijacked

    def test_signals_context_menu(self):
        html = "<html><head><script>document.addEventListener('contextmenu', function(e){ e.preventDefault(); });</script></head><body></body></html>"
        network, _ = _simple_network(html)
        assert _browser(network).visit("https://site.example/").final_session.signals().context_menu_blocked

    def test_signals_debugger_timer(self):
        html = "<html><head><script>setInterval(function(){ debugger; }, 1000);</script></head><body></body></html>"
        network, _ = _simple_network(html)
        signals = _browser(network).visit("https://site.example/").final_session.signals()
        assert signals.uses_debugger_timer
        assert signals.debugger_hits > 0

    def test_signals_hue_rotation(self):
        html = "<html><head><script>document.documentElement.style.filter = 'hue-rotate(4deg)';</script></head><body></body></html>"
        network, _ = _simple_network(html)
        assert _browser(network).visit("https://site.example/").final_session.signals().hue_rotation_deg == 4.0

    def test_resource_requests_carry_referrer(self):
        html = '<html><body><img src="https://cdn.example/logo.png"/></body></html>'
        network, _ = _simple_network(html)
        cdn = Website("cdn.example", ip="7.7.7.9")
        cdn.set_default(Page(html="img", content_type="image/png"))
        network.host_website(cdn)
        network.issue_certificate(TLSCertificate("cdn.example", "CA", float("-inf"), float("inf")))
        result = _browser(network).visit("https://site.example/")
        resource = [r for r in result.requests if r.kind == "resource"][0]
        assert resource.url == "https://cdn.example/logo.png"
        assert resource.referrer == "https://site.example/"

    def test_external_script_fetched_and_run(self):
        html = '<html><head><script src="/lib.js"></script></head><body></body></html>'
        network, site = _simple_network(html)
        site.add_handler("/lib.js", lambda r, c: HttpResponse(status=200, body="window.__lib = 'loaded';", content_type="text/javascript"))
        result = _browser(network).visit("https://site.example/")
        assert result.final_session.window.get("__lib") == "loaded"

    def test_load_local_html(self):
        network, _ = _simple_network()
        browser = _browser(network)
        session = browser.load_local_html(
            "<html><body><form><input type='password' name='p'/></form></body></html>"
        )
        assert session.parsed.forms[0].has_password_field

    def test_local_html_can_reach_network(self):
        network, site = _simple_network()
        site.add_handler("/beacon", lambda r, c: HttpResponse(status=200, body="ok"))
        html = """<html><head><script>
        var xhr = new XMLHttpRequest();
        xhr.open('GET', 'https://site.example/beacon');
        xhr.onload = function(){ window.__beacon = xhr.responseText; };
        xhr.send();
        </script></head><body></body></html>"""
        session = _browser(network).load_local_html(html)
        assert session.window.get("__beacon") == "ok"

    def test_mobile_profile_is_mobile(self):
        assert mobile_phone_profile().is_mobile
        assert not human_chrome_profile().is_mobile
