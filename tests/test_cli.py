"""CLI tests (argument parsing and the run/report/table1 flows)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 0.15
        assert args.seed == 2024
        assert args.export is None
        assert args.jobs == 1
        assert args.checkpoint is None

    def test_run_options(self):
        args = build_parser().parse_args(["run", "--scale", "0.5", "--seed", "7", "--export", "x.json"])
        assert (args.scale, args.seed, args.export) == (0.5, 7, "x.json")

    def test_run_runner_options(self):
        args = build_parser().parse_args(["run", "--jobs", "8", "--checkpoint", "ckpt"])
        assert (args.jobs, args.checkpoint) == (8, "ckpt")

    def test_resume_defaults(self):
        args = build_parser().parse_args(["resume", "ckpt"])
        assert args.checkpoint == "ckpt"
        assert args.jobs is None

    def test_resume_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])

    def test_report_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_stages(self):
        args = build_parser().parse_args(["run", "--stages", "auth,parse"])
        assert args.stages == ("auth", "parse")

    def test_run_stages_default_is_full_plan(self):
        assert build_parser().parse_args(["run"]).stages is None

    def test_run_stages_rejects_unknown_names(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--stages", "auth,fetch"])
        assert "unknown stage" in capsys.readouterr().err

    def test_run_stages_rejects_missing_providers(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--stages", "classify"])
        assert "requires" in capsys.readouterr().err

    def test_run_faults_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.faults == "off"
        assert args.fault_seed is None

    def test_run_faults_options(self):
        args = build_parser().parse_args(["run", "--faults", "hostile", "--fault-seed", "5"])
        assert (args.faults, args.fault_seed) == ("hostile", 5)

    def test_run_faults_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "apocalyptic"])

    def test_resume_faults_options(self):
        args = build_parser().parse_args(["resume", "ckpt", "--faults", "light"])
        assert args.faults == "light"
        assert args.fault_seed is None

    def test_resume_faults_default_to_manifest(self):
        # None = "use whatever the interrupted run used" (read at resume
        # time from the manifest), not "off".
        args = build_parser().parse_args(["resume", "ckpt"])
        assert args.faults is None
        assert args.fault_seed is None

    def test_run_budget_default_is_pipeline_default(self):
        assert build_parser().parse_args(["run"]).budget is None

    def test_run_budget_options(self):
        assert build_parser().parse_args(["run", "--budget", "50000"]).budget == 50000
        # 0 = explicitly unlimited (distinct from "not given").
        assert build_parser().parse_args(["run", "--budget", "0"]).budget == 0

    def test_run_budget_rejects_negative(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--budget", "-1"])

    def test_run_hostile_spec(self):
        assert build_parser().parse_args(["run"]).hostile is None
        assert build_parser().parse_args(["run", "--hostile", "7"]).hostile == "7"
        assert build_parser().parse_args(["run", "--hostile", "7:3"]).hostile == "7:3"

    def test_run_hostile_rejects_malformed_spec(self):
        for bad in ("seven", "7:none", "7:0", ":3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["run", "--hostile", bad])

    def test_resume_budget_and_hostile_default_to_manifest(self):
        args = build_parser().parse_args(["resume", "ckpt"])
        assert args.budget is None
        assert args.hostile is None

    def test_fsck_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fsck"])

    def test_fsck_options(self):
        args = build_parser().parse_args(["fsck", "ckpt", "--repair", "fixed"])
        assert args.checkpoint == "ckpt"
        assert args.repair == "fixed"
        assert build_parser().parse_args(["fsck", "ckpt"]).repair is None


class TestFlows:
    def test_run_and_report(self, tmp_path, capsys):
        artifacts = tmp_path / "run.json"
        exit_code = main(["run", "--scale", "0.03", "--seed", "5", "--export", str(artifacts)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Outcome breakdown" in output
        assert "Turnstile prevalence" in output
        assert artifacts.exists()

        exit_code = main(["report", str(artifacts)])
        assert exit_code == 0
        report_output = capsys.readouterr().out
        assert "Outcome breakdown" in report_output

    def test_run_with_jobs_and_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt"
        exit_code = main(["run", "--scale", "0.02", "--seed", "9", "--jobs", "2",
                          "--checkpoint", str(checkpoint)])
        assert exit_code == 0
        assert (checkpoint / "records.jsonl").exists()
        assert (checkpoint / "manifest.json").exists()
        capsys.readouterr()

        # The completed checkpoint resumes as a no-op with the same stats.
        exit_code = main(["resume", str(checkpoint)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "0 analysed" in output
        assert "Outcome breakdown" in output

    def test_resume_inherits_fault_profile_from_manifest(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt"
        exit_code = main(["run", "--scale", "0.02", "--seed", "9", "--faults", "light",
                          "--fault-seed", "3", "--checkpoint", str(checkpoint)])
        assert exit_code == 0
        capsys.readouterr()

        # A bare resume re-announces the interrupted run's fault settings
        # (read from the manifest), rather than silently running clean.
        exit_code = main(["resume", str(checkpoint)])
        assert exit_code == 0
        assert "Fault injection: profile=light, fault-seed=3" in capsys.readouterr().out

    def test_run_with_stage_subset(self, tmp_path, capsys):
        artifacts = tmp_path / "triage.json"
        exit_code = main(["run", "--scale", "0.02", "--seed", "5",
                          "--stages", "auth,parse", "--export", str(artifacts)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Degraded records" in output  # unselected stages are 'skipped'
        assert artifacts.exists()
        # Parse-only triage never crawls, so every record is URL-less.
        import json

        payload = json.loads(artifacts.read_text())
        assert payload["records"]
        for record in payload["records"]:
            assert record.get("crawls", []) == []
            assert record["stage_status"]["crawl"] == "skipped"
            assert record["stage_status"]["parse"] == "ok"

    def test_run_with_hostile_corpus_quarantines_and_reports(self, capsys):
        exit_code = main(["run", "--scale", "0.02", "--seed", "9",
                          "--hostile", "7", "--budget", "500000"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "+ 9 hostile messages (spec '7')" in output
        assert "Per-message budget: 500000 work units" in output
        # Eight shapes trip the guard; the ninth (js-loop) burns the
        # budget instead — both surface in the post-run report.
        assert "quarantine: 8 message(s)" in output
        assert "mime-depth" in output
        assert "Budget-exhausted stages: 1" in output

    def test_hostile_run_resumes_with_respecified_spec(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt"
        assert main(["run", "--scale", "0.02", "--seed", "9", "--hostile", "7",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        # Without the spec the regenerated corpus is short: refuse with
        # a hint rather than resuming against the wrong index space.
        assert main(["resume", str(checkpoint)]) == 1
        assert "--hostile spec again" in capsys.readouterr().out
        assert main(["resume", str(checkpoint), "--hostile", "7"]) == 0
        assert "0 analysed" in capsys.readouterr().out

    def test_resume_without_manifest_fails(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "nothing")]) == 1
        assert "nothing to resume" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "notabot" in output
        assert output.count("FAIL") >= 8  # the detectable crawlers' cells
