"""CLI tests (argument parsing and the run/report/table1 flows)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 0.15
        assert args.seed == 2024
        assert args.export is None

    def test_run_options(self):
        args = build_parser().parse_args(["run", "--scale", "0.5", "--seed", "7", "--export", "x.json"])
        assert (args.scale, args.seed, args.export) == (0.5, 7, "x.json")

    def test_report_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFlows:
    def test_run_and_report(self, tmp_path, capsys):
        artifacts = tmp_path / "run.json"
        exit_code = main(["run", "--scale", "0.03", "--seed", "5", "--export", str(artifacts)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Outcome breakdown" in output
        assert "Turnstile prevalence" in output
        assert artifacts.exists()

        exit_code = main(["report", str(artifacts)])
        assert exit_code == 0
        report_output = capsys.readouterr().out
        assert "Outcome breakdown" in report_output

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "notabot" in output
        assert output.count("FAIL") >= 8  # the detectable crawlers' cells
