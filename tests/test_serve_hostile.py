"""The hardened serve ingress under hostile clients, end to end.

The contract (ISSUE 10): a hostile fleet — slowloris trickles, idle
campers, mid-line disconnects, fuzz lines, floods — may cost itself
whatever it likes, but

- every refusal is explicit and machine-readable (``busy``, ``error``
  with ``strikes_remaining``, a reaping ``error`` before close) — never
  a silent drop or a hung thread;
- the daemon's health endpoints keep answering afterward;
- well-behaved reporters' accepted submissions export byte-identical
  records to a chaos-free run over the same messages (hostile traffic
  never ticks the admission clock);
- the daemon's thread count stays bounded by the session cap.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import socket
import struct
import threading
import time

import pytest

from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.netchaos import ClientFaultEngine, client_fault_profile, fuzz_corpus, run_chaos_fleet
from repro.serve.protocol import encode_line
from repro.serve.server import _Session

SEED, SCALE = 31, 0.02


def _eml(i: int) -> bytes:
    return (
        f"From: \"IT Support\" <support@spammer{i}.ru>\n"
        f"To: victim@corp.example\n"
        f"Subject: Password expires today {i}\n"
        f"Date: Tue, 12 Mar 2024 10:30:00 +0000\n"
        f"MIME-Version: 1.0\n"
        f"Content-Type: text/html; charset=utf-8\n"
        f"\n"
        f"<html><body><a href=\"https://phish{i}.example/portal\">Open</a>"
        f"</body></html>\n"
    ).encode()


MESSAGES = [_eml(i) for i in range(4)]

#: Short enough that reaping tests run in seconds, long enough that a
#: well-behaved client on a loaded CI box is never reaped by accident.
HARDENED = dict(
    line_deadline=0.4,
    idle_timeout=0.6,
    send_deadline=2.0,
    strike_budget=3,
    max_sessions=6,
)


@contextlib.contextmanager
def _daemon(directory, **overrides):
    config = ServeConfig(
        seed=SEED, scale=SCALE, jobs=overrides.pop("jobs", 2),
        executor=overrides.pop("executor", "thread"),
        batch_size=overrides.pop("batch_size", 3),
        **overrides,
    )
    daemon = ServeDaemon(config, directory)
    daemon.start()
    try:
        yield daemon
    finally:
        daemon.request_shutdown()
        assert daemon.wait() == 0


def _connect(port: int, timeout: float = 30.0):
    conn = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    return conn, conn.makefile("rb")


def _read_json(stream) -> dict | None:
    line = stream.readline(1 << 20)
    return json.loads(line) if line else None


def _http(port: int, request: bytes, timeout: float = 30.0) -> bytes:
    conn = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        conn.sendall(request)
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)
    finally:
        conn.close()


def _stats_over_http(port: int) -> dict:
    response = _http(port, b"GET /stats HTTP/1.0\r\n\r\n")
    return json.loads(response.split(b"\r\n\r\n", 1)[1])


class TestFuzzResilience:
    def test_whole_corpus_draws_errors_and_daemon_stays_healthy(self, tmp_path):
        # Budget above the corpus size: one session survives every line.
        with _daemon(tmp_path, **{**HARDENED, "strike_budget": 100,
                                  "line_deadline": 5.0, "idle_timeout": 10.0}) as daemon:
            conn, stream = _connect(daemon.port)
            try:
                for line in fuzz_corpus(17, count=32):
                    conn.sendall(line + b"\n")
                    response = _read_json(stream)
                    assert response is not None, line
                    assert response["op"] == "error"
                    assert response["strikes_remaining"] > 0
                # The session protocol still works on the same connection.
                conn.sendall(encode_line({"op": "ping"}))
                assert _read_json(stream)["op"] == "pong"
            finally:
                conn.close()
            stats = _stats_over_http(daemon.port)
            assert stats["ingress"]["malformed_lines"] >= 32
            assert stats["submitted"] == 0  # fuzz never ticks admission
            health = _http(daemon.port, b"GET /healthz HTTP/1.0\r\n\r\n")
            assert health.startswith(b"HTTP/1.0 200")

    def test_strike_budget_exhaustion_closes_cleanly(self, tmp_path):
        with _daemon(tmp_path, **{**HARDENED, "idle_timeout": 10.0}) as daemon:
            conn, stream = _connect(daemon.port)
            try:
                remaining = []
                conn.sendall(b"junk one\n" + b'{"op": "frobnicate"}\n' + b"junk two\n")
                while True:
                    response = _read_json(stream)
                    if response is None:
                        break
                    assert response["op"] == "error"
                    remaining.append(response["strikes_remaining"])
                # Three strikes, counted down explicitly, then EOF.
                assert remaining == [2, 1, 0]
            finally:
                conn.close()
            stats = _stats_over_http(daemon.port)
            assert stats["ingress"]["strike_closes"] == 1
            assert stats["ingress"]["malformed_lines"] == 3


class TestDeadlines:
    def test_slowloris_is_reaped_at_the_line_deadline(self, tmp_path):
        with _daemon(tmp_path, **HARDENED) as daemon:
            conn, stream = _connect(daemon.port)
            started = time.monotonic()
            try:
                # Trickle a line slower than the 0.4 s deadline allows.
                for _ in range(20):
                    try:
                        conn.sendall(b'{"op')
                    except OSError:
                        break
                    time.sleep(0.15)
                response = _read_json(stream)
                if response is not None:
                    assert response["op"] == "error"
                    assert "read deadline" in response["reason"]
            finally:
                conn.close()
            assert time.monotonic() - started < 10.0
            stats = _stats_over_http(daemon.port)
            assert stats["ingress"]["line_deadline_reaped"] >= 1

    def test_idle_camper_is_reaped(self, tmp_path):
        with _daemon(tmp_path, **HARDENED) as daemon:
            conn, stream = _connect(daemon.port)
            try:
                # Send nothing at all; the daemon must cut us loose.
                response = _read_json(stream)
                if response is not None:
                    assert response["op"] == "error"
                    assert "idle timeout" in response["reason"]
                    assert stream.readline(1024) == b""  # then EOF
            finally:
                conn.close()
            stats = _stats_over_http(daemon.port)
            assert stats["ingress"]["idle_reaped"] >= 1

    def test_verdict_waiting_session_is_never_reaped(self, tmp_path):
        # Progress-based reaping: the idle clock parks while verdicts
        # are outstanding, so a silent reporter awaiting results always
        # gets them — and is reaped only after the last verdict lands.
        with _daemon(tmp_path, **HARDENED) as daemon:
            import base64

            conn, stream = _connect(daemon.port)
            try:
                conn.sendall(encode_line({
                    "op": "submit", "id": "w-1", "reporter": "patient",
                    "eml": base64.b64encode(MESSAGES[0]).decode("ascii"),
                }))
                seen = []
                while True:
                    response = _read_json(stream)
                    if response is None:
                        break
                    seen.append(response["op"])
                    if response["op"] == "error":
                        assert "idle timeout" in response["reason"]
                ops = [op for op in seen if op != "error"]
                # Accepted, then the verdict — despite our total silence
                # across the idle window — then the reap, then EOF.
                assert ops == ["accepted", "verdict"]
            finally:
                conn.close()
            assert daemon.completed == 1

    def test_mid_line_disconnect_is_counted(self, tmp_path):
        with _daemon(tmp_path, **HARDENED) as daemon:
            conn, stream = _connect(daemon.port)
            conn.sendall(b'{"op": "submit", "id": "never-fini')
            # FIN-close: unlike an RST (which discards undelivered
            # bytes), the partial line is guaranteed to reach the daemon
            # before the EOF, so the orphaned bytes are observable.
            stream.close()
            conn.close()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = _stats_over_http(daemon.port)
                if stats["ingress"]["mid_line_disconnects"] >= 1:
                    break
                time.sleep(0.1)
            assert stats["ingress"]["mid_line_disconnects"] >= 1


class TestSessionCap:
    def test_over_cap_connections_get_explicit_busy(self, tmp_path):
        with _daemon(tmp_path, **{**HARDENED, "max_sessions": 2,
                                  "idle_timeout": 30.0}) as daemon:
            held = []
            try:
                for _ in range(2):
                    conn, stream = _connect(daemon.port)
                    conn.sendall(encode_line({"op": "ping"}))
                    assert _read_json(stream)["op"] == "pong"
                    held.append((conn, stream))
                # The third connection is refused before a session starts.
                over, over_stream = _connect(daemon.port)
                busy = _read_json(over_stream)
                assert busy["op"] == "busy"
                assert busy["reason"] == "session-limit"
                assert over_stream.readline(1024) == b""  # then closed
                over_stream.close()
                over.close()

                # Freeing one slot readmits new connections.  Both the
                # socket AND its makefile must close, or no FIN is sent.
                conn, stream = held.pop()
                stream.close()
                conn.close()
                deadline = time.monotonic() + 10.0
                while True:
                    retry, retry_stream = _connect(daemon.port)
                    try:
                        retry.sendall(encode_line({"op": "ping"}))
                        response = _read_json(retry_stream)
                    except OSError:
                        response = None
                    retry_stream.close()
                    retry.close()
                    if response and response.get("op") == "pong":
                        break
                    assert time.monotonic() < deadline, "slot never freed"
                    time.sleep(0.1)
            finally:
                for conn, stream in held:
                    stream.close()
                    conn.close()
            deadline = time.monotonic() + 10.0
            while True:  # the /stats connection needs a slot too
                try:
                    stats = _stats_over_http(daemon.port)
                    break
                except (IndexError, json.JSONDecodeError, OSError):
                    assert time.monotonic() < deadline
                    time.sleep(0.1)
            assert stats["ingress"]["busy_refused"] >= 1
            assert stats["ingress"]["max_sessions"] == 2
            # Busy refusals never tick the admission clock.
            assert stats["submitted"] == 0


class TestHttpHardening:
    def test_post_gets_405_not_a_json_protocol_error(self, tmp_path):
        with _daemon(tmp_path, **HARDENED) as daemon:
            response = _http(
                daemon.port, b"POST /submit HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
            )
            head = response.split(b"\r\n\r\n", 1)[0]
            assert head.startswith(b"HTTP/1.0 405 Method Not Allowed")
            assert b"Allow: GET, HEAD" in head
            for method in (b"PUT", b"DELETE", b"OPTIONS"):
                response = _http(daemon.port, method + b" /stats HTTP/1.0\r\n\r\n")
                assert response.startswith(b"HTTP/1.0 405")

    def test_head_answers_headers_only(self, tmp_path):
        with _daemon(tmp_path, **HARDENED) as daemon:
            response = _http(daemon.port, b"HEAD /healthz HTTP/1.0\r\n\r\n")
            head, body = response.split(b"\r\n\r\n", 1)
            assert head.startswith(b"HTTP/1.0 200 OK")
            assert body == b""

    def test_health_payload_carries_ingress_counters(self, tmp_path):
        with _daemon(tmp_path, **HARDENED) as daemon:
            response = _http(daemon.port, b"GET /healthz HTTP/1.0\r\n\r\n")
            payload = json.loads(response.split(b"\r\n\r\n", 1)[1])
            ingress = payload["ingress"]
            assert ingress["max_sessions"] == HARDENED["max_sessions"]
            for key in ("busy_refused", "idle_reaped", "strike_closes",
                        "dead_peers", "malformed_lines"):
                assert key in ingress


class TestDeadPeer:
    def test_session_send_detects_a_peer_that_stopped_reading(self):
        # Unit-level: _Session.send_raw under a tiny send deadline and a
        # peer that never reads must declare the peer dead — exactly
        # once — and fire the callback.
        server, client = socket.socketpair()
        try:
            for sock, opt in ((server, socket.SO_SNDBUF), (client, socket.SO_RCVBUF)):
                sock.setsockopt(socket.SOL_SOCKET, opt, 4096)
            deaths = []
            session = _Session(server, send_deadline=0.3,
                               on_dead_peer=lambda: deaths.append(1))
            assert session.send({"op": "pong"})  # fits the buffer
            assert not session.send_raw(b"x" * (1 << 22) + b"\n")
            assert deaths == [1]
            assert not session.alive
            # Later sends fail fast without re-counting the death.
            assert not session.send({"op": "verdict"})
            assert deaths == [1]
        finally:
            server.close()
            client.close()

    def test_verdict_stays_durable_when_the_peer_dies(self, tmp_path):
        # A reporter that submits and vanishes (RST) loses only its
        # socket: the verdict still lands in the checkpoint.
        import base64

        with _daemon(tmp_path, **HARDENED) as daemon:
            conn, _stream = _connect(daemon.port)
            conn.sendall(encode_line({
                "op": "submit", "id": "gone-1", "reporter": "flaky",
                "eml": base64.b64encode(MESSAGES[0]).decode("ascii"),
            }))
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
            conn.close()
            deadline = time.monotonic() + 60.0
            while daemon.completed < 1:
                assert time.monotonic() < deadline, "verdict never completed"
                time.sleep(0.1)
        records = pathlib.Path(tmp_path, "records.jsonl").read_bytes().splitlines()
        assert len(records) == 1


class TestChaosByteIdentity:
    """The acceptance criterion: hostile fleet + well-behaved reporter
    vs a chaos-free daemon over the same messages -> identical records."""

    @staticmethod
    def _well_behaved_run(port: int) -> list[str]:
        ids = []
        with ServeClient("127.0.0.1", port, timeout=120) as client:
            outcomes = [
                client.submit_with_retry(raw, reporter="honest")
                for raw in MESSAGES
            ]
            # Verdicts interleave with later acks, so earlier outcomes
            # may already have been upgraded past "accepted" here.
            assert all(o.accepted for o in outcomes)
            client.wait_verdicts(timeout=120)
            assert all(o.status == "verdict" for o in outcomes)
            ids = [o.message_index for o in outcomes]
        return ids

    def test_chaos_run_matches_clean_run_byte_for_byte(self, tmp_path):
        clean_dir = tmp_path / "clean"
        chaos_dir = tmp_path / "chaos"

        with _daemon(clean_dir) as daemon:
            assert self._well_behaved_run(daemon.port) == list(range(4))

        threads_before = threading.active_count()
        max_threads = 0
        stop_sampling = threading.Event()

        def sample():
            nonlocal max_threads
            while not stop_sampling.is_set():
                max_threads = max(max_threads, threading.active_count())
                time.sleep(0.02)

        engine = ClientFaultEngine(client_fault_profile("hostile"), seed=7)
        with _daemon(chaos_dir, **HARDENED) as daemon:
            sampler = threading.Thread(target=sample, daemon=True)
            sampler.start()
            # The honest reporter connects first (a held slot), then the
            # hostile fleet does its worst around it.
            fleet_reports = []

            def fleet():
                fleet_reports.extend(run_chaos_fleet(
                    "127.0.0.1", daemon.port, engine,
                    clients=2, ops_per_client=8,
                    line_deadline=HARDENED["line_deadline"],
                    idle_timeout=HARDENED["idle_timeout"],
                    io_timeout=5.0, max_hold=1.5,
                ))

            fleet_thread = threading.Thread(target=fleet, daemon=True)
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                fleet_thread.start()
                outcomes = [
                    client.submit_with_retry(raw, reporter="honest")
                    for raw in MESSAGES
                ]
                assert all(o.accepted for o in outcomes)
                # Chaos never ticks the admission clock, so the honest
                # indices are exactly the chaos-free ones.
                assert [o.message_index for o in outcomes] == list(range(4))
                client.wait_verdicts(timeout=120)
                assert all(o.status == "verdict" for o in outcomes)
            fleet_thread.join(timeout=120)
            assert not fleet_thread.is_alive()
            stop_sampling.set()
            sampler.join(timeout=5)

            # No hostile line was ever admitted.
            for report in fleet_reports:
                assert report.anomalies == []
            assert sum(r.ops.total() for r in fleet_reports) == 16
            stats = _stats_over_http(daemon.port)
            assert stats["accepted"] == 4 and stats["completed"] == 4
            assert stats["submitted"] == (
                stats["accepted"] + stats["shed"] + stats["rejected"]
            )
            assert stats["analysis"]["dead_lettered"] == 0

        # Zero accepted-record loss, byte-identical to the clean run.
        clean = sorted(pathlib.Path(clean_dir, "records.jsonl").read_bytes().splitlines())
        chaos = sorted(pathlib.Path(chaos_dir, "records.jsonl").read_bytes().splitlines())
        assert chaos == clean
        assert len(clean) == 4

        # Thread count stayed bounded by the session cap (+ the fixed
        # daemon threads, engine workers, fleet, and this test's own).
        assert max_threads <= threads_before + HARDENED["max_sessions"] + 2 + 2 + 4

        # Ingress telemetry never leaks into the manifest: an off-profile
        # run's checkpoint directory is byte-identical to pre-PR output.
        manifest = json.loads(pathlib.Path(chaos_dir, "manifest.json").read_text())
        assert "ingress" not in manifest
        assert "ingress" not in (manifest.get("service") or {})
