"""QR encoder/decoder tests: versions, modes, masks, corruption."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qr.decoder import QRDecodeError, decode_qr_matrix
from repro.qr.encoder import QRCapacityError, build_codewords, encode_qr, select_mode, select_version
from repro.qr.matrix import (
    apply_mask,
    build_function_patterns,
    data_module_coordinates,
    mask_condition,
    penalty_score,
    read_format_information,
)
from repro.qr.tables import (
    BLOCK_TABLE,
    ECLevel,
    bch_format_bits,
    bch_version_bits,
    matrix_size,
    version_for_size,
)


class TestTables:
    def test_matrix_sizes(self):
        assert matrix_size(1) == 21
        assert matrix_size(10) == 57
        assert version_for_size(21) == 1
        assert version_for_size(57) == 10

    def test_version_for_bad_size(self):
        with pytest.raises(ValueError):
            version_for_size(20)

    def test_block_totals_are_consistent(self):
        """data + ec codewords must match the symbol's total capacity."""
        totals = {1: 26, 2: 44, 3: 70, 4: 100, 5: 134, 6: 172, 7: 196, 8: 242, 9: 292, 10: 346}
        for (version, level), structure in BLOCK_TABLE.items():
            n_blocks = len(structure.block_sizes)
            total = structure.total_data_codewords + n_blocks * structure.ec_per_block
            assert total == totals[version], (version, level)

    def test_format_bits_reference_value(self):
        # The worked example from the ISO/IEC 18004 annex: EC level M,
        # mask pattern 101 -> masked format string 100000011001110.
        assert bch_format_bits(ECLevel.M, 5) == 0b100000011001110

    def test_version_info_reference_value(self):
        # Known value from the specification for version 7.
        assert bch_version_bits(7) == 0b000111110010010100


class TestModeAndVersionSelection:
    def test_mode_selection(self):
        assert select_mode("12345") == "numeric"
        assert select_mode("HELLO 123") == "alphanumeric"
        assert select_mode("https://a.example") == "byte"  # lowercase

    def test_version_grows_with_payload(self):
        small = select_version("A", ECLevel.M)
        large = select_version("A" * 150, ECLevel.M)
        assert small == 1
        assert large > small

    def test_capacity_error(self):
        with pytest.raises(QRCapacityError):
            select_version("x" * 2000, ECLevel.H)


class TestMatrixConstruction:
    def test_function_patterns_reserved_counts(self):
        matrix, reserved = build_function_patterns(2)
        assert matrix.shape == (25, 25)
        # Finder cores are dark.
        assert matrix[3, 3] and matrix[3, 21] and matrix[21, 3]
        # Dark module.
        assert matrix[25 - 8, 8]
        assert reserved[6, 10] and reserved[10, 6]  # timing rows reserved

    def test_data_coordinates_cover_all_unreserved(self):
        for version in (1, 3, 7):
            _, reserved = build_function_patterns(version)
            coordinates = data_module_coordinates(version)
            assert len(coordinates) == int((~reserved).sum())
            assert len(set(coordinates)) == len(coordinates)

    def test_mask_is_involutive(self):
        matrix, reserved = build_function_patterns(2)
        rng = np.random.default_rng(3)
        matrix = matrix | (rng.random(matrix.shape) < 0.5) & ~reserved
        for mask_id in range(8):
            twice = apply_mask(apply_mask(matrix, reserved, mask_id), reserved, mask_id)
            assert np.array_equal(twice, matrix), mask_id

    def test_mask_conditions_match_reference(self):
        assert mask_condition(0, 0, 0) is True
        assert mask_condition(0, 0, 1) is False
        assert mask_condition(1, 2, 99) is True
        assert mask_condition(2, 99, 3) is True

    def test_penalty_score_positive(self):
        matrix = encode_qr("PENALTY TEST", ECLevel.M)
        assert penalty_score(matrix) > 0

    def test_format_information_roundtrip(self):
        for level in ECLevel:
            for mask_id in range(8):
                matrix = encode_qr("ROUNDTRIP", level)
                read_level, read_mask = read_format_information(matrix)
                assert read_level == level
                break  # one mask per level is chosen by penalty; just check level


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "payload",
        [
            "1",
            "1234567890",
            "HELLO WORLD",
            "https://evil-site.com/dhfYWfH",
            "xxx https://evil-site.com/token#e=dmljdGltQGNvcnA=",
            "A" * 100,
            "unicode ✓ paylöad",
        ],
    )
    @pytest.mark.parametrize("level", list(ECLevel))
    def test_roundtrip(self, payload, level):
        try:
            matrix = encode_qr(payload, level)
        except QRCapacityError:
            pytest.skip("payload does not fit at this EC level")
        assert decode_qr_matrix(matrix) == payload

    def test_explicit_version(self):
        matrix = encode_qr("HI", ECLevel.L, version=5)
        assert matrix.shape == (37, 37)
        assert decode_qr_matrix(matrix) == "HI"

    def test_version7_has_version_info(self):
        # Lowercase forces byte mode: 110 bytes needs version >= 7 at M.
        payload = "v" * 110
        matrix = encode_qr(payload, ECLevel.M)
        assert matrix.shape[0] >= matrix_size(7)
        assert decode_qr_matrix(matrix) == payload

    def test_module_corruption_within_capacity(self):
        rng = random.Random(9)
        matrix = encode_qr("https://evil.example/x", ECLevel.H)
        corrupted = matrix.copy()
        for _ in range(10):
            row, col = rng.randrange(matrix.shape[0]), rng.randrange(matrix.shape[1])
            corrupted[row, col] ^= True
        assert decode_qr_matrix(corrupted) == "https://evil.example/x"

    def test_heavy_corruption_raises(self):
        rng = np.random.default_rng(4)
        matrix = encode_qr("DOOMED", ECLevel.L)
        corrupted = matrix ^ (rng.random(matrix.shape) < 0.35)
        with pytest.raises(QRDecodeError):
            decode_qr_matrix(corrupted)

    def test_non_square_rejected(self):
        with pytest.raises(QRDecodeError):
            decode_qr_matrix(np.zeros((21, 25), dtype=bool))

    def test_codeword_count_matches_structure(self):
        for level in ECLevel:
            codewords = build_codewords("TEST", 1, level)
            structure = BLOCK_TABLE[(1, level)]
            assert len(codewords) == structure.total_data_codewords + structure.ec_per_block


_QR_TEXT = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=60
)


@settings(max_examples=30, deadline=None)
@given(payload=_QR_TEXT, level=st.sampled_from(list(ECLevel)))
def test_qr_roundtrip_property(payload, level):
    matrix = encode_qr(payload, level)
    assert decode_qr_matrix(matrix) == payload
