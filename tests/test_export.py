"""Artifact export/reload tests: a saved run re-yields the statistics."""

import json

import pytest

from repro.analysis.evasion import measure_evasion_prevalence
from repro.analysis.figures import outcome_breakdown, table2
from repro.core.export import export_records, load_records, record_from_dict, record_to_dict, save_records


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def reloaded(self, analyzed_records, tmp_path_factory):
        path = tmp_path_factory.mktemp("artifacts") / "run.json"
        save_records(analyzed_records, path)
        return load_records(path), path

    def test_counts_preserved(self, analyzed_records, reloaded):
        records, _ = reloaded
        assert len(records) == len(analyzed_records)

    def test_single_record_fields(self, analyzed_records):
        original = next(record for record in analyzed_records if record.crawls)
        clone = record_from_dict(json.loads(json.dumps(record_to_dict(original))))
        assert clone.category == original.category
        assert clone.spear_brand == original.spear_brand
        assert clone.auth == original.auth
        assert clone.noise_padded == original.noise_padded
        assert [crawl.url for crawl in clone.crawls] == [crawl.url for crawl in original.crawls]
        assert clone.landing_domains == original.landing_domains
        first_original, first_clone = original.crawls[0], clone.crawls[0]
        assert first_clone.signals == first_original.signals
        assert first_clone.screenshot_phash == first_original.screenshot_phash

    def test_outcome_breakdown_survives_reload(self, analyzed_records, reloaded):
        records, _ = reloaded
        assert outcome_breakdown(records).counts == outcome_breakdown(analyzed_records).counts

    def test_table2_survives_reload(self, analyzed_records, reloaded):
        records, _ = reloaded
        assert table2(records).rows == table2(analyzed_records).rows

    def test_evasion_prevalence_survives_reload(self, analyzed_records, reloaded):
        records, _ = reloaded
        original = measure_evasion_prevalence(analyzed_records)
        recomputed = measure_evasion_prevalence(records)
        assert recomputed.turnstile == original.turnstile
        assert recomputed.recaptcha == original.recaptcha
        assert recomputed.console_hijack == original.console_hijack
        assert recomputed.hue_rotate_pages == original.hue_rotate_pages
        assert recomputed.faulty_qr == original.faulty_qr
        assert len(recomputed.shared_script_clusters) == len(original.shared_script_clusters)

    def test_file_is_plain_json(self, reloaded):
        _, path = reloaded
        document = json.loads(path.read_text())
        assert document["format_version"] == 1
        assert document["n_records"] == len(document["records"])

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "records": []}))
        with pytest.raises(ValueError):
            load_records(path)

    def test_export_document_shape(self, analyzed_records):
        document = export_records(analyzed_records[:3])
        assert document["n_records"] == 3
        json.dumps(document)  # fully serializable
