"""Standard-library tests: strings, arrays, JSON, RegExp, globals."""

import math

import pytest

from repro.js import Interpreter, JSError
from repro.js.interp import JSArray, JSObject
from repro.js.obfuscate import base64_eval_wrap, charcode_obfuscate, split_string_obfuscate


def run(source: str):
    return Interpreter().run(source)


class TestStringMethods:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("'hello'.length", 5.0),
            ("'hello'.toUpperCase()", "HELLO"),
            ("'HELLO'.toLowerCase()", "hello"),
            ("'hello'.charAt(1)", "e"),
            ("'hello'.charCodeAt(0)", 104.0),
            ("'hello'.indexOf('ll')", 2.0),
            ("'hello'.indexOf('z')", -1.0),
            ("'hello'.includes('ell')", True),
            ("'hello'.startsWith('he')", True),
            ("'hello'.endsWith('lo')", True),
            ("'hello'.slice(1, 3)", "el"),
            ("'hello'.slice(-3)", "llo"),
            ("'hello'.substring(3, 1)", "el"),
            ("'hello'.substr(1, 2)", "el"),
            ("'a,b,c'.split(',').length", 3.0),
            ("''.split(',').length", 1.0),
            ("'abc'.split('').join('-')", "a-b-c"),
            ("'  x  '.trim()", "x"),
            ("'ab'.repeat(3)", "ababab"),
            ("'a'.padStart(3, '0')", "00a"),
            ("'a'.padEnd(3, '.')", "a.."),
            ("'hello'[1]", "e"),
            ("'abc'.concat('def')", "abcdef"),
            ("'a-b'.replace('-', '+')", "a+b"),
            ("'a-b-c'.replaceAll('-', '+')", "a+b+c"),
        ],
    )
    def test_methods(self, source, expected):
        assert run(source) == expected

    def test_replace_with_regex_global(self):
        assert run("'a1b2c3'.replace(new RegExp('[0-9]', 'g'), '#')") == "a#b#c#"

    def test_replace_with_function(self):
        assert run("'abc'.replace('b', function(m) { return m.toUpperCase(); })") == "aBc"

    def test_match(self):
        assert run("'user@corp.example'.match(new RegExp('@(.+)$'))[1]") == "corp.example"
        assert run("'no digits'.match(new RegExp('[0-9]')) === null") is True


class TestArrayMethods:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("[1,2,3].length", 3.0),
            ("[1,2,3].join('-')", "1-2-3"),
            ("[3,1,2].sort().join('')", "123"),
            ("[1,2,3].indexOf(2)", 1.0),
            ("[1,2,3].includes(3)", True),
            ("[1,2,3].slice(1).join('')", "23"),
            ("[1,2,3].concat([4]).length", 4.0),
            ("[1,2,3].reverse().join('')", "321"),
            ("[1,2,3,4].filter(function(x){return x>2}).join('')", "34"),
            ("[1,2,3].map(function(x){return x*2}).join('')", "246"),
            ("[1,2,3].reduce(function(a,b){return a+b})", 6.0),
            ("[1,2,3].reduce(function(a,b){return a+b}, 10)", 16.0),
            ("[5,6,7].find(function(x){return x>5})", 6.0),
            ("[5,6,7].findIndex(function(x){return x>5})", 1.0),
            ("[1,2].some(function(x){return x==2})", True),
            ("[1,2].every(function(x){return x>0})", True),
        ],
    )
    def test_methods(self, source, expected):
        assert run(source) == expected

    def test_push_pop_shift_unshift(self):
        assert run("var a=[2]; a.push(3); a.unshift(1); a.join('')") == "123"
        assert run("var a=[1,2,3]; a.pop(); a.shift(); a.join('')") == "2"

    def test_splice(self):
        assert run("var a=[1,2,3,4]; var r=a.splice(1,2); r.join('')+':'+a.join('')") == "23:14"

    def test_sort_with_comparator(self):
        assert run("[3,1,2].sort(function(a,b){return b-a}).join('')") == "321"

    def test_foreach_accumulates(self):
        assert run("var t=0; [1,2,3].forEach(function(v){t+=v}); t") == 6.0

    def test_reduce_empty_without_initial_raises(self):
        with pytest.raises(JSError):
            run("[].reduce(function(a,b){return a+b})")


class TestGlobals:
    def test_atob_btoa_roundtrip(self):
        assert run("atob(btoa('secret message'))") == "secret message"

    def test_atob_invalid_raises(self):
        with pytest.raises(JSError):
            run("atob('!not base64!')")

    def test_parse_int(self):
        assert run("parseInt('42')") == 42.0
        assert run("parseInt('42abc')") == 42.0
        assert run("parseInt('0x1f')") == 31.0
        assert run("parseInt('ff', 16)") == 255.0
        assert math.isnan(run("parseInt('abc')"))

    def test_parse_float(self):
        assert run("parseFloat('3.14xyz')") == pytest.approx(3.14)

    def test_is_nan(self):
        assert run("isNaN('abc')") is True
        assert run("isNaN('42')") is False

    def test_uri_component(self):
        assert run("encodeURIComponent('a b@c')") == "a%20b%40c"
        assert run("decodeURIComponent('a%20b')") == "a b"

    def test_math_functions(self):
        assert run("Math.floor(3.7)") == 3.0
        assert run("Math.max(1, 5, 3)") == 5.0
        assert run("Math.min(4, 2)") == 2.0
        assert run("Math.abs(-9)") == 9.0
        assert run("Math.round(2.5)") == 3.0
        assert 0.0 <= run("Math.random()") < 1.0

    def test_json_roundtrip(self):
        assert run("JSON.parse(JSON.stringify({a: [1, 'x', true, null]})).a[1]") == "x"

    def test_json_parse_error(self):
        with pytest.raises(JSError):
            run("JSON.parse('{bad json')")

    def test_string_fromcharcode(self):
        assert run("String.fromCharCode(104, 105)") == "hi"

    def test_object_keys_values(self):
        assert run("Object.keys({a:1,b:2}).join('')") == "ab"
        assert run("Object.values({a:1,b:2}).join('')") == "12"

    def test_object_assign(self):
        assert run("Object.assign({a:1}, {b:2}).b") == 2.0

    def test_array_isarray(self):
        assert run("Array.isArray([1])") is True
        assert run("Array.isArray('no')") is False

    def test_number_tostring_radix(self):
        assert run("(255).toString(16)") == "ff"
        assert run("(5).toString(2)") == "101"

    def test_tofixed(self):
        assert run("(3.14159).toFixed(2)") == "3.14"

    def test_date_now_advances_with_steps(self):
        assert run("var a = Date.now(); var i=0; while(i<1000){i++}; Date.now() > a") is True

    def test_regexp_test_exec(self):
        assert run("new RegExp('^a+$').test('aaa')") is True
        assert run("new RegExp('(b)(c)').exec('abc')[2]") == "c"

    def test_console_returns_undefined_and_logs(self):
        interp = Interpreter()
        interp.run("console.log('x', 1); console.warn('y')")
        assert interp.console_log == [("log", "x 1"), ("warn", "y")]


class TestObfuscation:
    def test_base64_eval_wrap_executes(self):
        interp = Interpreter()
        interp.run(base64_eval_wrap("var marker = 'ran';"))
        assert interp.globals.lookup("marker") == "ran"

    def test_split_string_hides_secret(self):
        source = "var u = 'https://evil.ru/path';"
        import random

        obfuscated = split_string_obfuscate(source, "https://evil.ru/path", random.Random(4))
        assert "https://evil.ru/path" not in obfuscated
        interp = Interpreter()
        interp.run(obfuscated)
        assert interp.globals.lookup("u") == "https://evil.ru/path"

    def test_charcode_obfuscate(self):
        expression = charcode_obfuscate("hi!")
        assert run(expression) == "hi!"

    def test_determinism_of_fixed_seed(self):
        import random

        a = split_string_obfuscate("var x = 'token';", "token", random.Random(7))
        b = split_string_obfuscate("var x = 'token';", "token", random.Random(7))
        assert a == b
