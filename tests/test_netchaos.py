"""The hostile-client fault engine, socket-free: profile presets, the
pure ``(seed, client id, op index)`` behavior schedule, and the fuzz
corpus — every corpus line must draw a :class:`ProtocolError` from the
daemon's own decoder, which is what guarantees a fuzz op can never tick
the admission clock.  The engine is driven against a live daemon in
``test_serve_hostile.py``.
"""

from __future__ import annotations

import collections

import pytest

from repro.serve.netchaos import (
    CLIENT_FAULT_PROFILES,
    FUZZ_SHAPES,
    ClientFaultEngine,
    client_fault_profile,
    fuzz_corpus,
)
from repro.serve.protocol import ProtocolError, decode_line


class TestProfiles:
    def test_presets_cover_the_cli_choices(self):
        assert sorted(CLIENT_FAULT_PROFILES) == ["heavy", "hostile", "light", "off"]
        assert not CLIENT_FAULT_PROFILES["off"].active
        for name in ("light", "heavy", "hostile"):
            assert CLIENT_FAULT_PROFILES[name].active

    def test_rates_form_a_valid_band_partition(self):
        # Disjoint bands of one uniform draw: the rates must leave room
        # for the benign noop leftover.
        for profile in CLIENT_FAULT_PROFILES.values():
            total = sum(getattr(profile, f) for f in profile.RATE_FIELDS)
            assert 0.0 <= total < 1.0, profile.name

    def test_monotone_escalation(self):
        light, heavy, hostile = (
            CLIENT_FAULT_PROFILES[n] for n in ("light", "heavy", "hostile")
        )
        for name in light.RATE_FIELDS:
            assert (
                getattr(light, name) <= getattr(heavy, name) <= getattr(hostile, name)
            ), name

    def test_lookup_rejects_unknown_names(self):
        assert client_fault_profile("hostile").name == "hostile"
        with pytest.raises(ValueError, match="unknown client fault profile"):
            client_fault_profile("armageddon")


class TestSchedule:
    def test_behavior_is_a_pure_function_of_coordinates(self):
        one = ClientFaultEngine(client_fault_profile("hostile"), seed=99)
        two = ClientFaultEngine(client_fault_profile("hostile"), seed=99)
        for op_index in range(200):
            a = one.behavior("chaos-0", op_index)
            b = two.behavior("chaos-0", op_index)
            assert (a.kind, a.payload, a.chunks, a.burst, a.overshoot) == (
                b.kind, b.payload, b.chunks, b.burst, b.overshoot,
            )

    def test_different_seeds_diverge(self):
        one = ClientFaultEngine(client_fault_profile("hostile"), seed=1)
        two = ClientFaultEngine(client_fault_profile("hostile"), seed=2)
        kinds_one = [one.behavior("c", i).kind for i in range(100)]
        kinds_two = [two.behavior("c", i).kind for i in range(100)]
        assert kinds_one != kinds_two

    def test_clients_get_independent_schedules(self):
        engine = ClientFaultEngine(client_fault_profile("hostile"), seed=7)
        kinds_a = [engine.behavior("chaos-a", i).kind for i in range(100)]
        kinds_b = [engine.behavior("chaos-b", i).kind for i in range(100)]
        assert kinds_a != kinds_b

    def test_hostile_profile_schedules_every_kind(self):
        engine = ClientFaultEngine(client_fault_profile("hostile"), seed=3)
        seen = collections.Counter(
            engine.behavior("chaos-0", i).kind for i in range(600)
        )
        for kind in ("slowloris", "idle_camp", "mid_line", "fuzz",
                     "oversized", "flood", "flap", "noop"):
            assert seen[kind] > 0, kind
        # Each kind lands near its configured rate (fuzz is the widest
        # band at 0.25, so it must be the most common hostile kind).
        assert seen["fuzz"] == max(seen.values())

    def test_off_profile_schedules_only_noops(self):
        engine = ClientFaultEngine(client_fault_profile("off"), seed=3)
        assert not engine.active
        assert all(
            engine.behavior("chaos-0", i).kind == "noop" for i in range(100)
        )

    def test_telemetry_counts_scheduled_kinds(self):
        engine = ClientFaultEngine(client_fault_profile("hostile"), seed=3)
        for i in range(50):
            engine.behavior("chaos-0", i)
        assert sum(engine.injected.values()) == 50


class TestFuzzCorpus:
    def test_corpus_is_deterministic(self):
        assert fuzz_corpus(41, count=32) == fuzz_corpus(41, count=32)
        assert fuzz_corpus(41, count=32) != fuzz_corpus(42, count=32)

    def test_every_line_is_newline_free(self):
        for line in fuzz_corpus(17, count=128):
            assert b"\n" not in line

    def test_every_line_draws_a_protocol_error(self):
        # The load-bearing property: no fuzz line is ever admissible, so
        # fuzz traffic can never perturb admission indices.  This also
        # covers the deep-nesting bomb: decode_line must answer with a
        # ProtocolError, not unwind with RecursionError.
        for line in fuzz_corpus(17, count=128):
            with pytest.raises(ProtocolError):
                decode_line(line)

    def test_corpus_exercises_all_shapes(self):
        # Reconstruct which shapes appeared by structural fingerprints.
        lines = fuzz_corpus(5, count=256)
        assert any(line.startswith(b"[" * 100) for line in lines)  # deep_nesting
        assert any(line == b"{}" for line in lines)  # empty_object
        assert any(line.startswith(b"POST ") for line in lines)  # http_like
        assert any(b"no-op-here" in line for line in lines)  # missing_op
        assert len(FUZZ_SHAPES) == 9
