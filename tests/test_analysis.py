"""Analysis-layer tests: stats, domain syntax, timelines, evasion, figures."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import stats
from repro.analysis.domains import classify_domain_syntax, domain_syntax_summary
from repro.analysis.dnsvolume import dns_volume_summary
from repro.analysis.evasion import measure_evasion_prevalence
from repro.analysis.figures import (
    figure2,
    figure3,
    outcome_breakdown,
    section5a_spear,
    section5b_nontargeted,
    section5c_evasion,
    table1,
    table2,
)
from repro.analysis.timeline import compute_timelines, timeline_summary
from repro.core.outcomes import MessageCategory

BRANDS = ["amatravel", "skybooker", "contenthub", "revenuepro", "payroute", "microsoft"]


class TestStats:
    def test_moments(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert stats.mean(values) == 2.5
        assert stats.median(values) == 2.5
        assert stats.std([2.0, 2.0]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stats.mean([])
        with pytest.raises(ValueError):
            stats.median([])

    def test_kurtosis_fat_tail(self):
        rng = random.Random(1)
        normal_ish = [rng.gauss(0, 1) for _ in range(2000)]
        fat = normal_ish + [50.0, -60.0, 80.0]
        assert stats.excess_kurtosis(fat) > stats.excess_kurtosis(normal_ish)
        assert stats.excess_kurtosis(fat) > 3.0

    def test_kurtosis_needs_samples(self):
        with pytest.raises(ValueError):
            stats.excess_kurtosis([1.0, 2.0])

    def test_paired_t_test_significant(self):
        a = [10.0, 12.0, 9.0, 11.0, 13.0, 10.5, 9.5, 12.5]
        offsets = [2.9, 3.1, 3.0, 2.8, 3.2, 3.0, 2.95, 3.05]
        b = [value - offset for value, offset in zip(a, offsets)]
        result = stats.paired_t_test(a, b)
        assert result.significant()
        assert result.mean_difference == pytest.approx(3.0)

    def test_paired_t_test_insignificant(self):
        rng = random.Random(2)
        a = [rng.gauss(10, 1) for _ in range(10)]
        b = [value + rng.gauss(0, 2) for value in a]
        result = stats.paired_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0

    def test_paired_requires_equal_length(self):
        with pytest.raises(ValueError):
            stats.paired_t_test([1.0], [1.0, 2.0])

    def test_histogram_days(self):
        histogram = stats.histogram_days([0.0, 25.0, 47.9, 24.0 * 89, 24.0 * 95])
        assert histogram[0] == 1
        assert histogram[1] == 2
        assert histogram[89] == 1
        assert sum(histogram) == 4  # the >90d value is excluded


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=4, max_size=50))
def test_median_between_min_max_property(values):
    result = stats.median(values)
    assert min(values) <= result <= max(values)


class TestDomainSyntax:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("amatravel-login.com", "combosquatting"),
            ("login-amatravel.buzz", "combosquatting"),
            ("amatravel.cedar-harbor.com", "target-embedding"),
            ("arnatravel.com", "homoglyph"),
            ("skyb0oker.ru", "homoglyph"),  # 0 -> o restores the brand
            ("skybo0ker.ru", "homoglyph"),
            ("secure-login-verify-account.com", "keyword-stuffing"),
            ("amatrave.com", "typosquatting"),
            ("amatravell.com", "typosquatting"),
            ("cedar-harbor.com", None),
            ("crystal-media.tech", None),
            ("xn--mazon-wqa.com", "punycode"),
        ],
    )
    def test_classification(self, host, expected):
        assert classify_domain_syntax(host, BRANDS) == expected

    def test_summary_counts(self):
        hosts = ["amatravel-login.com", "cedar-harbor.com", "arnatravel.com", "plain.org"]
        summary = domain_syntax_summary(hosts, BRANDS)
        assert summary.total_domains == 4
        assert summary.deceptive == 2
        assert summary.punycode == 0
        assert 0.49 < summary.deceptive_fraction < 0.51

    def test_generated_names_are_detected(self, rng):
        from repro.dataset import names

        for technique in names.DECEPTIVE_TECHNIQUES:
            detected = 0
            for _ in range(12):
                host = names.deceptive_host(technique, "amatravel", rng, ".com")
                if classify_domain_syntax(host, BRANDS) is not None:
                    detected += 1
            assert detected >= 10, technique

    def test_neutral_names_rarely_flagged(self, rng):
        from repro.dataset import names

        flagged = sum(
            1
            for _ in range(60)
            if classify_domain_syntax(names.neutral_domain(rng) + ".com", BRANDS) is not None
        )
        assert flagged <= 2


class TestAnalysisIntegration:
    def test_outcome_breakdown_sums(self, analyzed_records):
        breakdown = outcome_breakdown(analyzed_records)
        assert breakdown.total == len(analyzed_records)
        assert sum(count for _, count in breakdown.counts) == breakdown.total
        assert breakdown.fraction(MessageCategory.NO_RESOURCES) > 0.2

    def test_table2_com_dominates(self, analyzed_records):
        table = table2(analyzed_records)
        assert table.total_domains > 0
        assert table.rows[0][0] == ".com"

    def test_figure2_t_test_significant(self, analyzed_records):
        figure = figure2(analyzed_records)
        assert sum(figure.monthly_2024) == len(analyzed_records)
        assert figure.mean_2023 > figure.mean_2024
        assert figure.t_test.significant()

    def test_figure3_shape(self, small_corpus, analyzed_records):
        summary = figure3(analyzed_records, small_corpus.world.network)
        assert summary.n_domains > 0
        assert summary.median_timedelta_a > summary.median_timedelta_b
        assert summary.kurtosis_a > 0  # fat-tailed
        assert summary.over_90d_a >= summary.over_90d_b
        assert summary.outliers >= summary.outlier_compromised + summary.outlier_abused_services
        assert sum(summary.histogram_a_days) <= summary.n_domains

    def test_timelines_match_whois(self, small_corpus, analyzed_records):
        timelines = compute_timelines(analyzed_records, small_corpus.world.network)
        for timeline in timelines:
            if timeline.timedelta_a is not None:
                assert timeline.timedelta_a > 0
            if timeline.timedelta_b is not None and timeline.timedelta_a is not None:
                assert timeline.timedelta_b <= timeline.timedelta_a + 1e-6

    def test_section5a_summary(self, small_corpus, analyzed_records):
        summary = section5a_spear(analyzed_records, small_corpus.world)
        assert summary.active_messages >= summary.spear_messages > 0
        assert 0.5 < summary.spear_fraction <= 1.0
        assert summary.hotlink_messages >= 0
        assert summary.messages_per_domain_median >= 1.0
        assert summary.domain_syntax.punycode == 0
        assert summary.dns_volumes is not None
        assert summary.dns_volumes.top_domains

    def test_section5a_dns_single_vs_multi(self, small_corpus, analyzed_records):
        summary = section5a_spear(analyzed_records, small_corpus.world)
        volumes = summary.dns_volumes
        if volumes.n_single_domains and volumes.n_multi_domains:
            assert volumes.multi_median_total >= volumes.single_median_total

    def test_section5b_summary(self, small_corpus, analyzed_records):
        summary = section5b_nontargeted(analyzed_records, small_corpus.world)
        assert summary.nontargeted_messages >= 0
        assert summary.otp_messages >= 1
        total_branded = sum(count for _, count in summary.brand_counts)
        assert total_branded <= summary.nontargeted_messages

    def test_section5c_prevalences(self, analyzed_records):
        prevalence = section5c_evasion(analyzed_records)
        assert prevalence.credential_messages > 0
        assert prevalence.auth_all_pass == len(analyzed_records)
        assert 0.6 < prevalence.turnstile_fraction < 0.9
        assert 0.1 < prevalence.recaptcha_fraction < 0.4
        assert prevalence.faulty_qr >= 1
        assert prevalence.qr_messages >= prevalence.faulty_qr
        assert prevalence.console_hijack >= 1
        assert prevalence.noise_padded >= 1

    def test_shared_script_clusters_found(self, analyzed_records):
        prevalence = measure_evasion_prevalence(analyzed_records)
        kinds = {cluster.kind for cluster in prevalence.shared_script_clusters}
        assert "victim-check" in kinds
        for cluster in prevalence.shared_script_clusters:
            assert cluster.n_domains >= 2

    def test_table1_computed(self):
        rows = table1(seed=3)
        assert len(rows) == 8
        assert sum(1 for row in rows if row.passes_all) == 3
