"""Defender-side tests: referral monitoring and the modeled email filters."""

import random

import pytest

from repro.defense.emailfilters import ModeledEmailFilter, REFERENCE_FILTERS
from repro.defense.referral import ReferralMonitor
from repro.kits.brands import COMPANY_BRANDS
from repro.kits.credential import CredentialKit, CredentialKitOptions
from repro.kits.lures import build_credential_lure
from repro.mail.message import EmailMessage, MessagePart


def _hotlinked_brand(corpus):
    """A brand whose campaigns hotlink its assets in this corpus."""
    for plan in corpus.domain_plans:
        if plan.options.hotlink_brand_resources:
            return plan.brand.name
    raise AssertionError("no hotlinking campaigns in the corpus")


def _brand_token(brand_name: str) -> str:
    return brand_name.lower().replace(" ", "") + ".example"


class TestReferralMonitor:
    def test_hotlinking_kit_triggers_alert(self, small_corpus, analyzed_records):
        # The pipeline already crawled everything; the brand portals'
        # access logs now contain the hotlinked asset requests.
        brand = _hotlinked_brand(small_corpus)
        portal = small_corpus.world.portals[brand]
        monitor = ReferralMonitor(portal, own_domains=(_brand_token(brand),))
        alerts = monitor.scan()
        assert alerts, "hotlinking campaigns must surface"
        hotlink_domains = {
            plan.host
            for plan in small_corpus.domain_plans
            if plan.options.hotlink_brand_resources and plan.brand.name == brand
        }
        assert monitor.alert_domains() & hotlink_domains

    def test_alert_carries_first_seen_and_hits(self, small_corpus, analyzed_records):
        brand = _hotlinked_brand(small_corpus)
        portal = small_corpus.world.portals[brand]
        alerts = ReferralMonitor(portal, own_domains=(_brand_token(brand),)).scan()
        for alert in alerts:
            assert alert.hits >= 1
            assert alert.asset_path.startswith("/assets/")
            assert alert.first_seen >= 0.0

    def test_own_referrers_ignored(self, small_corpus, analyzed_records):
        portal = small_corpus.world.portals["SkyBooker"]
        monitor = ReferralMonitor(portal, own_domains=("skybooker.example",))
        for alert in monitor.scan():
            assert "skybooker.example" not in alert.phishing_domain

    def test_alerts_precede_or_match_reports(self, small_corpus, analyzed_records):
        """The referral fires at crawl/victim time — early detection."""
        brand = _hotlinked_brand(small_corpus)
        portal = small_corpus.world.portals[brand]
        alerts = ReferralMonitor(portal, own_domains=(_brand_token(brand),)).scan()
        by_domain = {}
        for record in analyzed_records:
            for domain in record.landing_domains:
                by_domain.setdefault(domain, record.delivered_at)
        for alert in alerts:
            if alert.phishing_domain in by_domain:
                # analysis_delay_hours after delivery is when the crawler hit it
                assert alert.first_seen <= by_domain[alert.phishing_domain] + 48.0


class TestEmailFilters:
    @pytest.fixture(scope="class")
    def deployment_and_network(self):
        from repro.web.network import Network
        from repro.web.whois import WhoisRecord

        network = Network()
        kit = CredentialKit(COMPANY_BRANDS[0], CredentialKitOptions(block_cloud_ips=False))
        deployment = kit.deploy(network, "filter-test.example", ip="185.7.7.7", cert_issued_at=0.0)
        # Registered 24 days (the paper's median) before delivery at t=600h.
        network.whois.register(
            WhoisRecord("filter-test.example", "NameCheap", created=600.0 - 575.0, expires=99999.0)
        )
        return deployment, network

    def _lure(self, deployment, embed, **kwargs):
        return build_credential_lure(
            deployment, "v@corp.example", f"tok-{embed}", 600.0, random.Random(3),
            embed_as=embed, **kwargs
        )

    def test_strict_filter_misses_faulty_qr(self, deployment_and_network):
        deployment, network = deployment_and_network
        message = self._lure(deployment, "faulty_qr")
        strict = ModeledEmailFilter(name="strict", lenient_qr=False, max_domain_age_flag_days=90.0)
        lenient = ModeledEmailFilter(name="lenient", lenient_qr=True, max_domain_age_flag_days=90.0)
        assert not strict.scan(message, network).extracted_urls
        assert lenient.scan(message, network).extracted_urls

    def test_no_image_scanning_misses_all_qr(self, deployment_and_network):
        deployment, network = deployment_and_network
        message = self._lure(deployment, "qr")
        blind = ModeledEmailFilter(name="blind", lenient_qr=True, scan_images=False)
        assert not blind.scan(message, network).extracted_urls

    def test_base64_blindness(self, deployment_and_network):
        deployment, network = deployment_and_network
        message = EmailMessage(delivered_at=600.0)
        message.add_part(MessagePart.text("https://filter-test.example/x", base64_encode=True))
        no_decode = ModeledEmailFilter(name="nodecode", decode_base64=False,
                                       max_domain_age_flag_days=90.0)
        decode = ModeledEmailFilter(name="decode", max_domain_age_flag_days=90.0)
        assert not no_decode.scan(message, network).malicious
        assert decode.scan(message, network).malicious

    def test_preregistration_defeats_age_flag(self, deployment_and_network):
        """The paper's core timeline finding: 24-day-old domains pass
        everything but an (unusably aggressive) 90-day rule."""
        deployment, network = deployment_and_network
        message = self._lure(deployment, "link")
        conservative = ModeledEmailFilter(name="2d", lenient_qr=True, max_domain_age_flag_days=2.0)
        aggressive = ModeledEmailFilter(name="90d", lenient_qr=True, max_domain_age_flag_days=90.0)
        assert not conservative.scan(message, network).malicious  # evaded
        verdict = aggressive.scan(message, network)
        assert verdict.malicious and any(r.startswith("new-domain") for r in verdict.reasons)

    def test_denylist_catches_known_domains_only(self, deployment_and_network):
        deployment, network = deployment_and_network
        message = self._lure(deployment, "link")
        listed = ModeledEmailFilter(name="listed", lenient_qr=True,
                                    denylist=frozenset({"filter-test.example"}))
        unlisted = ModeledEmailFilter(name="unlisted", lenient_qr=True,
                                      denylist=frozenset({"other.example"}))
        assert listed.scan(message, network).malicious
        assert not unlisted.scan(message, network).malicious

    def test_fraud_messages_evade_everything(self):
        """No URL, no attachment: nothing for URL-centric filters to flag."""
        from repro.kits.fraud import build_fraud_message

        message = build_fraud_message("v@corp.example", 10.0, random.Random(2))
        for gateway in REFERENCE_FILTERS:
            assert not gateway.scan(message).malicious

    def test_catch_rate_bounds(self, deployment_and_network):
        deployment, network = deployment_and_network
        messages = [self._lure(deployment, "link"), self._lure(deployment, "faulty_qr")]
        gateway = ModeledEmailFilter(name="g", lenient_qr=False, max_domain_age_flag_days=90.0)
        rate = gateway.catch_rate(messages, network)
        assert 0.0 <= rate <= 1.0
        assert ModeledEmailFilter(name="empty").catch_rate([]) == 0.0
