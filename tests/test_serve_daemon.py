"""The ``repro serve`` daemon, end to end: live sockets, real signals.

The determinism contract under test (the PR-5 invariant extended to
service mode): every verdict record depends only on (seed material,
admission index), so

- a daemon killed with SIGTERM drains its accepted submissions, and a
  restarted daemon replaying the remaining transcript produces a
  records.jsonl byte-identical to an uninterrupted daemon's;
- the daemon's records are byte-identical to a *batch* analysis of the
  same messages in admission order;
- under sustained overload the daemon sheds with explicit machine-
  readable ``overloaded`` responses — never silent drops — and the shed
  set is identical on every replay of the same arrival order.

The SIGTERM tests drive the real CLI in a subprocess, mirroring
``test_shutdown.py``.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro._budget import DEFAULT_WORK_LIMIT
from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.admission import AdmissionConfig

SEED, SCALE = 31, 0.02
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _eml(i: int) -> bytes:
    return (
        f"From: \"IT Support\" <support@spammer{i}.ru>\n"
        f"To: victim@corp.example\n"
        f"Subject: Password expires today {i}\n"
        f"Date: Tue, 12 Mar 2024 10:30:00 +0000\n"
        f"MIME-Version: 1.0\n"
        f"Content-Type: text/html; charset=utf-8\n"
        f"\n"
        f"<html><body><a href=\"https://phish{i}.example/portal\">Open</a>"
        f"</body></html>\n"
    ).encode()


MESSAGES = [_eml(i) for i in range(8)]


@contextlib.contextmanager
def _daemon(directory, **overrides):
    config = ServeConfig(
        seed=SEED, scale=SCALE, jobs=overrides.pop("jobs", 2),
        executor=overrides.pop("executor", "thread"),
        batch_size=overrides.pop("batch_size", 3),
        **overrides,
    )
    daemon = ServeDaemon(config, directory)
    daemon.start()
    try:
        yield daemon
    finally:
        daemon.request_shutdown()
        assert daemon.wait() == 0


def _records_lines(directory) -> list[bytes]:
    return sorted(pathlib.Path(directory, "records.jsonl").read_bytes().splitlines())


def _assert_reconciled(stats: dict) -> None:
    """The /stats invariant: every submission is accounted for exactly."""
    assert stats["submitted"] == (
        stats["accepted"] + stats["shed"] + stats["rejected"]
    )
    assert stats["accepted"] == (
        stats["completed"] + stats["failed"] + stats["queued"] + stats["in_flight"]
    )


class TestDaemonEndToEnd:
    def test_submit_verdicts_stats_and_http(self, tmp_path):
        with _daemon(tmp_path) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                assert client.ping()["op"] == "pong"
                outcomes = [
                    client.submit_bytes(raw, reporter=f"company-{i % 3}")
                    for i, raw in enumerate(MESSAGES)
                ]
                assert all(o.accepted for o in outcomes)
                assert [o.message_index for o in outcomes] == list(range(8))
                client.wait_verdicts(timeout=120)
                assert all(o.status == "verdict" for o in outcomes)
                assert all(o.record.get("category") for o in outcomes)
                stats = client.stats()
            _assert_reconciled(stats)
            assert stats["completed"] == 8 and stats["shed"] == 0
            assert stats["reporters"]["company-0"]["completed"] == 3
            assert stats["latency"]["count"] == 8
            assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"]

            # Same port, plain HTTP, for stock monitoring.
            base = f"http://127.0.0.1:{daemon.port}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
                health = json.loads(response.read())
                assert response.status == 200
                assert health["status"] == "ok" and health["pid"] == os.getpid()
            with urllib.request.urlopen(f"{base}/stats", timeout=30) as response:
                _assert_reconciled(json.loads(response.read()))
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{base}/nope", timeout=30)
            assert info.value.code == 404

        # Clean drain: manifest stopped, service block present.
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["status"] == "stopped"
        assert manifest["service"]["next_index"] == 8
        assert manifest["service"]["admission"]["arrivals"] == 8

    def test_malformed_submissions_are_rejected_not_dropped(self, tmp_path):
        with _daemon(tmp_path) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=60) as client:
                client._send({"op": "submit", "id": "bad-1", "reporter": "acme",
                              "eml": "###not-base64###"})
                while True:
                    payload = client._pump_one()
                    if payload.get("id") == "bad-1":
                        assert payload["op"] == "rejected"
                        assert "base64" in payload["reason"]
                        break
                client._send({"op": "submit", "id": "bad-2", "reporter": "acme"})
                while True:
                    payload = client._pump_one()
                    if payload.get("id") == "bad-2":
                        assert payload["op"] == "rejected"
                        break
                # Rejections never tick the admission clock.
                stats = client.stats()
                assert stats["rejected"] == 2 and stats["accepted"] == 0
                _assert_reconciled(stats)

    def test_unknown_op_is_answered(self, tmp_path):
        with _daemon(tmp_path) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=60) as client:
                client._send({"op": "frobnicate"})
                while True:
                    payload = client._pump_one()
                    if payload.get("op") == "error":
                        assert "frobnicate" in payload["reason"]
                        break


class TestOverloadShedding:
    def _overload_config(self) -> AdmissionConfig:
        # Sustainable rate = half the offered stream, tiny burst: a 2x
        # overload must shed ~half with explicit responses.
        cost = DEFAULT_WORK_LIMIT
        return AdmissionConfig(cost=cost, global_rate=cost // 2, global_burst=cost)

    def _run(self, directory) -> tuple[list[str], dict]:
        with _daemon(directory, admission=self._overload_config()) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                outcomes = [
                    client.submit_bytes(raw, reporter="acme") for raw in MESSAGES
                ]
                client.wait_verdicts(timeout=120)
                stats = client.stats()
        shed_ids = [o.client_id for o in outcomes if o.status == "overloaded"]
        # Every shed is explicit and machine-readable; nothing hangs.
        for outcome in outcomes:
            assert outcome.status in ("verdict", "overloaded")
            if outcome.status == "overloaded":
                assert outcome.reason == "global-admission-budget"
                assert outcome.retry_after_submissions is not None
        return shed_ids, stats

    def test_two_x_overload_sheds_deterministically(self, tmp_path):
        shed_a, stats_a = self._run(tmp_path / "a")
        shed_b, stats_b = self._run(tmp_path / "b")
        # The shed set is a pure function of arrival order + budget.
        assert shed_a == shed_b
        assert 0.25 <= len(shed_a) / len(MESSAGES) <= 0.75
        # Zero dead letters, exact accounting.
        for stats in (stats_a, stats_b):
            _assert_reconciled(stats)
            assert stats["failed"] == 0
            assert stats["shed"] == len(shed_a)
            assert stats["completed"] == len(MESSAGES) - len(shed_a)
        # Shed accounting survives the drain into the manifest.
        manifest = json.loads((tmp_path / "a" / "manifest.json").read_text())
        assert manifest["service"]["shed"] == len(shed_a)

    def test_submit_with_retry_converges_under_overload(self, tmp_path):
        # The client-side retry helper honors retry_after_submissions:
        # each resubmission is itself an arrival tick that refills the
        # bucket, so a lone client lands every message within its
        # bounded retry budget instead of reimplementing the loop.
        with _daemon(tmp_path, admission=self._overload_config()) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                outcomes = [
                    client.submit_with_retry(raw, reporter="acme", max_retries=4)
                    for raw in MESSAGES
                ]
                assert all(o.accepted for o in outcomes)
                assert sum(o.retries for o in outcomes) > 0
                client.wait_verdicts(timeout=120)
                assert all(o.status == "verdict" for o in outcomes)
                stats = client.stats()
        _assert_reconciled(stats)
        assert stats["completed"] == len(MESSAGES)
        # The retried (shed) attempts are still explicit in the ledger.
        assert stats["shed"] == sum(o.retries for o in outcomes)


class TestRestartByteIdentity:
    def test_restart_replay_matches_uninterrupted_and_batch(self, tmp_path):
        full_dir, split_dir = tmp_path / "full", tmp_path / "split"
        with _daemon(full_dir) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                for raw in MESSAGES:
                    client.submit_bytes(raw, reporter="acme")
                client.wait_verdicts(timeout=120)

        # The same transcript split across a drain + restart.
        for part in (MESSAGES[:5], MESSAGES[5:]):
            with _daemon(split_dir) as daemon:
                with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                    for raw in part:
                        client.submit_bytes(raw, reporter="acme")
                    client.wait_verdicts(timeout=120)

        assert _records_lines(split_dir) == _records_lines(full_dir)
        manifest = json.loads((split_dir / "manifest.json").read_text())
        assert manifest["status"] == "stopped"
        assert manifest["service"]["next_index"] == len(MESSAGES)

        # And both equal a batch analysis of the same messages in
        # admission order, through the same pipeline entry points.
        from repro.core import CrawlerBox
        from repro.core.export import record_to_line
        from repro.dataset import CorpusGenerator
        from repro.mail.ingest import ingest_eml_bytes
        from repro.runner.checkpoint import encode_record_line

        corpus = CorpusGenerator(seed=SEED, scale=SCALE).generate()
        box = CrawlerBox.for_world(corpus.world)
        batch = sorted(
            encode_record_line(
                record_to_line(box.analyze(ingest_eml_bytes(raw), message_index=i))
            ).encode()
            for i, raw in enumerate(MESSAGES)
        )
        assert batch == _records_lines(full_dir)

    def test_process_engine_matches_thread_engine(self, tmp_path):
        thread_dir, process_dir = tmp_path / "thread", tmp_path / "process"
        for directory, executor in ((thread_dir, "thread"), (process_dir, "process")):
            with _daemon(directory, executor=executor) as daemon:
                with ServeClient("127.0.0.1", daemon.port, timeout=240) as client:
                    for raw in MESSAGES:
                        client.submit_bytes(raw, reporter="acme")
                    client.wait_verdicts(timeout=240)
        assert _records_lines(process_dir) == _records_lines(thread_dir)


# ----------------------------------------------------------------------
# Real signals against the real CLI, mirroring test_shutdown.py
# ----------------------------------------------------------------------
def _launch_serve(checkpoint) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--checkpoint", str(checkpoint),
         "--seed", str(SEED), "--scale", str(SCALE),
         "--jobs", "2", "--executor", "thread"],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        start_new_session=True,
    )


def _wait_for_endpoint(checkpoint, process, timeout: float = 120.0) -> dict:
    deadline = time.time() + timeout
    endpoint_path = pathlib.Path(checkpoint) / "endpoint.json"
    while time.time() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon exited early ({process.returncode}):\n{process.stdout.read()}"
            )
        if endpoint_path.exists():
            try:
                endpoint = json.loads(endpoint_path.read_text())
            except json.JSONDecodeError:
                endpoint = None
            if endpoint and endpoint.get("pid") == process.pid:
                return endpoint
        time.sleep(0.1)
    raise AssertionError(f"no endpoint.json after {timeout}s")


class TestSigtermDrain:
    def test_kill_between_submissions_then_restart_is_byte_identical(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        with _daemon(baseline_dir) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                for raw in MESSAGES:
                    client.submit_bytes(raw, reporter="acme")
                client.wait_verdicts(timeout=120)

        served_dir = tmp_path / "served"
        process = _launch_serve(served_dir)
        try:
            endpoint = _wait_for_endpoint(served_dir, process)
            client = ServeClient(endpoint["host"], endpoint["port"], timeout=120)
            accepted = [client.submit_bytes(raw, reporter="acme") for raw in MESSAGES[:5]]
            assert all(o.accepted for o in accepted)
            # SIGTERM lands between submissions, possibly with analysis
            # still in flight: the daemon must drain every accepted
            # submission before exiting 0.
            os.killpg(process.pid, signal.SIGTERM)
            assert process.wait(timeout=240) == 0
            with contextlib.suppress(Exception):
                client.close(bye=False)
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=60)

        manifest = json.loads((served_dir / "manifest.json").read_text())
        assert manifest["status"] == "stopped"
        assert manifest["service"]["next_index"] == 5
        assert len(_records_lines(served_dir)) == 5  # drained, durable

        # Restart on the same checkpoint; the client replays the rest.
        (served_dir / "endpoint.json").unlink()
        process = _launch_serve(served_dir)
        try:
            endpoint = _wait_for_endpoint(served_dir, process)
            with ServeClient(endpoint["host"], endpoint["port"], timeout=120) as client:
                outcomes = [
                    client.submit_bytes(raw, reporter="acme") for raw in MESSAGES[5:]
                ]
                assert [o.message_index for o in outcomes] == [5, 6, 7]
                client.wait_verdicts(timeout=120)
                stats = client.stats()
                _assert_reconciled(stats)
                assert stats["completed"] == 8  # restored + new
            os.killpg(process.pid, signal.SIGTERM)
            assert process.wait(timeout=240) == 0
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=60)

        assert _records_lines(served_dir) == _records_lines(baseline_dir)
