"""Network fabric tests: HTTP, DNS, TLS, WHOIS, dispatch."""

import pytest

from repro.web.context import ClientContext
from repro.web.dns import DnsResolver, NxDomainError
from repro.web.http import Headers, HttpRequest, HttpResponse
from repro.web.network import ConnectionFailed, Network, TLSValidationError
from repro.web.site import Page, Website, benign_decoy_page
from repro.web.tls import CertificateTransparencyLog, TLSCertificate
from repro.web.whois import WhoisRecord, WhoisRegistry


class TestHeaders:
    def test_case_insensitive(self):
        headers = Headers({"User-Agent": "x"})
        assert headers.get("user-agent") == "x"
        assert "USER-AGENT" in headers

    def test_set_overwrites(self):
        headers = Headers()
        headers.set("X-Test", "1")
        headers.set("x-test", "2")
        assert headers.get("X-Test") == "2"
        assert len(headers.items()) == 1

    def test_copy_is_independent(self):
        headers = Headers({"A": "1"})
        clone = headers.copy()
        clone.set("A", "2")
        assert headers.get("A") == "1"


class TestHttpTypes:
    def test_request_get_helper(self):
        request = HttpRequest.get("https://a.example/x?q=1")
        assert request.method == "GET"
        assert request.url.host == "a.example"

    def test_redirect_response(self):
        response = HttpResponse.redirect("https://b.example/")
        assert response.is_redirect
        assert response.location == "https://b.example/"

    def test_plain_200_is_not_redirect(self):
        assert not HttpResponse(status=200).is_redirect


class TestDns:
    def test_resolve_and_log(self):
        resolver = DnsResolver()
        resolver.add_record("a.example", "1.2.3.4")
        assert resolver.resolve("A.EXAMPLE", timestamp=5.0) == "1.2.3.4"
        assert resolver.query_log == [(5.0, "a.example")]

    def test_nxdomain(self):
        with pytest.raises(NxDomainError):
            DnsResolver().resolve("missing.example")

    def test_time_windowed_records(self):
        resolver = DnsResolver()
        resolver.add_record("a.example", "1.1.1.1", active_from=10.0, active_until=20.0)
        with pytest.raises(NxDomainError):
            resolver.resolve("a.example", timestamp=5.0)
        assert resolver.resolve("a.example", timestamp=15.0) == "1.1.1.1"
        with pytest.raises(NxDomainError):
            resolver.resolve("a.example", timestamp=25.0)

    def test_queries_for(self):
        resolver = DnsResolver()
        resolver.add_record("a.example", "1.1.1.1")
        resolver.resolve("a.example", timestamp=1.0)
        resolver.resolve("a.example", timestamp=2.0)
        assert resolver.queries_for("a.example") == [1.0, 2.0]


class TestTls:
    def test_covers_exact_and_wildcard(self):
        cert = TLSCertificate("evil.com", "CA", 0.0, 100.0, sans=("*.evil.com",))
        assert cert.covers("evil.com")
        assert cert.covers("login.evil.com")
        assert not cert.covers("deep.login.evil.com")
        assert not cert.covers("other.com")

    def test_validity_window(self):
        cert = TLSCertificate("a.com", "CA", 10.0, 20.0)
        assert not cert.valid_at(5.0)
        assert cert.valid_at(15.0)
        assert not cert.valid_at(25.0)

    def test_ct_log_earliest(self):
        log = CertificateTransparencyLog()
        log.submit(TLSCertificate("a.com", "CA", 50.0, 100.0))
        log.submit(TLSCertificate("a.com", "CA", 10.0, 60.0))
        assert log.earliest_issuance("a.com") == 10.0
        assert log.earliest_issuance("other.com") is None

    def test_fingerprint_stable(self):
        a = TLSCertificate("a.com", "CA", 0.0, 1.0)
        b = TLSCertificate("a.com", "CA", 0.0, 1.0)
        assert a.fingerprint == b.fingerprint


class TestWhois:
    def test_register_lookup(self):
        registry = WhoisRegistry()
        registry.register(WhoisRecord("evil.com", "NameCheap", created=100.0, expires=9000.0))
        record = registry.lookup("EVIL.COM")
        assert record is not None and record.registrar == "NameCheap"
        assert record.age_at(124.0) == 24.0

    def test_missing_domain(self):
        assert WhoisRegistry().lookup("none.example") is None


class TestNetworkDispatch:
    def _network_with_site(self):
        network = Network()
        site = Website("a.example", ip="9.9.9.9")
        site.add_page("/", Page(html="<html><body>home</body></html>"))
        network.host_website(site)
        network.issue_certificate(TLSCertificate("a.example", "CA", 0.0, 1000.0))
        return network

    def test_basic_request(self):
        network = self._network_with_site()
        response = network.request(HttpRequest.get("https://a.example/", timestamp=5.0), ClientContext())
        assert response.status == 200 and "home" in response.body

    def test_host_website_normalizes_mixed_case_domain(self):
        # Website.__init__ lowercases, but a domain reassigned after
        # construction can carry mixed case; hosting must normalize at
        # insertion or the site becomes unreachable and un-take-downable.
        network = Network()
        site = Website("placeholder.example", ip="9.9.9.9")
        site.domain = "MiXeD.Example"
        site.add_page("/", Page(html="<html><body>cased</body></html>"))
        network.host_website(site)
        assert network.website("mixed.example") is site
        assert network.website("MIXED.EXAMPLE") is site
        response = network.request(
            HttpRequest.get("http://mixed.example/", timestamp=5.0), ClientContext()
        )
        assert response.status == 200 and "cased" in response.body
        network.take_down("Mixed.Example")
        assert network.website("mixed.example") is None

    def test_unknown_path_404(self):
        network = self._network_with_site()
        response = network.request(HttpRequest.get("https://a.example/missing", timestamp=5.0), ClientContext())
        assert response.status == 404

    def test_nxdomain_raises(self):
        network = self._network_with_site()
        with pytest.raises(NxDomainError):
            network.request(HttpRequest.get("https://other.example/"), ClientContext())

    def test_take_down_leaves_dns(self):
        network = self._network_with_site()
        network.take_down("a.example")
        with pytest.raises(ConnectionFailed):
            network.request(HttpRequest.get("https://a.example/", timestamp=5.0), ClientContext())

    def test_expired_certificate(self):
        network = self._network_with_site()
        with pytest.raises(TLSValidationError):
            network.request(HttpRequest.get("https://a.example/", timestamp=5000.0), ClientContext())

    def test_http_skips_tls_validation(self):
        network = self._network_with_site()
        response = network.request(HttpRequest.get("http://a.example/", timestamp=5000.0), ClientContext())
        assert response.status == 200

    def test_ip_services(self):
        network = Network()
        network.install_ip_services()
        context = ClientContext(ip="5.6.7.8", country="DE", asn="AS111")
        response = network.request(HttpRequest.get("https://httpbin.org/ip"), context)
        assert '"origin": "5.6.7.8"' in response.body
        enriched = network.request(HttpRequest.get("https://ipapi.co/json"), context)
        assert '"country": "DE"' in enriched.body

    def test_access_log_records_decoy(self):
        network = Network()
        site = Website("guarded.example", ip="8.8.8.8")
        from repro.web.cloaking import UserAgentGuard

        page = Page(html="<html><body>secret</body></html>", guards=[UserAgentGuard.mobile_only()], decoy=benign_decoy_page())
        site.add_page("/", page)
        network.host_website(site)
        network.issue_certificate(TLSCertificate("guarded.example", "CA", 0.0, 1000.0))
        request = HttpRequest.get("https://guarded.example/", timestamp=1.0)
        request.headers.set("User-Agent", "DesktopBot/1.0")
        response = network.request(request, ClientContext())
        assert "secret" not in response.body
        assert site.access_log[0].served_decoy
