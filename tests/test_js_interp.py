"""Interpreter semantics tests."""

import math

import pytest

from repro.js import Interpreter, JSError, JSTimeoutError
from repro.js.interp import JSArray, JSObject, NativeFunction, UNDEFINED


def run(source: str):
    return Interpreter().run(source)


class TestExpressions:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2 * 3", 7.0),
            ("(1 + 2) * 3", 9.0),
            ("10 % 3", 1.0),
            ("2 ** 10", 1024.0),
            ("'a' + 1", "a1"),
            ("1 + '1'", "11"),
            ("'5' - 2", 3.0),
            ("-'4'", -4.0),
            ("!0", True),
            ("!!'x'", True),
            ("typeof 'x'", "string"),
            ("typeof 5", "number"),
            ("typeof undefined", "undefined"),
            ("typeof {}", "object"),
            ("typeof function(){}", "function"),
            ("1 < 2 && 2 < 3", True),
            ("false || 'default'", "default"),
            ("null ?? 'fallback'", "fallback"),
            ("0 ?? 'fallback'", 0.0),
            ("true ? 'y' : 'n'", "y"),
            ("5 & 3", 1.0),
            ("5 | 2", 7.0),
            ("1 << 4", 16.0),
            ("void 0", UNDEFINED),
        ],
    )
    def test_evaluation(self, source, expected):
        assert run(source) == expected

    def test_division_semantics(self):
        assert run("1 / 0") == math.inf
        assert run("-1 / 0") == -math.inf
        assert math.isnan(run("0 / 0"))

    def test_nan_comparisons(self):
        assert run("0/0 < 1") is False
        assert run("0/0 >= 0") is False


class TestEquality:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("null == undefined", True),
            ("null === undefined", False),
            ("'5' == 5", True),
            ("'5' === 5", False),
            ("true == 1", True),
            ("true === 1", False),
            ("'' == 0", True),
            ("'abc' == 'abc'", True),
            ("[] === []", False),
        ],
    )
    def test_loose_vs_strict(self, source, expected):
        assert run(source) is expected

    def test_object_identity(self):
        assert run("var a = {}; var b = a; a === b") is True


class TestControlFlow:
    def test_while_break_continue(self):
        assert run("var s=''; var i=0; while(i<6){i++; if(i==3)continue; if(i==5)break; s+=i;} s") == "124"

    def test_for_loop(self):
        assert run("var t=0; for(var i=1;i<=4;i++){t+=i} t") == 10.0

    def test_do_while(self):
        assert run("var n=0; do { n++; } while (n < 3); n") == 3.0

    def test_for_in_object(self):
        assert run("var keys=''; for (var k in {a:1,b:2}) { keys+=k; } keys") == "ab"

    def test_for_of_array(self):
        assert run("var t=0; for (var v of [1,2,3]) { t+=v; } t") == 6.0

    def test_switch_with_fallthrough(self):
        source = """
        var out = '';
        switch (2) {
          case 1: out += 'one';
          case 2: out += 'two';
          case 3: out += 'three'; break;
          case 4: out += 'four';
        }
        out
        """
        assert run(source) == "twothree"

    def test_switch_default(self):
        assert run("var o=''; switch(9){case 1: o='a'; break; default: o='d';} o") == "d"

    def test_throw_and_catch(self):
        assert run("var r=''; try { throw 'boom' } catch (e) { r = e } r") == "boom"

    def test_finally_always_runs(self):
        assert run("var r=''; try { r='t' } finally { r+='f' } r") == "tf"

    def test_runtime_error_catchable(self):
        assert run("var r='no'; try { missing.prop } catch (e) { r='caught' } r") == "caught"


class TestFunctions:
    def test_closures(self):
        source = """
        function counter() { var n = 0; return function() { n++; return n; }; }
        var c = counter();
        c(); c(); c()
        """
        assert run(source) == 3.0

    def test_hoisting(self):
        assert run("var r = f(); function f() { return 42; } r") == 42.0

    def test_this_binding_on_method_call(self):
        assert run("var o = { v: 7, get_: function() { return this.v; } }; o.get_()") == 7.0

    def test_arrow_captures_lexical_scope(self):
        assert run("var add = (a) => (b) => a + b; add(2)(3)") == 5.0

    def test_arguments_object(self):
        assert run("function f() { return arguments.length; } f(1, 2, 3)") == 3.0

    def test_default_missing_args_undefined(self):
        assert run("function f(a, b) { return typeof b; } f(1)") == "undefined"

    def test_named_function_expression_self_reference(self):
        assert run("var f = function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); }; f(5)") == 120.0

    def test_call_apply_bind(self):
        assert run("function f(a) { return this.x + a; } f.call({x: 1}, 2)") == 3.0
        assert run("function f(a, b) { return a + b; } f.apply(null, [3, 4])") == 7.0
        assert run("function f(a, b) { return a * b; } var g = f.bind(null, 6); g(7)") == 42.0

    def test_calling_non_function_raises(self):
        with pytest.raises(JSError):
            run("var x = 5; x()")

    def test_update_operators(self):
        assert run("var i = 5; i++") == 5.0
        assert run("var i = 5; ++i") == 6.0
        assert run("var i = 5; i--; i") == 4.0


class TestObjectsAndArrays:
    def test_property_assignment(self):
        assert run("var o = {}; o.a = 1; o['b'] = 2; o.a + o.b") == 3.0

    def test_delete(self):
        assert run("var o = {a: 1}; delete o.a; typeof o.a") == "undefined"

    def test_in_operator(self):
        assert run("'a' in {a: 1}") is True
        assert run("'z' in {a: 1}") is False
        assert run("1 in [10, 20]") is True

    def test_array_index_write_extends(self):
        assert run("var a = []; a[3] = 'x'; a.length") == 4.0

    def test_array_length_truncation(self):
        assert run("var a = [1,2,3,4]; a.length = 2; a.join(',')") == "1,2"

    def test_nested_structures(self):
        assert run("var o = {list: [{v: 5}]}; o.list[0].v") == 5.0


class TestEvalAndSafety:
    def test_eval_in_current_scope(self):
        assert run("var x = 10; eval('x + 5')") == 15.0

    def test_eval_can_define(self):
        assert run("eval('var y = 3;'); y") == 3.0

    def test_step_budget(self):
        with pytest.raises(JSTimeoutError):
            Interpreter(step_limit=5000).run("while (true) {}")

    def test_reference_error(self):
        with pytest.raises(JSError):
            run("missingVariable")

    def test_property_of_undefined_raises(self):
        with pytest.raises(JSError):
            run("undefined.prop")


class TestHostInterop:
    def test_native_function_call(self):
        interp = Interpreter()
        captured = []
        interp.globals.declare(
            "report", NativeFunction(lambda _i, _t, args: captured.append(args[0]), "report")
        )
        interp.run("report('hello from script')")
        assert captured == ["hello from script"]

    def test_host_object_roundtrip(self):
        interp = Interpreter()
        host = JSObject({"value": 10.0})
        interp.globals.declare("host", host)
        interp.run("host.value = host.value * 2; host.doubled = true;")
        assert host.get("value") == 20.0
        assert host.get("doubled") is True

    def test_timers_collected_not_run(self):
        interp = Interpreter()
        interp.run("setInterval(function() { ticks = (typeof ticks === 'undefined' ? 0 : ticks) + 1; }, 100)")
        assert len(interp.timers) == 1
        interp.run_due_timers()
        interp.run_due_timers()
        assert interp.globals.lookup("ticks") == 2.0

    def test_clear_interval(self):
        interp = Interpreter()
        interp.run("var id = setInterval(function(){}, 50); clearInterval(id);")
        interp.run_due_timers()
        assert not interp.timers

    def test_debugger_hook(self):
        interp = Interpreter()
        hits = []
        interp.on_debugger = lambda: hits.append(1)
        interp.run("debugger; debugger;")
        assert len(hits) == 2
