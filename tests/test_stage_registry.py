"""Fast stage-registry consistency checks (no corpus, no crawling).

Run standalone in CI as a cheap guard::

    PYTHONPATH=src python -m pytest tests/test_stage_registry.py -q

Invariants:

- the registry holds exactly the Figure 1 stages, in Figure 1 order;
- every registered stage name has a row in the profiler table schema
  (:data:`repro.runner.profile.PROFILE_TABLE_STAGES` is a literal so
  ``runner.profile`` never imports ``core.stages`` — this test is the
  enforcement);
- requires/provides form a DAG the default plan can satisfy;
- plan construction rejects cycles, duplicates, unknown names, and
  selections whose ``requires`` no selected stage provides.
"""

from __future__ import annotations

import pytest

from repro.core.stages import (
    BUILTIN_STAGES,
    STAGE_NAMES,
    Stage,
    StagePlan,
    StagePlanError,
    build_plan,
    registered_stage_names,
)
from repro.runner.profile import PROFILE_TABLE_STAGES, UNATTRIBUTED

FIGURE_1_ORDER = ("auth", "parse", "dynamic-html", "crawl", "classify", "spear", "enrich")


class _FakeStage:
    """Minimal concrete stage for graph-validation tests."""

    def __init__(self, name, requires=(), provides=()):
        self.name = name
        self.requires = tuple(requires)
        self.provides = tuple(provides)

    def run(self, ctx):
        return None


class TestRegistryContents:
    def test_builtin_stage_names_match_figure_1(self):
        assert STAGE_NAMES == FIGURE_1_ORDER
        assert registered_stage_names() == FIGURE_1_ORDER

    def test_stages_satisfy_the_protocol(self):
        for stage in BUILTIN_STAGES:
            assert isinstance(stage, Stage)
            assert isinstance(stage.requires, tuple)
            assert isinstance(stage.provides, tuple)

    def test_every_stage_has_a_profiler_row(self):
        for name in registered_stage_names():
            assert name in PROFILE_TABLE_STAGES, (
                f"stage {name!r} missing from PROFILE_TABLE_STAGES — "
                "add it to repro/runner/profile.py"
            )

    def test_profiler_table_is_registry_plus_residual_bucket(self):
        assert PROFILE_TABLE_STAGES == STAGE_NAMES + (UNATTRIBUTED,)

    def test_no_stage_shadows_the_residual_bucket(self):
        assert UNATTRIBUTED not in STAGE_NAMES


class TestDefaultPlan:
    def test_default_plan_orders_like_figure_1(self):
        assert build_plan().stage_names == FIGURE_1_ORDER

    def test_requires_are_provided_by_earlier_stages(self):
        plan = build_plan()
        available = set()
        for stage in plan.stages:
            for token in stage.requires:
                assert token in available, (
                    f"{stage.name} requires {token!r} before any stage provides it"
                )
            available.update(stage.provides)

    def test_provides_are_unique_across_builtins(self):
        tokens = [token for stage in BUILTIN_STAGES for token in stage.provides]
        assert len(tokens) == len(set(tokens))


class TestPlanValidation:
    def test_cycles_are_rejected(self):
        a = _FakeStage("a", requires=("y",), provides=("x",))
        b = _FakeStage("b", requires=("x",), provides=("y",))
        with pytest.raises(StagePlanError, match="cycle"):
            StagePlan([a, b])

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(StagePlanError, match="duplicate"):
            StagePlan([_FakeStage("a"), _FakeStage("a")])

    def test_unknown_selection_is_rejected(self):
        with pytest.raises(StagePlanError, match="unknown stage"):
            build_plan(["auth", "fetch"])

    def test_unsatisfied_requires_are_rejected(self):
        with pytest.raises(StagePlanError, match="requires"):
            build_plan(["classify"])  # needs extraction + crawls

    def test_out_of_order_stable_sort(self):
        # Registration order is only a tiebreak: a consumer registered
        # before its producer still sorts after it.
        producer = _FakeStage("late-producer", provides=("t",))
        consumer = _FakeStage("early-consumer", requires=("t",))
        plan = StagePlan([consumer, producer])
        assert plan.stage_names == ("late-producer", "early-consumer")
