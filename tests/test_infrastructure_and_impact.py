"""Tests for the infrastructure pivot graph and the crawler-impact ablation."""

import networkx as nx
import pytest

from repro.analysis.crawler_impact import measure_crawler_impact
from repro.analysis.infrastructure import (
    KIND_DOMAIN,
    build_infrastructure_graph,
    cluster_campaigns,
    pivot_from_domain,
    summarize_infrastructure,
)


class TestInfrastructureGraph:
    @pytest.fixture(scope="class")
    def graph(self, analyzed_records):
        return build_infrastructure_graph(analyzed_records)

    def test_nodes_are_kind_tagged(self, graph):
        kinds = {data.get("kind") for _, data in graph.nodes(data=True)}
        assert {"domain", "ip", "sender"} <= kinds
        assert "script" in kinds  # the shared victim-check droppers

    def test_every_domain_has_a_host_edge(self, graph):
        for node, data in graph.nodes(data=True):
            if data.get("kind") == KIND_DOMAIN:
                vias = {graph.edges[node, neighbour].get("via") for neighbour in graph[node]}
                assert "hosting" in vias, node

    def test_campaigns_cover_all_domains(self, graph, analyzed_records):
        campaigns = cluster_campaigns(graph)
        domains_in_campaigns = {d for campaign in campaigns for d in campaign.domains}
        graph_domains = {
            node for node, data in graph.nodes(data=True) if data.get("kind") == KIND_DOMAIN
        }
        assert domains_in_campaigns == graph_domains

    def test_most_campaigns_are_singletons(self, analyzed_records):
        """The low-volume finding, structurally."""
        summary = summarize_infrastructure(analyzed_records)
        assert summary.singleton_campaigns > summary.n_campaigns * 0.7
        assert summary.largest_campaign_domains >= 3

    def test_script_sharing_links_campaigns(self, analyzed_records):
        summary = summarize_infrastructure(analyzed_records)
        assert summary.script_linked_campaigns >= 2  # victim-check A and B

    def test_pivot_reaches_script_siblings(self, graph):
        campaigns = cluster_campaigns(graph)
        largest = campaigns[0]
        assert largest.shared_scripts  # glued by a shared script
        related = pivot_from_domain(graph, largest.domains[0])
        assert set(related) == set(largest.domains) - {largest.domains[0]}

    def test_pivot_from_unknown_domain(self, graph):
        assert pivot_from_domain(graph, "ghost.example") == []

    def test_graph_is_undirected_simple(self, graph):
        assert isinstance(graph, nx.Graph)
        assert not any(u == v for u, v in graph.edges)


class TestCrawlerImpact:
    @pytest.fixture(scope="class")
    def impacts(self, small_corpus):
        results = measure_crawler_impact(
            small_corpus, crawler_names=("kangooroo", "notabot"), sample_size=60
        )
        return {result.crawler: result for result in results}

    def test_notabot_sees_everything(self, impacts):
        assert impacts["notabot"].recall >= 0.99

    def test_naive_crawler_mostly_cloaked(self, impacts):
        assert impacts["kangooroo"].recall < 0.5
        assert impacts["kangooroo"].cloaked_away > 0

    def test_counts_consistent(self, impacts):
        for result in impacts.values():
            assert result.detected_active + result.cloaked_away == result.phishing_messages
