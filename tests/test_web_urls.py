"""URL parsing and domain helper tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web.urls import (
    ParsedUrl,
    UrlError,
    is_punycode,
    is_valid_url,
    parse_url,
    registered_domain,
    top_level_domain,
)


class TestParseUrl:
    def test_basic(self):
        url = parse_url("https://login.evil-site.com/path?a=1&b=2#frag")
        assert url.scheme == "https"
        assert url.host == "login.evil-site.com"
        assert url.port == 443
        assert url.path == "/path"
        assert url.query == "a=1&b=2"
        assert url.fragment == "frag"
        assert url.query_params == (("a", "1"), ("b", "2"))

    def test_default_ports(self):
        assert parse_url("http://a.example/").port == 80
        assert parse_url("https://a.example/").port == 443
        assert parse_url("https://a.example:8443/").port == 8443

    def test_origin(self):
        assert parse_url("https://a.example/x").origin == "https://a.example"
        assert parse_url("https://a.example:444/x").origin == "https://a.example:444"

    def test_missing_path_becomes_slash(self):
        assert parse_url("https://a.example").path == "/"

    def test_host_lowercased(self):
        assert parse_url("https://EVIL.Example/A").host == "evil.example"

    @pytest.mark.parametrize(
        "bad",
        ["ftp://a.example/", "not a url", "https://", "http:///path", "https://bad..host/"],
    )
    def test_invalid_urls(self, bad):
        with pytest.raises(UrlError):
            parse_url(bad)
        assert not is_valid_url(bad)

    def test_with_path(self):
        url = parse_url("https://a.example/x").with_path("/y?z=1")
        assert url.path == "/y"
        assert url.query == "z=1"


class TestRegisteredDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("evil-site.com", "evil-site.com"),
            ("login.portal.evil-site.com", "evil-site.com"),
            ("a.co.uk", "a.co.uk"),
            ("login.a.co.uk", "a.co.uk"),
            ("tenant.workers.dev", "tenant.workers.dev"),
            ("deep.tenant.workers.dev", "tenant.workers.dev"),
            ("phish.vercel.app", "phish.vercel.app"),
            ("x.y.cloudfront.net", "y.cloudfront.net"),
            ("single", "single"),
        ],
    )
    def test_cases(self, host, expected):
        assert registered_domain(host) == expected


class TestTld:
    def test_tld_extraction(self):
        assert top_level_domain("evil.com") == ".com"
        assert top_level_domain("a.b.ru") == ".ru"
        assert top_level_domain("localhost") == ".localhost"

    def test_punycode_detection(self):
        assert is_punycode("xn--mazon-wqa.com")
        assert is_punycode("login.xn--80ak6aa92e.com")
        assert not is_punycode("amazon.com")


_LABEL = st.from_regex(r"[a-z][a-z0-9\-]{0,10}[a-z0-9]", fullmatch=True)


@settings(max_examples=50, deadline=None)
@given(labels=st.lists(_LABEL, min_size=2, max_size=4), scheme=st.sampled_from(["http", "https"]))
def test_parse_url_roundtrip_property(labels, scheme):
    host = ".".join(labels)
    url = parse_url(f"{scheme}://{host}/path")
    assert url.host == host
    assert registered_domain(url.host).endswith(top_level_domain(host).lstrip("."))
