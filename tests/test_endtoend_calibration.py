"""End-to-end study reproduction at reduced scale.

Runs generate -> analyze -> measure and checks that every headline
*shape* from the paper holds: the outcome mix, the spear-phishing
majority, Turnstile's ~3/4 dominance, the faulty-QR bug, the timeline
ordering, and the fat tails.  (Exact full-scale numbers are produced by
the benchmarks and recorded in EXPERIMENTS.md.)
"""

import pytest

from repro.analysis import figures
from repro.core.outcomes import MessageCategory


@pytest.fixture(scope="module")
def measured(small_corpus, analyzed_records):
    return {
        "breakdown": figures.outcome_breakdown(analyzed_records),
        "table2": figures.table2(analyzed_records),
        "figure2": figures.figure2(analyzed_records),
        "figure3": figures.figure3(analyzed_records, small_corpus.world.network),
        "spear": figures.section5a_spear(analyzed_records, small_corpus.world),
        "nontargeted": figures.section5b_nontargeted(analyzed_records, small_corpus.world),
        "evasion": figures.section5c_evasion(analyzed_records),
    }


class TestOutcomeShape:
    """Section V: 49.6% / 15.9% / 4.5% / 0.1% / 29.9%."""

    def test_ordering_of_buckets(self, measured):
        breakdown = measured["breakdown"]
        assert (
            breakdown.count(MessageCategory.NO_RESOURCES)
            > breakdown.count(MessageCategory.ACTIVE_PHISHING)
            > breakdown.count(MessageCategory.ERROR)
            > breakdown.count(MessageCategory.INTERACTION)
            > breakdown.count(MessageCategory.DOWNLOAD)
        )

    def test_fractions_roughly_match(self, measured):
        breakdown = measured["breakdown"]
        # Small-scale minimum-count rounding shifts ratios; generous bands.
        assert 0.30 <= breakdown.fraction(MessageCategory.NO_RESOURCES) <= 0.60
        assert 0.20 <= breakdown.fraction(MessageCategory.ACTIVE_PHISHING) <= 0.45
        assert 0.08 <= breakdown.fraction(MessageCategory.ERROR) <= 0.25

    def test_nothing_unclassified(self, measured):
        assert measured["breakdown"].count(MessageCategory.OTHER) == 0


class TestSpearShape:
    """Section V-A: 73.3% spear; low medians; .com then .ru."""

    def test_spear_majority(self, measured):
        assert measured["spear"].spear_fraction > 0.6

    def test_median_one_message_per_domain(self, measured):
        assert measured["spear"].messages_per_domain_median <= 2.0

    def test_heavy_tail_campaign_exists(self, measured):
        assert measured["spear"].messages_per_domain_max >= 30

    def test_com_dominates_tlds(self, measured):
        assert measured["table2"].rows[0][0] == ".com"
        assert measured["table2"].rows[0][1] > measured["table2"].total_domains * 0.3

    def test_hotlink_minority_but_present(self, measured):
        spear = measured["spear"]
        assert 0 < spear.hotlink_messages < spear.spear_messages

    def test_most_domains_not_deceptive(self, measured):
        syntax = measured["spear"].domain_syntax
        assert syntax.deceptive_fraction < 0.35
        assert syntax.punycode == 0

    def test_ru_uses_ru_registrars(self, measured):
        from repro.web.whois import RU_REGISTRARS

        for registrar in measured["spear"].ru_registrars:
            assert registrar in RU_REGISTRARS


class TestDnsVolumeShape:
    def test_low_volume_majority(self, measured):
        volumes = measured["spear"].dns_volumes
        assert volumes.single_median_total < 200
        assert volumes.multi_median_total >= volumes.single_median_total

    def test_top_domain_is_huge_outlier(self, measured):
        volumes = measured["spear"].dns_volumes
        top_domain, top_messages, top_total = volumes.top_domains[0]
        assert top_total > 1_000_000
        # The paper's top-volume domain is also the most-reported one.
        assert top_messages == max(count for _, count, _ in volumes.top_domains)


class TestTimelineShape:
    """Figure 3: medians ~575h/185h, fat tails, A >= B."""

    def test_median_ordering(self, measured):
        figure = measured["figure3"]
        assert figure.median_timedelta_a > figure.median_timedelta_b > 24.0

    def test_median_ballpark(self, measured):
        figure = measured["figure3"]
        assert 250 <= figure.median_timedelta_a <= 1200
        assert 60 <= figure.median_timedelta_b <= 500

    def test_fat_tails(self, measured):
        figure = measured["figure3"]
        assert figure.kurtosis_a > 2.0
        assert figure.kurtosis_b > 2.0

    def test_over_90d_counts(self, measured):
        figure = measured["figure3"]
        assert figure.over_90d_a > figure.over_90d_b
        assert figure.over_90d_b >= figure.over_90d_b_compromised

    def test_outlier_composition(self, measured):
        figure = measured["figure3"]
        assert figure.outliers > 0
        assert figure.outlier_compromised >= 1
        assert figure.outlier_abused_services >= 1


class TestMonthlyVolumes:
    def test_2023_higher_and_significant(self, measured):
        figure = measured["figure2"]
        assert figure.mean_2023 > figure.mean_2024
        assert figure.t_test.significant(alpha=0.05)


class TestEvasionShape:
    def test_turnstile_three_quarters(self, measured):
        assert 0.65 <= measured["evasion"].turnstile_fraction <= 0.85

    def test_recaptcha_quarter(self, measured):
        assert 0.15 <= measured["evasion"].recaptcha_fraction <= 0.35

    def test_recaptcha_runs_behind_turnstile(self, analyzed_records):
        """"Google reCaptcha is run in the background following Turnstile"."""
        from repro.analysis.evasion import _uses_recaptcha, _uses_turnstile

        both = sum(
            1
            for record in analyzed_records
            for crawl in [record.crawls]
            if any(_uses_recaptcha(c) for c in crawl) and any(_uses_turnstile(c) for c in crawl)
        )
        only_recaptcha = sum(
            1
            for record in analyzed_records
            for crawl in [record.crawls]
            if any(_uses_recaptcha(c) for c in crawl) and not any(_uses_turnstile(c) for c in crawl)
        )
        assert both > only_recaptcha

    def test_all_messages_authenticate(self, measured, analyzed_records):
        assert measured["evasion"].auth_all_pass == len(analyzed_records)

    def test_faulty_qr_present_and_lenient_recovers(self, analyzed_records):
        from repro.qr.scanner import extract_url_strict

        faulty = [
            record
            for record in analyzed_records
            if record.qr_payloads
            and any(extract_url_strict(payload) is None for _, payload in record.qr_payloads)
        ]
        assert faulty
        # CrawlerBox (lenient) still crawled and classified them active.
        assert all(record.category == MessageCategory.ACTIVE_PHISHING for record in faulty)

    def test_victim_check_clusters_span_domains(self, measured):
        clusters = [c for c in measured["evasion"].shared_script_clusters if c.kind == "victim-check"]
        assert len(clusters) >= 2
        assert all(cluster.n_domains >= 2 for cluster in clusters)

    def test_hue_rotate_pages_gte_messages(self, measured):
        evasion = measured["evasion"]
        assert evasion.hue_rotate_pages >= evasion.hue_rotate_messages >= 1

    def test_exfiltration_subset_relation(self, measured):
        evasion = measured["evasion"]
        assert evasion.httpbin >= evasion.ipapi >= 1

    def test_local_html_attachments_active(self, measured):
        assert measured["nontargeted"].html_attachment_local >= 1
