"""Failure injection: the pipeline must survive hostile or broken inputs.

The paper's infrastructure analyzed live attacker content for ten
months; robustness against malformed and adversarial inputs is part of
the contract ("errors should never pass silently" — but hostile pages
must not kill the run either).
"""

import random

import pytest

from repro.browser.browser import Browser
from repro.browser.profile import human_chrome_profile
from repro.core import CrawlerBox
from repro.imaging.image import Image
from repro.mail.attachments import ArchiveFile, FileBlob
from repro.mail.message import ContentType, EmailMessage, MessagePart
from repro.mail.parser import EmailParser
from repro.web.http import HttpResponse
from repro.web.network import Network
from repro.web.site import Page, Website
from repro.web.tls import TLSCertificate


def _network_with(html, domain="hostile.example"):
    network = Network()
    site = Website(domain, ip="66.66.66.66")
    site.add_page("/", Page(html=html))
    network.host_website(site)
    network.issue_certificate(TLSCertificate(domain, "CA", float("-inf"), float("inf")))
    return network, site


def _visit(network, url="https://hostile.example/"):
    browser = Browser(network, human_chrome_profile(), rng=random.Random(1))
    return browser.visit(url)


class TestHostileScripts:
    def test_infinite_loop_hits_step_budget_not_hang(self):
        network, _ = _network_with(
            "<html><head><script>while(true){var x = 1;}</script></head><body>alive</body></html>"
        )
        result = _visit(network)
        session = result.final_session
        assert session is not None
        assert any("step budget" in error for error in session.signals().script_errors)

    def test_syntax_error_recorded_not_raised(self):
        network, _ = _network_with(
            "<html><head><script>this is not javascript {{{</script></head><body></body></html>"
        )
        result = _visit(network)
        assert result.final_session.signals().script_errors

    def test_throwing_script_does_not_stop_later_scripts(self):
        network, _ = _network_with(
            "<html><head><script>throw 'bomb';</script>"
            "<script>window.__second = 'ran';</script></head><body></body></html>"
        )
        result = _visit(network)
        assert result.final_session.window.get("__second") == "ran"

    def test_recursive_timer_bounded(self):
        network, _ = _network_with(
            "<html><head><script>"
            "function again(){ setTimeout(again, 1); } again();"
            "</script></head><body></body></html>"
        )
        result = _visit(network)  # terminates because timer rounds are bounded
        assert result.final_session is not None

    def test_xhr_to_dead_host_signals_error_branch(self):
        network, _ = _network_with(
            """<html><head><script>
            var xhr = new XMLHttpRequest();
            xhr.open('GET', 'https://no-such-host.invalid-zone/collect');
            xhr.onerror = function(){ window.__failed = true; };
            xhr.send();
            </script></head><body></body></html>"""
        )
        result = _visit(network)
        assert result.final_session.window.get("__failed") is True

    def test_broken_atob_payload_caught(self):
        network, _ = _network_with(
            "<html><head><script>try { atob('!!not-base64!!'); } catch (e) { window.__caught = true; }"
            "</script></head><body></body></html>"
        )
        result = _visit(network)
        assert result.final_session.window.get("__caught") is True


class TestMalformedContent:
    def test_garbage_html_still_parses(self):
        network, _ = _network_with("<<<>>><html><body><div<<<p>text</html>")
        result = _visit(network)
        assert result.final_session is not None

    def test_empty_response_body(self):
        network, site = _network_with("<html></html>")
        site.add_handler("/empty", lambda r, c: HttpResponse(status=200, body=""))
        result = _visit(network, "https://hostile.example/empty")
        assert result.outcome == "ok"

    def test_malformed_parts_in_message(self):
        message = EmailMessage()
        message.add_part(MessagePart(ContentType.IMAGE, "not an image object"))
        message.add_part(MessagePart(ContentType.PDF, 12345))
        message.add_part(MessagePart(ContentType.ZIP, None))
        message.add_part(MessagePart(ContentType.EML, "not a message"))
        report = EmailParser().parse(message)  # must not raise
        assert report.unique_urls() == []

    def test_undecodable_base64_text_part(self):
        # Invalid characters are dropped by non-validating base64 decode;
        # the part degrades to empty text and the parser survives.
        part = MessagePart(ContentType.TEXT, "!!!", transfer_encoding="base64")
        message = EmailMessage(parts=[part])
        assert part.decoded_text() == ""
        report = EmailParser().parse(message)
        assert report.unique_urls() == []

    def test_tiny_image_attachment(self):
        message = EmailMessage().add_part(MessagePart(ContentType.IMAGE, Image.new(3, 3)))
        assert EmailParser().parse(message).unique_urls() == []

    def test_deep_zip_nesting_bounded_by_structure(self):
        archive = ArchiveFile()
        inner = archive
        for depth in range(12):
            nested = ArchiveFile()
            inner.add(f"level{depth}.zip", nested)
            inner = nested
        inner.add("payload.txt", "https://deep.example/final")
        message = EmailMessage().add_part(MessagePart(ContentType.ZIP, archive))
        report = EmailParser().parse(message)
        assert report.unique_urls() == ["https://deep.example/final"]

    def test_blob_lies_about_its_magic(self):
        blob = FileBlob("fake.pdf", b"%PDF-1.7", payload="just a string, not a PdfDocument")
        message = EmailMessage().add_part(MessagePart(ContentType.OCTET_STREAM, blob))
        report = EmailParser().parse(message)  # dispatches, finds nothing, survives
        assert report.unique_urls() == []


class TestPipelineResilience:
    def test_message_with_hostile_page_still_classified(self, small_corpus):
        network = small_corpus.world.network
        site = Website("tarpit.example", ip="66.1.1.1")
        site.add_page(
            "/",
            Page(html="<html><head><script>while(true){}</script></head>"
                      "<body><form action='/c'><input type='password' name='p'/></form></body></html>"),
        )
        network.host_website(site)
        network.issue_certificate(TLSCertificate("tarpit.example", "CA", float("-inf"), float("inf")))

        message = EmailMessage(subject="tarpit")
        message.add_part(MessagePart.text("see https://tarpit.example/"))
        box = CrawlerBox.for_world(small_corpus.world)
        record = box.analyze(message)
        # The page never "revealed" anything, but the visible password form
        # is there and the pipeline classified despite the hostile script.
        assert record.category in ("active_phishing", "error_page")

    def test_many_urls_capped(self, small_corpus):
        message = EmailMessage()
        body = "\n".join(f"https://u{i}.example/x" for i in range(40))
        message.add_part(MessagePart.text(body))
        box = CrawlerBox.for_world(small_corpus.world)
        record = box.analyze(message)
        assert len(record.crawls) <= box.config.max_urls_per_message
