"""GF(256) arithmetic and Reed-Solomon codec tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qr.gf256 import (
    EXP_TABLE,
    LOG_TABLE,
    ReedSolomonError,
    gf_div,
    gf_inverse,
    gf_mul,
    gf_pow,
    poly_eval,
    poly_mul,
    rs_decode,
    rs_encode,
    rs_generator_poly,
)


class TestFieldArithmetic:
    def test_tables_are_inverse(self):
        for value in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[value]] == value

    def test_mul_identity_and_zero(self):
        for value in range(256):
            assert gf_mul(value, 1) == value
            assert gf_mul(value, 0) == 0

    def test_mul_commutative(self):
        rng = random.Random(1)
        for _ in range(100):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_mul_associative(self):
        rng = random.Random(2)
        for _ in range(100):
            a, b, c = rng.randrange(256), rng.randrange(256), rng.randrange(256)
            assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    def test_div_inverts_mul(self):
        rng = random.Random(3)
        for _ in range(100):
            a, b = rng.randrange(256), rng.randrange(1, 256)
            assert gf_div(gf_mul(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_inverse(self):
        for value in range(1, 256):
            assert gf_mul(value, gf_inverse(value)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inverse(0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(2, 8) == 0x1D  # x^8 = x^4+x^3+x^2+1 under 0x11D
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0


class TestPolynomials:
    def test_poly_mul_degree(self):
        assert len(poly_mul([1, 2], [1, 3, 4])) == 4

    def test_poly_eval_constant(self):
        assert poly_eval([7], 13) == 7

    def test_generator_poly_roots(self):
        """The generator polynomial vanishes at alpha^0..alpha^(n-1)."""
        for n_ec in (7, 10, 16):
            generator = rs_generator_poly(n_ec)
            for power in range(n_ec):
                assert poly_eval(generator, gf_pow(2, power)) == 0


class TestReedSolomon:
    def test_parity_length(self):
        assert len(rs_encode([1, 2, 3], 10)) == 10

    def test_clean_decode(self):
        data = list(range(30))
        codeword = data + rs_encode(data, 10)
        assert rs_decode(codeword, 10) == data

    def test_corrects_up_to_capacity(self):
        rng = random.Random(11)
        data = [rng.randrange(256) for _ in range(40)]
        n_ec = 16
        codeword = data + rs_encode(data, n_ec)
        corrupted = list(codeword)
        for position in rng.sample(range(len(codeword)), n_ec // 2):
            corrupted[position] ^= rng.randrange(1, 256)
        assert rs_decode(corrupted, n_ec) == data

    def test_parity_errors_also_corrected(self):
        data = [5] * 20
        codeword = data + rs_encode(data, 10)
        codeword[-1] ^= 0xFF  # corrupt a parity byte
        assert rs_decode(codeword, 10) == data

    def test_beyond_capacity_detected(self):
        rng = random.Random(12)
        data = [rng.randrange(256) for _ in range(40)]
        codeword = data + rs_encode(data, 10)
        for position in rng.sample(range(len(codeword)), 8):
            codeword[position] ^= rng.randrange(1, 256)
        with pytest.raises(ReedSolomonError):
            rs_decode(codeword, 10)

    def test_codeword_shorter_than_parity_rejected(self):
        with pytest.raises(ValueError):
            rs_decode([1, 2, 3], 5)

    def test_zero_ec_rejected(self):
        with pytest.raises(ValueError):
            rs_encode([1], 0)


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=80),
    n_ec=st.sampled_from([7, 10, 13, 18, 22, 26, 30]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_rs_roundtrip_property(data, n_ec, seed):
    """Any <= t-error corruption is corrected exactly."""
    rng = random.Random(seed)
    codeword = data + rs_encode(data, n_ec)
    n_errors = rng.randint(0, n_ec // 2)
    corrupted = list(codeword)
    for position in rng.sample(range(len(codeword)), n_errors):
        corrupted[position] ^= rng.randrange(1, 256)
    assert rs_decode(corrupted, n_ec) == data
