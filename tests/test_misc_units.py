"""Miscellaneous unit coverage: bit buffers, sessions, world, JS corners."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.js import Interpreter, JSError
from repro.js.lexer import JSSyntaxError
from repro.qr.bits import BitBuffer


class TestBitBuffer:
    def test_append_and_pack(self):
        buffer = BitBuffer()
        buffer.append_bits(0b1011, 4)
        buffer.append_bits(0b0001, 4)
        assert buffer.to_bytes() == [0b10110001]

    def test_partial_byte_zero_padded(self):
        buffer = BitBuffer()
        buffer.append_bits(0b101, 3)
        assert buffer.to_bytes() == [0b10100000]

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            BitBuffer().append_bits(16, 4)

    def test_read_cursor(self):
        buffer = BitBuffer()
        buffer.append_bits(0b110101, 6)
        assert buffer.read_bits(3) == 0b110
        assert buffer.read_bits(3) == 0b101
        assert buffer.remaining == 0
        buffer.rewind()
        assert buffer.read_bits(6) == 0b110101

    def test_read_past_end(self):
        buffer = BitBuffer()
        buffer.append_bit(1)
        with pytest.raises(ValueError):
            buffer.read_bits(2)


class TestSessionExtras:
    def _session(self, html):
        from repro.browser.browser import Browser
        from repro.browser.profile import human_chrome_profile
        from repro.web.network import Network

        browser = Browser(Network(), human_chrome_profile(), rng=random.Random(1))
        return browser.load_local_html(html), browser

    def test_window_open_records_popup(self):
        session, _ = self._session(
            "<html><head><script>window.open('https://popup.example/');</script></head><body></body></html>"
        )
        assert session.popups == ["https://popup.example/"]
        assert "https://popup.example/" in session.signals().popups

    def test_document_write_captured(self):
        session, _ = self._session(
            "<html><head><script>document.write('<b>injected</b>');</script></head><body></body></html>"
        )
        assert session.document_writes == ["<b>injected</b>"]

    def test_local_storage_persists_across_pages(self):
        from repro.browser.browser import Browser
        from repro.browser.profile import human_chrome_profile
        from repro.web.network import Network
        from repro.web.site import Page, Website
        from repro.web.tls import TLSCertificate

        network = Network()
        site = Website("store.example", ip="3.3.3.3")
        site.add_page("/a", Page(html="<html><head><script>localStorage.setItem('k', 'v1');</script></head><body></body></html>"))
        site.add_page("/b", Page(html="<html><head><script>window.__got = localStorage.getItem('k');</script></head><body></body></html>"))
        network.host_website(site)
        network.issue_certificate(TLSCertificate("store.example", "CA", float("-inf"), float("inf")))
        browser = Browser(network, human_chrome_profile(), rng=random.Random(2))
        browser.visit("https://store.example/a")
        result = browser.visit("https://store.example/b")
        assert result.final_session.window.get("__got") == "v1"

    def test_create_element_and_append(self):
        session, _ = self._session(
            """<html><head><script>
            var node = document.createElement('script');
            node.src = 'https://cdn.example/x.js';
            document.head.appendChild(node);
            </script></head><body></body></html>"""
        )
        assert session.appended_nodes
        assert session.appended_nodes[0].get("src") == "https://cdn.example/x.js"


class TestWorldHelpers:
    def test_publish_sender_merges_ips(self):
        from repro.dataset.world import World

        world = World(seed=3)
        world.publish_sender("sender.example", "1.1.1.1")
        world.publish_sender("sender.example", "2.2.2.2")
        policy = world.mail_dns.lookup("sender.example")
        assert policy.spf_allowed_ips == frozenset({"1.1.1.1", "2.2.2.2"})

    def test_world_hosts_shared_services(self):
        from repro.dataset.world import World

        world = World(seed=4)
        for domain in ("httpbin.org", "ipapi.co", "decoy-landing.example", "gyazo-cdn.example"):
            assert world.network.website(domain) is not None


class TestJsCorners:
    def test_switch_default_only(self):
        assert Interpreter().run("var r; switch (5) { default: r = 'd'; } r") == "d"

    def test_nested_template_expressions(self):
        assert Interpreter().run("var a = 2; `x${a + 1}y${'z'}`") == "x3yz"

    def test_object_define_property(self):
        source = "var o = {}; Object.defineProperty(o, 'k', {value: 7}); o.k"
        assert Interpreter().run(source) == 7.0

    def test_object_entries(self):
        assert Interpreter().run("Object.entries({a: 1})[0][0]") == "a"

    def test_for_without_clauses_bounded_by_budget(self):
        from repro.js import JSTimeoutError

        with pytest.raises(JSTimeoutError):
            Interpreter(step_limit=5000).run("for (;;) {}")

    def test_string_conversion_function(self):
        assert Interpreter().run("String(42)") == "42"
        assert Interpreter().run("String(true)") == "true"
        assert Interpreter().run("String([1,2])") == "1,2"

    def test_uncaught_throw_is_jserror(self):
        with pytest.raises(JSError, match="Uncaught boom"):
            Interpreter().run("throw 'boom';")

    def test_throw_object_message(self):
        with pytest.raises(JSError, match="Uncaught"):
            Interpreter().run("throw new Error('kaput');")

    def test_catch_rethrow(self):
        with pytest.raises(JSError):
            Interpreter().run("try { throw 'x'; } catch (e) { throw e; }")

    def test_sequence_expression(self):
        assert Interpreter().run("var a = (1, 2, 3); a") == 3.0

    def test_nan_propagation(self):
        assert math.isnan(Interpreter().run("undefined + 1"))

    # Regressions found by fuzzing:
    def test_dangling_exponent_is_syntax_error(self):
        with pytest.raises(JSSyntaxError):
            Interpreter().run("var x = 1e;")

    def test_valid_exponents_still_work(self):
        assert Interpreter().run("1e3") == 1000.0
        assert Interpreter().run("2.5e-2") == 0.025

    def test_top_level_return_is_js_error(self):
        with pytest.raises(JSError):
            Interpreter().run("return 5;")

    def test_stray_break_is_js_error(self):
        with pytest.raises(JSError):
            Interpreter().run("break;")


_FUZZ_SOURCE = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=0, max_size=60
)


@settings(max_examples=80, deadline=None)
@given(source=_FUZZ_SOURCE)
def test_js_engine_never_crashes_unexpectedly(source):
    """Arbitrary input yields a value, a JS-level error, or a syntax error
    — never an internal Python exception leaking out."""
    interp = Interpreter(step_limit=20_000)
    try:
        interp.run(source)
    except (JSError, JSSyntaxError, SyntaxError, RecursionError):
        pass
