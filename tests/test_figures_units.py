"""Unit tests for the figure/table builder dataclasses and edge cases."""

import pytest

from repro.analysis.figures import (
    Figure2,
    OutcomeBreakdown,
    Table2,
    figure2,
    outcome_breakdown,
    table2,
)
from repro.core.artifacts import MessageRecord, UrlCrawl
from repro.core.outcomes import MessageCategory


def _record(index, category, domains=(), delivered_at=10.0):
    record = MessageRecord(
        message_index=index, delivered_at=delivered_at, recipient="v@corp.example",
        sender_domain="s.example",
    )
    record.category = category
    record.crawls = [
        UrlCrawl(
            url=f"https://{domain}/t{index}",
            outcome="ok",
            page_class="login_form",
            final_url=f"https://{domain}/t{index}",
            landing_domain=domain,
        )
        for domain in domains
    ]
    return record


class TestOutcomeBreakdown:
    def test_empty(self):
        breakdown = outcome_breakdown([])
        assert breakdown.total == 0
        assert breakdown.fraction(MessageCategory.ERROR) == 0.0
        assert breakdown.count("anything") == 0

    def test_counts_and_fractions(self):
        records = [
            _record(0, MessageCategory.ACTIVE_PHISHING),
            _record(1, MessageCategory.ACTIVE_PHISHING),
            _record(2, MessageCategory.ERROR),
            _record(3, MessageCategory.NO_RESOURCES),
        ]
        breakdown = outcome_breakdown(records)
        assert breakdown.count(MessageCategory.ACTIVE_PHISHING) == 2
        assert breakdown.fraction(MessageCategory.ERROR) == 0.25


class TestTable2:
    def test_counts_only_active_domains(self):
        records = [
            _record(0, MessageCategory.ACTIVE_PHISHING, ("a.com", "b.ru")),
            _record(1, MessageCategory.ACTIVE_PHISHING, ("c.com",)),
            _record(2, MessageCategory.ERROR, ("dead.xyz",)),  # excluded
        ]
        table = table2(records)
        assert table.total_domains == 3
        assert dict(table.rows) == {".com": 2, ".ru": 1}

    def test_duplicate_domains_counted_once(self):
        records = [
            _record(0, MessageCategory.ACTIVE_PHISHING, ("a.com",)),
            _record(1, MessageCategory.ACTIVE_PHISHING, ("a.com",)),
        ]
        assert table2(records).total_domains == 1


class TestFigure2:
    def test_monthly_bucketing(self):
        records = [
            _record(0, MessageCategory.ERROR, delivered_at=5.0),      # month 0
            _record(1, MessageCategory.ERROR, delivered_at=735.0),    # month 1
            _record(2, MessageCategory.ERROR, delivered_at=736.0),    # month 1
        ]
        figure = figure2(records)
        assert figure.monthly_2024[0] == 1
        assert figure.monthly_2024[1] == 2
        assert sum(figure.monthly_2024) == 3

    def test_out_of_window_ignored(self):
        figure = figure2([_record(0, MessageCategory.ERROR, delivered_at=10 * 730.0 + 5)])
        assert sum(figure.monthly_2024) == 0

    def test_paper_constants_passthrough(self):
        figure = figure2([])
        assert figure.monthly_2023[-3:] == (1959, 1533, 1249)
        assert figure.mean_2023 == pytest.approx(885.2)


class TestMessageRecordAccessors:
    def test_landing_filters_benign_crawls(self):
        record = _record(0, MessageCategory.ACTIVE_PHISHING, ("evil.com",))
        record.crawls.append(
            UrlCrawl(url="https://cdn.example/a", outcome="ok", page_class="benign",
                     final_url="https://cdn.example/a", landing_domain="cdn.example")
        )
        assert record.landing_domains == ["evil.com"]
        assert record.attempted_domains == ["evil.com", "cdn.example"]

    def test_landing_urls_prefer_final(self):
        record = _record(0, MessageCategory.ACTIVE_PHISHING, ("evil.com",))
        record.crawls[0].final_url = "https://evil.com/after-redirect"
        assert record.landing_urls == ["https://evil.com/after-redirect"]
