"""Seeded crash soak: SIGKILL at deterministic record boundaries.

``REPRO_KILL_AFTER_RECORDS=N`` arms the hook in
:func:`repro.storage.durable.note_durable_record`: the CLI process
SIGKILLs *itself* immediately after its N-th durable record append — a
reproducible crash instant, unlike the timing-dependent kills of
``test_shutdown``.  Each iteration then runs ``fsck`` (the checkpoint
must be clean up to a tolerated torn tail), salvages with ``--repair``,
and resumes the repaired checkpoint — which gets shot again — until a
final uninterrupted resume completes.  The export must be byte-identical
to a never-killed run, on both executors.

The full-scale soak (>= 25 kill points per backend) lives in
``benchmarks/bench_crash_soak.py``; this is the tier-1 slice.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.cli import main
from repro.runner import CheckpointStore

SEED, SCALE = 31, 0.05
KILL_AFTER = 4  # records appended by each doomed launch before SIGKILL
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def baseline_export(tmp_path_factory):
    path = tmp_path_factory.mktemp("baseline") / "run.json"
    assert main(["run", "--scale", str(SCALE), "--seed", str(SEED),
                 "--export", str(path)]) == 0
    return json.loads(path.read_text())["records"]


def _launch_doomed(arguments: list[str], kill_after: int) -> str:
    """Run the CLI armed to SIGKILL itself after N record appends."""
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(REPO, "src"),
        REPRO_KILL_AFTER_RECORDS=str(kill_after),
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
    )
    try:
        # wait(), not communicate(): orphaned process workers inherit
        # the stdout pipe and would keep communicate() blocked long
        # after the parent shot itself.
        proc.wait(timeout=300)
    finally:
        # The parent is gone; reap any orphaned process workers.
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    output = proc.communicate(timeout=60)[0]
    assert proc.returncode == -signal.SIGKILL, output
    return output


@pytest.mark.parametrize("executor", ["process", "thread"])
class TestCrashSoak:
    def test_kill_fsck_repair_resume_is_byte_identical(
        self, tmp_path, executor, baseline_export, capsys
    ):
        checkpoint = tmp_path / "ckpt"
        _launch_doomed(
            ["run", "--scale", str(SCALE), "--seed", str(SEED),
             "--jobs", "2", "--executor", executor,
             "--checkpoint", str(checkpoint)],
            kill_after=KILL_AFTER,
        )

        # The kill landed on a record boundary (or tore at most the
        # line another thread was appending): fsck tolerates it.
        store = CheckpointStore(checkpoint)
        assert store.scan().corruption == []
        assert len(store.completed_indices()) >= KILL_AFTER - 1
        repaired = tmp_path / "repaired"
        assert main(["fsck", str(checkpoint), "--repair", str(repaired)]) == 0
        capsys.readouterr()

        # Resume the repaired checkpoint — and shoot that run too.
        _launch_doomed(
            ["resume", str(repaired), "--executor", executor],
            kill_after=KILL_AFTER,
        )
        survivor = CheckpointStore(repaired)
        assert survivor.scan().corruption == []
        assert len(survivor.completed_indices()) >= 2 * KILL_AFTER - 2

        # Final uninterrupted resume: byte-identical to never crashing.
        out = tmp_path / "resumed.json"
        assert main(["resume", str(repaired), "--executor", executor,
                     "--export", str(out)]) == 0
        capsys.readouterr()
        resumed = json.loads(out.read_text())["records"]
        assert json.dumps(resumed) == json.dumps(baseline_export)
