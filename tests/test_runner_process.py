"""The process execution backend: scale past the GIL, keep the bytes.

The headline guarantees under test:

- the process backend's records are byte-identical to the jobs=1 thread
  run (and therefore to plain ``analyze_corpus``), surviving the
  record -> dict -> record trip across the process boundary;
- a worker process killed mid-run loses nothing: its in-flight indices
  are retried on a fresh worker, a persistently-crashing ("poison")
  index lands on the dead-letter list *alone*, and a checkpointed run
  resumes to completion with byte-identical records;
- transient faults raised inside a worker retry and recover;
- ``executor="auto"`` picks the process backend exactly when it can
  (jobs > 1 and a picklable RunnerConfig is available).
"""

from __future__ import annotations

import json

import pytest

from repro.core import CrawlerBox
from repro.core.export import export_records, record_to_dict
from repro.dataset import CorpusGenerator
from repro.runner import (
    CheckpointStore,
    CorpusRunner,
    RetryPolicy,
    RunnerConfig,
    StageProfiler,
    parse_record_line,
)

SEED, SCALE = 31, 0.02
CONFIG = RunnerConfig(seed=SEED, scale=SCALE)
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.01, jitter=0.0)


@pytest.fixture(scope="module")
def runner_corpus():
    return CorpusGenerator(seed=SEED, scale=SCALE).generate()


@pytest.fixture(scope="module")
def serial_records(runner_corpus):
    box = CrawlerBox.for_world(runner_corpus.world)
    return box.analyze_corpus(runner_corpus.messages)


def _runner(corpus, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("executor", "process")
    kwargs.setdefault("config", CONFIG)
    return CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(corpus.world), **kwargs
    )


# ----------------------------------------------------------------------
# Determinism across the process boundary
# ----------------------------------------------------------------------
class TestProcessDeterminism:
    def test_process_equals_serial_byte_for_byte(self, runner_corpus, serial_records):
        result = _runner(runner_corpus).run(runner_corpus.messages)
        assert result.executor == "process"
        assert not result.dead_letters
        assert json.dumps(export_records(result.records)) == json.dumps(
            export_records(serial_records)
        )

    def test_profile_snapshots_merge_from_workers(self, runner_corpus):
        sample = runner_corpus.messages[:12]
        runner = _runner(runner_corpus, profiler=StageProfiler())
        result = runner.run(sample)
        # Worker-side stage timings survived the queue trip and the merge.
        assert result.stats.stage_calls["auth"] == len(sample)
        assert result.stats.stage_seconds["crawl"] >= 0.0
        assert set(result.stats.as_dict()["stages"]) >= {"auth", "parse", "crawl"}


# ----------------------------------------------------------------------
# Executor selection
# ----------------------------------------------------------------------
class TestExecutorResolution:
    def test_auto_is_thread_for_one_job(self, runner_corpus):
        runner = _runner(runner_corpus, jobs=1, executor="auto")
        assert runner.resolve_executor() == "thread"

    def test_auto_is_process_for_parallel_jobs_with_config(self, runner_corpus):
        runner = _runner(runner_corpus, jobs=4, executor="auto")
        assert runner.resolve_executor() == "process"

    def test_auto_without_config_stays_on_threads(self, runner_corpus):
        runner = _runner(runner_corpus, jobs=4, executor="auto", config=None)
        assert runner.resolve_executor() == "thread"

    def test_explicit_process_requires_config(self, runner_corpus):
        with pytest.raises(ValueError, match="RunnerConfig"):
            _runner(runner_corpus, executor="process", config=None)

    def test_unknown_executor_rejected(self, runner_corpus):
        with pytest.raises(ValueError, match="executor"):
            _runner(runner_corpus, executor="fiber")


# ----------------------------------------------------------------------
# Worker crashes, dead letters, resume
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def test_poison_index_dead_letters_alone(self, runner_corpus, serial_records):
        poison = 5
        runner = _runner(
            runner_corpus,
            config=RunnerConfig(seed=SEED, scale=SCALE, fault=f"crash:{poison}"),
            retry_policy=FAST_RETRY,
            batch_size=4,  # the poison index gets batch-mates to endanger
        )
        result = runner.run(runner_corpus.messages[:10])
        # Only the poison index dead-letters; batch-mates of the crashed
        # worker are retried on a replacement and complete normally.
        assert [letter.index for letter in result.dead_letters] == [poison]
        assert result.dead_letters[0].attempts == FAST_RETRY.max_attempts
        assert "died" in result.dead_letters[0].error
        assert [r.message_index for r in result.records] == [
            i for i in range(10) if i != poison
        ]
        for record in result.records:
            assert record_to_dict(record) == record_to_dict(
                serial_records[record.message_index]
            )

    def test_resume_after_kill_completes_byte_identical(
        self, tmp_path, runner_corpus, serial_records
    ):
        poison = 4
        crashing = _runner(
            runner_corpus,
            config=RunnerConfig(seed=SEED, scale=SCALE, fault=f"crash:{poison}"),
            retry_policy=FAST_RETRY,
            checkpoint=CheckpointStore(tmp_path / "ckpt"),
            batch_size=4,
        )
        interrupted = crashing.run(runner_corpus.messages[:10])
        assert len(interrupted.records) == 9  # poison index missing

        # Second run over the same checkpoint, crash cause cleared (the
        # "environmental" fault went away): only the missing index runs.
        resumed = _runner(
            runner_corpus, checkpoint=CheckpointStore(tmp_path / "ckpt")
        ).run(runner_corpus.messages[:10])
        assert len(resumed.resumed_indices) == 9
        assert json.dumps(export_records(resumed.records)) == json.dumps(
            export_records(serial_records[:10])
        )

    def test_transient_worker_fault_retries_then_recovers(
        self, runner_corpus, serial_records
    ):
        flaky = 3
        runner = _runner(
            runner_corpus,
            config=RunnerConfig(seed=SEED, scale=SCALE, fault=f"transient:{flaky}:1"),
            retry_policy=FAST_RETRY,
        )
        result = runner.run(runner_corpus.messages[:8])
        assert not result.dead_letters
        assert result.stats.retried == 1
        assert json.dumps(export_records(result.records)) == json.dumps(
            export_records(serial_records[:8])
        )

    def test_transient_fault_under_fault_injection_checkpoints_once(
        self, tmp_path, runner_corpus
    ):
        # A TransientFault raised inside a worker while the simulated
        # internet is injecting hostile faults: the retry machinery and
        # the resilient crawl path compose — the run completes with zero
        # dead letters and the retried record is checkpointed exactly once.
        flaky = 2
        retry = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01, jitter=0.0)
        runner = _runner(
            runner_corpus,
            config=RunnerConfig(
                seed=SEED, scale=SCALE, fault=f"transient:{flaky}:2",
                faults="hostile", fault_seed=99,
            ),
            retry_policy=retry,
            checkpoint=CheckpointStore(tmp_path / "ckpt"),
        )
        result = runner.run(runner_corpus.messages[:8])
        assert not result.dead_letters
        assert result.stats.retried == 2
        assert [r.message_index for r in result.records] == list(range(8))
        assert all(r.fault_telemetry is not None for r in result.records)
        lines = (tmp_path / "ckpt" / "records.jsonl").read_text().splitlines()
        parsed = [parse_record_line(line) for line in lines]
        assert all(issue is None for _, issue in parsed)  # every line CRC-clean
        indices = [data["message_index"] for data, _ in parsed]
        assert indices.count(flaky) == 1
        assert sorted(indices) == list(range(8))


# ----------------------------------------------------------------------
# Hard wedges: the stall watchdog reaps into quarantine
# ----------------------------------------------------------------------
class TestWorkerStall:
    def test_wedged_index_quarantined_not_dead_lettered(
        self, runner_corpus, serial_records
    ):
        from repro.core.outcomes import MessageCategory
        from repro.core.stages.base import StageStatus

        wedged = 2
        runner = _runner(
            runner_corpus,
            config=RunnerConfig(seed=SEED, scale=SCALE, fault=f"wedge:{wedged}"),
            retry_policy=FAST_RETRY,
            stall_timeout=1.0,
        )
        result = runner.run(runner_corpus.messages[:6])
        # A hard wedge (native loop, deadlock) is hostile *input*, not
        # infrastructure: it must end as a durable quarantined record,
        # never a dead letter or an infinite retry.
        assert not result.dead_letters
        assert [r.message_index for r in result.records] == list(range(6))
        record = result.records[wedged]
        assert record.category == MessageCategory.QUARANTINED
        assert record.quarantine is not None
        assert record.quarantine.reason.startswith("worker-stall")
        assert record.quarantine.violations[0].limit == "stall-timeout"
        assert record.quarantine.violations[0].observed == FAST_RETRY.max_attempts
        assert set(record.stage_status.values()) == {StageStatus.SKIPPED}
        assert result.stats.quarantined == 1
        # Batch-mates of the reaped workers complete normally.
        for other in result.records:
            if other.message_index != wedged:
                assert record_to_dict(other) == record_to_dict(
                    serial_records[other.message_index]
                )


# ----------------------------------------------------------------------
# Hostile ingest: both backends, byte-identical, nothing crashes
# ----------------------------------------------------------------------
class TestHostileCorpusAcrossBackends:
    BUDGET = 500_000  # calibrated messages stay far below; js-loop trips it

    def _run(self, corpus, executor: str, jobs: int):
        from repro.core import PipelineConfig
        from repro.dataset.hostile import hostile_corpus

        config = RunnerConfig(
            seed=SEED, scale=SCALE, corpus_prefix=4, hostile="7:1",
            budget=self.BUDGET,
        )
        # The thread backend analyzes on the parent-side box, so it
        # needs the same pipeline budget the process workers rebuild
        # from the RunnerConfig (exactly what the CLI wires up).
        pipeline = PipelineConfig(budget_work_units=self.BUDGET)
        messages = corpus.messages[:4] + hostile_corpus(seed=7, copies=1)
        runner = CorpusRunner(
            box_factory=lambda worker_id: CrawlerBox.for_world(
                corpus.world, config=pipeline
            ),
            jobs=jobs,
            executor=executor,
            config=config,
        )
        return messages, runner.run(messages)

    def test_hostile_corpus_survives_both_backends_byte_identical(
        self, runner_corpus
    ):
        from repro.dataset.hostile import EXPECTED_VIOLATIONS, SHAPES

        messages, process_result = self._run(runner_corpus, "process", 2)
        # Zero worker crashes, zero dead letters: every hostile message
        # became a record.
        assert not process_result.dead_letters
        assert [r.message_index for r in process_result.records] == list(
            range(len(messages))
        )
        # Each shape met the defense it targets: quarantined with the
        # intended headline limit, or degraded by the work budget.
        for position, shape in enumerate(SHAPES):
            record = process_result.records[4 + position]
            expected = EXPECTED_VIOLATIONS[shape]
            if expected:
                assert record.quarantine is not None, shape
                assert record.quarantine.violations[0].limit == expected
            else:
                assert record.quarantine is None
                assert record.stage_errors, shape
                assert any(
                    reason.startswith("BudgetExceeded")
                    for reason in record.stage_errors.values()
                )
        assert process_result.stats.quarantined == sum(
            1 for limit in EXPECTED_VIOLATIONS.values() if limit
        )
        assert process_result.stats.budget_stage_failures >= 1

        _, thread_result = self._run(runner_corpus, "thread", 1)
        assert json.dumps(export_records(process_result.records)) == json.dumps(
            export_records(thread_result.records)
        )
