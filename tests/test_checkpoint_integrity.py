"""Checkpoint integrity: CRC-suffixed records, scan, salvage, and fsck.

The durability contract under test:

- every appended line carries a CRC32 suffix (v2); v1 checkpoints —
  written before the suffix existed — remain fully readable;
- a *torn tail* (writer killed mid-append) is expected and tolerated:
  the interrupted record simply re-analyses on resume;
- *interior* corruption (bit rot, hostile edits, valid JSON without a
  ``message_index``) is detected and reported, never silently dropped;
- ``CheckpointStore.salvage_to`` copies every intact record to a fresh
  checkpoint whose resume completes byte-identically;
- ``repro fsck`` exposes all of the above with exit codes scripts can
  trust (0 = intact, 1 = corruption or unreadable manifest).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import CrawlerBox
from repro.core.export import export_records
from repro.dataset import CorpusGenerator
from repro.runner import (
    CheckpointStore,
    CorpusRunner,
    RunnerConfig,
    encode_record_line,
    parse_record_line,
)

SEED, SCALE = 31, 0.02
SAMPLE = 8


@pytest.fixture(scope="module")
def integrity_corpus():
    return CorpusGenerator(seed=SEED, scale=SCALE).generate()


@pytest.fixture(scope="module")
def serial_records(integrity_corpus):
    box = CrawlerBox.for_world(integrity_corpus.world)
    return box.analyze_corpus(integrity_corpus.messages[:SAMPLE])


def _checkpointed_run(corpus, directory, **store_kwargs):
    store = CheckpointStore(directory, **store_kwargs)
    runner = CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(corpus.world),
        jobs=1,
        checkpoint=store,
        config=RunnerConfig(seed=SEED, scale=SCALE),
        run_info={"seed": SEED, "scale": SCALE},
    )
    result = runner.run(corpus.messages[:SAMPLE])
    return store, result


# ----------------------------------------------------------------------
# The line format
# ----------------------------------------------------------------------
class TestLineFormat:
    def test_round_trip(self):
        payload = json.dumps({"message_index": 17, "category": "inactive"})
        data, issue = parse_record_line(encode_record_line(payload))
        assert issue is None
        assert data == {"message_index": 17, "category": "inactive"}

    def test_v1_line_without_suffix_still_parses(self):
        data, issue = parse_record_line('{"message_index": 3}')
        assert issue is None
        assert data == {"message_index": 3}

    def test_flipped_byte_is_crc_mismatch(self):
        line = encode_record_line('{"message_index": 17, "spear": false}')
        corrupted = line.replace("17", "18", 1)  # plausible-looking edit
        data, issue = parse_record_line(corrupted)
        assert data is None
        assert issue == "crc-mismatch"

    def test_truncated_v1_line_is_bad_json(self):
        data, issue = parse_record_line('{"message_index": 17, "cat')
        assert data is None
        assert issue == "bad-json"

    def test_suffix_survives_tabs_nowhere_else(self):
        # json.dumps escapes control characters, so the literal TAB of
        # the separator cannot occur inside the payload.
        payload = json.dumps({"subject": "tab\there", "message_index": 0})
        assert "\t" not in payload
        data, issue = parse_record_line(encode_record_line(payload))
        assert issue is None
        assert data["subject"] == "tab\there"


# ----------------------------------------------------------------------
# Store-level scan
# ----------------------------------------------------------------------
class TestCheckpointScan:
    def test_clean_checkpoint_scans_clean(self, tmp_path, integrity_corpus):
        store, result = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        scan = store.scan()
        assert scan.issues == []
        assert scan.indices == set(range(SAMPLE))
        assert len(scan.entries) == SAMPLE

    def test_every_written_line_is_v2(self, tmp_path, integrity_corpus):
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        for line in store.records_path.read_text().splitlines():
            assert "\t#crc32=" in line

    def test_v1_checkpoint_remains_readable(self, tmp_path, integrity_corpus,
                                            serial_records):
        legacy, _ = _checkpointed_run(integrity_corpus, tmp_path / "v1", crc=False)
        assert "\t#crc32=" not in legacy.records_path.read_text()
        scan = legacy.scan()
        assert scan.issues == []
        assert scan.indices == set(range(SAMPLE))
        assert json.dumps(export_records(legacy.load_records())) == json.dumps(
            export_records(serial_records)
        )

    def test_torn_tail_tolerated(self, tmp_path, integrity_corpus):
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        content = store.records_path.read_text()
        store.records_path.write_text(content[:-40])  # kill mid-append
        scan = store.scan()
        (issue,) = scan.issues
        assert issue.torn_tail
        assert scan.corruption == []
        # The torn record is simply absent; everything else survived.
        assert scan.indices == set(range(SAMPLE)) - {SAMPLE - 1}

    def test_interior_corruption_detected(self, tmp_path, integrity_corpus):
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        lines = store.records_path.read_text().splitlines()
        lines[2] = lines[2].replace('"', "'", 1)  # bit-rot a middle line
        store.records_path.write_text("\n".join(lines) + "\n")
        scan = store.scan()
        (issue,) = scan.corruption
        assert issue.line_number == 3
        assert issue.kind == "crc-mismatch"
        assert not issue.torn_tail

    def test_invalid_utf8_is_corruption_not_a_crash(self, tmp_path,
                                                    integrity_corpus):
        # Regression: scan() read the file in text mode, so a flipped
        # high bit anywhere raised UnicodeDecodeError out of fsck/resume
        # instead of reporting the line as corrupt.
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        raw = bytearray(store.records_path.read_bytes())
        offset = raw.index(b"\n") + 20  # inside line 2's JSON payload
        raw[offset] ^= 0xFF
        store.records_path.write_bytes(bytes(raw))
        scan = store.scan()
        (issue,) = scan.corruption
        assert issue.line_number == 2
        assert issue.kind == "bad-encoding"
        assert not issue.torn_tail
        # Every other record is still loadable around the bad line.
        assert scan.indices == set(range(SAMPLE)) - {1}

    def test_missing_index_line_is_corruption_not_a_crash(self, tmp_path,
                                                          integrity_corpus):
        # Regression: a well-formed JSON line without a message_index
        # used to KeyError out of completed_indices(); now it scans as
        # its own corruption kind and resume just re-analyses it.
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        with store.records_path.open("a") as handle:
            handle.write(encode_record_line('{"category": "inactive"}') + "\n")
            handle.write(encode_record_line('{"message_index": 0}') + "\n")
        scan = store.scan()
        (issue,) = scan.corruption
        assert issue.kind == "missing-index"
        assert store.completed_indices() == set(range(SAMPLE))

    def test_resume_reanalyzes_corrupted_index(self, tmp_path, integrity_corpus,
                                               serial_records):
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        lines = store.records_path.read_text().splitlines()
        victim = json.loads(lines[1].rpartition("\t#crc32=")[0])["message_index"]
        lines[1] = lines[1][:-1]  # drop the last CRC digit
        store.records_path.write_text("\n".join(lines) + "\n")

        runner = CorpusRunner(
            box_factory=lambda worker_id: CrawlerBox.for_world(integrity_corpus.world),
            jobs=1,
            checkpoint=CheckpointStore(tmp_path / "ckpt"),
        )
        result = runner.run(integrity_corpus.messages[:SAMPLE])
        assert victim not in result.resumed_indices
        assert json.dumps(export_records(result.records)) == json.dumps(
            export_records(serial_records)
        )


# ----------------------------------------------------------------------
# Salvage
# ----------------------------------------------------------------------
class TestSalvage:
    def _corrupt(self, store, line_index: int) -> None:
        lines = store.records_path.read_text().splitlines()
        lines[line_index] = lines[line_index].swapcase()
        store.records_path.write_text("\n".join(lines) + "\n")

    def test_salvage_keeps_intact_records_and_marks_interrupted(
        self, tmp_path, integrity_corpus
    ):
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        self._corrupt(store, 4)
        repaired = store.salvage_to(tmp_path / "repaired")
        assert len(repaired.completed_indices()) == SAMPLE - 1
        assert repaired.scan().corruption == []
        manifest = repaired.read_manifest()
        assert manifest.status == "interrupted"
        assert manifest.completed == SAMPLE - 1
        assert manifest.seed == SEED  # identity preserved

    def test_salvaged_checkpoint_resumes_byte_identical(
        self, tmp_path, integrity_corpus, serial_records
    ):
        store, _ = _checkpointed_run(integrity_corpus, tmp_path / "ckpt")
        self._corrupt(store, 0)
        store.salvage_to(tmp_path / "repaired")

        runner = CorpusRunner(
            box_factory=lambda worker_id: CrawlerBox.for_world(integrity_corpus.world),
            jobs=1,
            checkpoint=CheckpointStore(tmp_path / "repaired"),
        )
        result = runner.run(integrity_corpus.messages[:SAMPLE])
        assert len(result.resumed_indices) == SAMPLE - 1
        assert json.dumps(export_records(result.records)) == json.dumps(
            export_records(serial_records)
        )


# ----------------------------------------------------------------------
# The fsck command
# ----------------------------------------------------------------------
class TestFsckCommand:
    @pytest.fixture()
    def checkpoint(self, tmp_path, capsys):
        exit_code = main(["run", "--scale", str(SCALE), "--seed", str(SEED),
                          "--checkpoint", str(tmp_path / "ckpt")])
        assert exit_code == 0
        capsys.readouterr()
        return tmp_path / "ckpt"

    def test_clean_checkpoint_exits_zero(self, checkpoint, capsys):
        assert main(["fsck", str(checkpoint)]) == 0
        output = capsys.readouterr().out
        assert "RESULT: checkpoint intact" in output
        assert "status=complete" in output

    def test_missing_directory_exits_one(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "nothing")]) == 1
        assert "No checkpoint directory" in capsys.readouterr().out

    def test_torn_tail_still_exits_zero(self, checkpoint, capsys):
        records = checkpoint / "records.jsonl"
        records.write_text(records.read_text()[:-25])
        assert main(["fsck", str(checkpoint)]) == 0
        output = capsys.readouterr().out
        assert "torn tail (tolerated)" in output

    def test_interior_corruption_exits_one(self, checkpoint, capsys):
        records = checkpoint / "records.jsonl"
        lines = records.read_text().splitlines()
        lines[1] = lines[1].replace("a", "e", 1)
        records.write_text("\n".join(lines) + "\n")
        assert main(["fsck", str(checkpoint)]) == 1
        output = capsys.readouterr().out
        assert "CORRUPT" in output
        assert "corrupt line(s)" in output
        assert "without a durable record" in output

    def test_unreadable_manifest_exits_one(self, checkpoint, capsys):
        (checkpoint / "manifest.json").write_text('{"manifest_version": 99}')
        assert main(["fsck", str(checkpoint)]) == 1
        assert "UNREADABLE" in capsys.readouterr().out

    def test_repair_salvages_and_names_destination(self, checkpoint, tmp_path,
                                                   capsys):
        records = checkpoint / "records.jsonl"
        lines = records.read_text().splitlines()
        lines[0] = lines[0].replace("0", "1", 1)
        records.write_text("\n".join(lines) + "\n")
        destination = tmp_path / "repaired"
        assert main(["fsck", str(checkpoint), "--repair", str(destination)]) == 1
        output = capsys.readouterr().out
        assert f"Salvaged {len(lines) - 1} record(s)" in output
        assert (destination / "records.jsonl").exists()
        # The repaired checkpoint itself checks out clean.
        assert main(["fsck", str(destination)]) == 0
        assert "status=interrupted" in capsys.readouterr().out
