"""Service-mode units: protocol framing, deterministic admission, fair
scheduling, checkpoint compaction, guard-limit overrides, and the
service manifest lifecycle.  The live daemon is exercised end to end in
``test_serve_daemon.py``; everything here runs without sockets.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.mail.guard import (
    GUARD_LIMIT_KEYS,
    GuardLimitError,
    GuardLimits,
    guard_limits_from_overrides,
    parse_guard_limit,
)
from repro.runner import CheckpointStore, RunManifest, RunningStats, encode_record_line
from repro.serve.admission import (
    ADMITTED,
    SHED_GLOBAL,
    SHED_REPORTER,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.protocol import (
    IdleTimeout,
    LineChannel,
    LineTooLong,
    ProtocolError,
    ReadDeadlineExceeded,
    decode_line,
    encode_line,
    http_request_parts,
    http_response,
    looks_like_http,
    read_line,
    send_bounded,
)
from repro.serve.scheduler import FairScheduler


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        payload = {"op": "submit", "id": "c-1", "eml": "aGk="}
        line = encode_line(payload)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert decode_line(line.rstrip(b"\n")) == payload

    def test_decode_rejects_non_object_and_missing_op(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2]")
        with pytest.raises(ProtocolError):
            decode_line(b'{"id": "x"}')
        with pytest.raises(ProtocolError):
            decode_line(b"not json at all")

    def test_read_line_bounds_hostile_lines(self):
        stream = io.BytesIO(b"x" * 100 + b"\n")
        with pytest.raises(ProtocolError):
            read_line(stream, limit=64)
        # Under the limit: the newline is stripped; EOF returns None.
        stream = io.BytesIO(b'{"op":"ping"}\n')
        assert read_line(stream, limit=64) == b'{"op":"ping"}'
        assert read_line(stream, limit=64) is None

    def test_http_sniffing_and_response(self):
        assert looks_like_http(b"GET /stats HTTP/1.1")
        assert looks_like_http(b"HEAD /healthz HTTP/1.0")
        assert not looks_like_http(b'{"op":"ping"}')
        response = http_response(200, {"ok": True})
        head, _, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK")
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"ok": True}


# ----------------------------------------------------------------------
# Admission: the shed set is a pure function of arrival order + budget
# ----------------------------------------------------------------------
def _drive(controller: AdmissionController, arrivals: list[str]) -> list[bool]:
    return [controller.admit(reporter).admitted for reporter in arrivals]


class TestAdmission:
    def test_default_config_never_sheds(self):
        controller = AdmissionController()
        assert all(_drive(controller, ["acme"] * 500))

    def test_shed_set_is_deterministic(self):
        config = AdmissionConfig(cost=100, global_rate=50, global_burst=200)
        arrivals = ["acme", "globex", "acme", "initech"] * 100
        first = _drive(AdmissionController(config), arrivals)
        second = _drive(AdmissionController(config), arrivals)
        assert first == second
        assert False in first  # the budget actually binds

    def test_two_x_overload_sheds_half(self):
        # rate = cost/2 per arrival => the sustainable stream is half the
        # offered one; after the burst drains, every other arrival sheds.
        config = AdmissionConfig(cost=100, global_rate=50, global_burst=200)
        controller = AdmissionController(config)
        decisions = _drive(controller, ["acme"] * 1000)
        shed = decisions.count(False)
        assert 0.45 <= shed / len(decisions) <= 0.55
        # Steady state (past the burst): strictly alternating.
        tail = decisions[-100:]
        assert tail == [i % 2 == 1 for i in range(100)] or tail == [
            i % 2 == 0 for i in range(100)
        ]

    def test_shed_reasons_and_retry_hint(self):
        config = AdmissionConfig(cost=10, global_rate=0, global_burst=10)
        controller = AdmissionController(config)
        assert controller.admit("acme").reason == ADMITTED
        decision = controller.admit("acme")
        assert not decision.admitted
        assert decision.reason == SHED_GLOBAL
        # rate 0: the budget can never recover on its own.
        assert decision.retry_after_submissions is None

    def test_reporter_budget_protects_the_quiet(self):
        config = AdmissionConfig(
            cost=10, reporter_rate=5, reporter_burst=10,
            global_rate=1000, global_burst=10000,
        )
        controller = AdmissionController(config)
        flood = [controller.admit("flooder") for _ in range(50)]
        assert any(
            not d.admitted and d.reason == SHED_REPORTER for d in flood
        )
        # The quiet reporter's first arrival starts with a full burst.
        assert controller.admit("quiet").admitted

    def test_snapshot_restore_is_exact(self):
        config = AdmissionConfig(cost=100, global_rate=50, global_burst=200,
                                 reporter_rate=30, reporter_burst=100)
        arrivals = (["acme", "globex"] * 80) + (["initech"] * 40)
        reference = AdmissionController(config)
        baseline = _drive(reference, arrivals)

        first = AdmissionController(config)
        _drive(first, arrivals[:100])
        snapshot = json.loads(json.dumps(first.snapshot()))  # via JSON, as the manifest does
        second = AdmissionController(config)
        second.restore(snapshot)
        assert _drive(second, arrivals[100:]) == baseline[100:]


# ----------------------------------------------------------------------
# Fair scheduling
# ----------------------------------------------------------------------
class TestFairScheduler:
    def test_flooder_cannot_starve_quiet_reporters(self):
        scheduler = FairScheduler()
        for item in range(100):
            scheduler.push("flooder", ("flooder", item))
        for name in ("a", "b", "c", "d"):
            scheduler.push(name, (name, 0))
        batch = scheduler.next_batch(5, timeout=0.1)
        # One slot per active reporter per cycle: every quiet reporter
        # appears in the very first batch despite the 100-deep flood.
        assert {reporter for reporter, _ in batch} == {"flooder", "a", "b", "c", "d"}

    def test_round_robin_order_within_batches(self):
        scheduler = FairScheduler()
        for item in range(3):
            scheduler.push("x", f"x{item}")
            scheduler.push("y", f"y{item}")
        assert scheduler.next_batch(4, timeout=0.1) == ["x0", "y0", "x1", "y1"]
        assert scheduler.next_batch(4, timeout=0.1) == ["x2", "y2"]

    def test_close_drains_but_rejects_new_pushes(self):
        scheduler = FairScheduler()
        scheduler.push("acme", "queued-before-close")
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.push("acme", "late")
        assert scheduler.next_batch(8, timeout=0.1) == ["queued-before-close"]
        assert scheduler.next_batch(8, timeout=0.1) == []

    def test_depths_and_len(self):
        scheduler = FairScheduler()
        scheduler.push("a", 1)
        scheduler.push("a", 2)
        scheduler.push("b", 3)
        assert len(scheduler) == 3
        assert scheduler.depths() == {"a": 2, "b": 1}


# ----------------------------------------------------------------------
# Guard-limit overrides (--guard-limit)
# ----------------------------------------------------------------------
class TestGuardLimitOverrides:
    def test_parse_ok(self):
        assert parse_guard_limit("max_parts=64") == ("max_parts", 64)
        assert parse_guard_limit(" max_depth = 4 ") == ("max_depth", 4)

    def test_unknown_key_lists_vocabulary(self):
        with pytest.raises(GuardLimitError) as info:
            parse_guard_limit("max_bananas=3")
        for key in GUARD_LIMIT_KEYS:
            assert key in str(info.value)

    def test_bad_values(self):
        with pytest.raises(GuardLimitError):
            parse_guard_limit("max_parts")  # no '='
        with pytest.raises(GuardLimitError):
            parse_guard_limit("max_parts=lots")
        with pytest.raises(GuardLimitError):
            parse_guard_limit("max_parts=0")  # caps are >= 1

    def test_overrides_build_limits(self):
        limits = guard_limits_from_overrides((("max_parts", 4), ("max_depth", 2)))
        assert limits == GuardLimits(max_parts=4, max_depth=2)
        assert guard_limits_from_overrides(None) is None
        assert guard_limits_from_overrides(()) is None

    def test_build_pipeline_config_applies_overrides(self):
        from repro.core.pipeline import build_pipeline_config

        assert build_pipeline_config(None, None) is None
        config = build_pipeline_config(None, (("max_parts", 4),))
        assert config.guard_limits == GuardLimits(max_parts=4)
        config = build_pipeline_config(500, (("max_depth", 2),))
        assert config.budget_work_units == 500
        assert config.guard_limits == GuardLimits(max_depth=2)
        # budget=0 is the CLI's 'unlimited'.
        assert build_pipeline_config(0, None).budget_work_units is None

    def test_runner_config_carries_overrides_to_workers(self):
        from repro.runner import RunnerConfig

        config = RunnerConfig(seed=31, scale=0.02, corpus_prefix=0,
                              guard_limits=(("max_parts", 4),))
        _messages, box = config.build()
        assert box.config.guard_limits == GuardLimits(max_parts=4)

    def test_cli_parses_repeatable_guard_limits(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--guard-limit", "max_parts=8", "--guard-limit", "max_depth=3"]
        )
        assert args.guard_limit == [("max_parts", 8), ("max_depth", 3)]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--guard-limit", "nope=1"])


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def _write_lines(store: CheckpointStore, lines: list[str]) -> None:
    store.records_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _payload(index: int, tag: str = "a") -> str:
    return json.dumps({"message_index": index, "tag": tag}, separators=(",", ":"))


class TestCompaction:
    def test_last_append_wins_and_output_is_fsck_clean(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _write_lines(store, [
            encode_record_line(_payload(0, "old")),
            encode_record_line(_payload(1)),
            encode_record_line(_payload(0, "new")),   # supersedes line 1
            "this is not json at all",                 # corrupt: dropped
            _payload(2, "v1"),                         # v1 line: upgraded to CRC
        ])
        result = store.compact()
        assert (result.lines_before, result.lines_after) == (5, 3)
        assert result.duplicates_dropped == 1
        assert result.corrupt_dropped == 1
        assert result.retired == 0
        assert result.reclaimed_bytes > 0

        scan = store.scan()
        assert not scan.issues  # fsck-clean, including the old v1 line
        assert [entry["message_index"] for entry in scan.entries] == [0, 1, 2]
        # Surviving payloads are preserved verbatim: index 0 is the NEW one.
        assert [e["tag"] for e in scan.entries] == ["new", "a", "v1"]

    def test_retain_keeps_newest_indices(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _write_lines(store, [encode_record_line(_payload(i)) for i in range(10)])
        result = store.compact(retain=3)
        assert result.retired == 7
        assert [e["message_index"] for e in store.scan().entries] == [7, 8, 9]

    def test_compact_empty_store(self, tmp_path):
        result = CheckpointStore(tmp_path).compact()
        assert result.lines_before == result.lines_after == 0

    def test_cli_compact(self, tmp_path, capsys):
        store = CheckpointStore(tmp_path)
        _write_lines(store, [
            encode_record_line(_payload(0, "old")),
            encode_record_line(_payload(0, "new")),
        ])
        assert main(["compact", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 -> 1" in out
        assert "fsck-clean" in out

    def test_cli_compact_refuses_live_checkpoints(self, tmp_path, capsys):
        for status in ("running", "serving"):
            store = CheckpointStore(tmp_path / status)
            _write_lines(store, [encode_record_line(_payload(0))])
            store.write_manifest(RunManifest(seed=1, scale=0.1, status=status))
            assert main(["compact", str(tmp_path / status)]) == 1
            assert status in capsys.readouterr().out

    def test_cli_compact_missing_records(self, tmp_path):
        assert main(["compact", str(tmp_path / "nowhere")]) == 1


# ----------------------------------------------------------------------
# Manifest lifecycle + stats restore
# ----------------------------------------------------------------------
class TestServiceManifest:
    def test_is_service(self):
        assert not RunManifest(status="running").is_service
        assert not RunManifest(status="interrupted").is_service
        assert RunManifest(status="serving").is_service
        assert RunManifest(status="stopped").is_service
        assert RunManifest(status="running", service={"next_index": 3}).is_service

    def test_service_block_roundtrips_and_batch_keys_unchanged(self):
        batch = RunManifest(seed=1, scale=0.1)
        assert "service" not in batch.as_dict()
        assert "guard_limits" not in batch.as_dict()
        service = RunManifest(
            seed=1, scale=0.1, status="stopped",
            service={"next_index": 7, "admission": {"arrivals": 9}},
            guard_limits=[["max_parts", 4]],
        )
        loaded = RunManifest.from_dict(json.loads(json.dumps(service.as_dict())))
        assert loaded.service == {"next_index": 7, "admission": {"arrivals": 9}}
        assert loaded.guard_limits == [["max_parts", 4]]
        assert loaded.is_service

    def test_bare_resume_on_daemon_checkpoint_is_actionable(self, tmp_path, capsys):
        store = CheckpointStore(tmp_path)
        store.write_manifest(RunManifest(
            seed=31, scale=0.02, status="stopped", service={"next_index": 2},
        ))
        assert main(["resume", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "repro serve" in out and "--checkpoint" in out

    def test_running_stats_from_dict_roundtrip(self):
        stats = RunningStats()
        stats.analyzed = 42
        stats.categories["active_phishing"] = 7
        stats.retried = 3
        stats.quarantined = 2
        stats.stage_calls["parse"] = 42
        stats.stage_seconds["parse"] = 1.25
        stats.fault_retries = 5
        stats.fault_kinds["dns"] = 5
        restored = RunningStats.from_dict(json.loads(json.dumps(stats.as_dict())))
        assert restored.as_dict() == stats.as_dict()
        # Absent optional keys read as zero (old manifests).
        sparse = RunningStats.from_dict({"analyzed": 1, "categories": {}})
        assert sparse.analyzed == 1 and sparse.quarantined == 0


# ----------------------------------------------------------------------
# Hardened ingress primitives (PR 9): LineChannel + send_bounded + HTTP
# ----------------------------------------------------------------------
class TestLineChannel:
    """The deadline-aware server-side line reader, over socketpairs."""

    @staticmethod
    def _pair():
        import socket

        server, client = socket.socketpair()
        return server, client

    def test_reads_split_and_coalesced_lines(self):
        server, client = self._pair()
        try:
            channel = LineChannel(server, limit=1024)
            client.sendall(b'{"op":"ping"}\n{"op":')
            assert channel.read_line(idle_timeout=5.0) == b'{"op":"ping"}'
            client.sendall(b'"stats"}\n')
            assert channel.read_line(idle_timeout=5.0) == b'{"op":"stats"}'
        finally:
            server.close()
            client.close()

    def test_strips_crlf_and_reports_eof(self):
        server, client = self._pair()
        try:
            channel = LineChannel(server, limit=1024)
            client.sendall(b"hello\r\n")
            client.close()
            assert channel.read_line(idle_timeout=5.0) == b"hello"
            assert channel.read_line(idle_timeout=5.0) is None
            assert channel.pending == 0
        finally:
            server.close()

    def test_mid_line_disconnect_leaves_pending_bytes(self):
        server, client = self._pair()
        try:
            channel = LineChannel(server, limit=1024)
            client.sendall(b'{"op": "submit", "id": "never-fini')
            client.close()
            assert channel.read_line(idle_timeout=5.0) is None
            assert channel.pending > 0
        finally:
            server.close()

    def test_oversized_line_raises(self):
        server, client = self._pair()
        try:
            channel = LineChannel(server, limit=16)
            client.sendall(b"x" * 64 + b"\n")
            with pytest.raises(LineTooLong):
                channel.read_line(idle_timeout=5.0)
        finally:
            server.close()
            client.close()

    def test_slowloris_trips_the_line_deadline(self):
        import threading
        import time

        server, client = self._pair()
        try:
            channel = LineChannel(server, limit=1024, poll_slice=0.02)

            def trickle():
                for _ in range(50):
                    try:
                        client.sendall(b"x")
                    except OSError:
                        return
                    time.sleep(0.05)

            thread = threading.Thread(target=trickle, daemon=True)
            thread.start()
            started = time.monotonic()
            with pytest.raises(ReadDeadlineExceeded):
                channel.read_line(line_deadline=0.3, idle_timeout=30.0)
            assert time.monotonic() - started < 5.0
        finally:
            server.close()
            client.close()

    def test_idle_timeout_and_defer(self):
        server, client = self._pair()
        try:
            channel = LineChannel(server, limit=1024, poll_slice=0.02)
            with pytest.raises(IdleTimeout):
                channel.read_line(idle_timeout=0.2)
            # A defer callback that reports progress parks the clock;
            # once it stops deferring the timeout fires.
            deferrals = []

            def defer():
                deferrals.append(True)
                return len(deferrals) < 3

            with pytest.raises(IdleTimeout):
                channel.read_line(idle_timeout=0.1, defer_idle=defer)
            assert len(deferrals) == 3
        finally:
            server.close()
            client.close()


class TestSendBounded:
    def test_sends_to_a_reading_peer(self):
        import socket

        server, client = socket.socketpair()
        try:
            assert send_bounded(server, b"hello\n", timeout=5.0)
            assert client.recv(64) == b"hello\n"
        finally:
            server.close()
            client.close()

    def test_gives_up_on_a_peer_that_stopped_reading(self):
        import socket
        import time

        server, client = socket.socketpair()
        try:
            # Shrink both buffers so a non-reading peer backs up fast.
            for sock, opt in ((server, socket.SO_SNDBUF), (client, socket.SO_RCVBUF)):
                sock.setsockopt(socket.SOL_SOCKET, opt, 4096)
            blob = b"x" * (1 << 22)
            started = time.monotonic()
            assert not send_bounded(server, blob, timeout=0.3, poll_slice=0.02)
            assert time.monotonic() - started < 5.0
        finally:
            server.close()
            client.close()

    def test_returns_false_on_a_closed_socket(self):
        import socket

        server, client = socket.socketpair()
        server.close()
        client.close()
        assert not send_bounded(server, b"late\n", timeout=0.2)


class TestHttpMethods:
    def test_all_http_methods_are_sniffed(self):
        for method in ("GET", "HEAD", "POST", "PUT", "DELETE",
                       "OPTIONS", "PATCH", "TRACE", "CONNECT"):
            assert looks_like_http(f"{method} /submit HTTP/1.1".encode())
        assert not looks_like_http(b'{"op": "ping"}')
        assert not looks_like_http(b"GETAWAY /x")  # needs the space

    def test_request_parts(self):
        assert http_request_parts(b"POST /submit?x=1 HTTP/1.1") == ("POST", "/submit")
        assert http_request_parts(b"GET /stats") == ("GET", "/stats")
        assert http_request_parts(b"") == ("?", "/")

    def test_405_response_carries_allow_header(self):
        response = http_response(
            405, {"error": "nope"}, headers={"Allow": "GET, HEAD"}
        )
        head, body = response.split(b"\r\n\r\n", 1)
        assert head.startswith(b"HTTP/1.0 405 Method Not Allowed")
        assert b"Allow: GET, HEAD" in head
        assert json.loads(body)["error"] == "nope"


class TestDecodeHardening:
    def test_deeply_nested_json_is_a_protocol_error(self):
        # A nesting bomb must not unwind the session thread with
        # RecursionError; it is just another malformed line.
        bomb = b"[" * 5000 + b"]" * 5000
        with pytest.raises(ProtocolError):
            decode_line(bomb)

    def test_binary_junk_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\x00\x01\xff\xfe")
        with pytest.raises(ProtocolError):
            decode_line(b'{"op": 42}')
