"""Delayed-activation cloaking (Section III-B.2.1), end to end.

"Before its activation, all visitors are redirected to a benign page.
This technique can be used to prevent email security filters from
reaching the malicious page while scanning the URL extracted from an
incoming message. [...] A few hours later, the URL is activated."
"""

import random

import pytest

from repro.browser.browser import Browser
from repro.browser.profile import human_chrome_profile
from repro.core import CrawlerBox
from repro.core.outcomes import MessageCategory
from repro.dataset.world import World
from repro.kits.brands import COMPANY_BRANDS
from repro.kits.credential import CredentialKit, CredentialKitOptions
from repro.kits.lures import build_credential_lure


@pytest.fixture(scope="module")
def delayed_world():
    world = World(seed=31)
    kit = CredentialKit(
        COMPANY_BRANDS[0],
        CredentialKitOptions(block_cloud_ips=False),
        recaptcha=world.recaptcha,
    )
    # Delivered around t=100h; the URL only activates at t=106h.
    deployment = kit.deploy(
        world.network, "sleeper.example", ip="185.5.5.5",
        cert_issued_at=0.0, activated_at=106.0,
    )
    world.register_deployment(deployment)
    message = build_credential_lure(
        deployment, "v@corp.amatravel.example", "tokS", 100.0, random.Random(1)
    )
    world.publish_sender(message.sending_domain, message.sending_ip)
    return world, deployment, message


class TestDelayedActivation:
    def test_scan_at_delivery_sees_decoy(self, delayed_world):
        world, deployment, message = delayed_world
        url = message.ground_truth["landing_url"]
        browser = Browser(world.network, human_chrome_profile(), rng=random.Random(2), timestamp=100.5)
        result = browser.visit(url)
        assert "under construction" in result.final_response.body

    def test_victim_after_activation_sees_phish(self, delayed_world):
        world, deployment, message = delayed_world
        url = message.ground_truth["landing_url"]
        browser = Browser(world.network, human_chrome_profile(), rng=random.Random(3), timestamp=110.0)
        result = browser.visit(url)
        session = result.final_session
        assert session.elements["content"].get("style").get("display") == "block"

    def test_immediate_pipeline_analysis_is_defeated(self, delayed_world):
        """An email-filter-style scan right at delivery misses the phish;
        the paper's point about this cloaking class."""
        world, _, message = delayed_world
        box = CrawlerBox.for_world(world)  # analysis_delay_hours=1 < the 6h delay
        record = box.analyze(message)
        assert record.category != MessageCategory.ACTIVE_PHISHING

    def test_later_reanalysis_catches_it(self, delayed_world):
        """Re-scanning after activation (retro-analysis) recovers it."""
        from repro.core import PipelineConfig

        world, _, message = delayed_world
        box = CrawlerBox.for_world(world, config=PipelineConfig(analysis_delay_hours=12.0))
        record = box.analyze(message)
        assert record.category == MessageCategory.ACTIVE_PHISHING
        assert record.spear_brand == COMPANY_BRANDS[0].name
