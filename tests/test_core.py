"""Core pipeline tests: outcomes, spear classifier, triage, pipeline."""

import random

import pytest

from repro.core import CrawlerBox, PipelineConfig
from repro.core.outcomes import MessageCategory, PageClass, aggregate_message_category
from repro.core.report import summarize
from repro.core.spearphish import SpearPhishClassifier
from repro.core.triage import TAG_MALICIOUS, TAG_SPAM, simulate_triage_funnel
from repro.browser.render import render_visual
from repro.kits.brands import COMPANY_BRANDS
from repro.imaging.effects import add_gaussian_noise, hue_rotate, overlay_text


class TestAggregation:
    def test_no_urls_is_no_resources(self):
        assert aggregate_message_category(False, []) == MessageCategory.NO_RESOURCES

    def test_login_form_wins(self):
        categories = [PageClass.ERROR, PageClass.LOGIN_FORM, PageClass.BENIGN]
        assert aggregate_message_category(True, categories) == MessageCategory.ACTIVE_PHISHING

    def test_gated_login_is_active(self):
        assert aggregate_message_category(True, [PageClass.GATED_LOGIN]) == MessageCategory.ACTIVE_PHISHING

    def test_download_beats_interaction(self):
        categories = [PageClass.INTERACTION, PageClass.DOWNLOAD]
        assert aggregate_message_category(True, categories) == MessageCategory.DOWNLOAD

    def test_all_errors(self):
        assert aggregate_message_category(True, [PageClass.ERROR, PageClass.ERROR]) == MessageCategory.ERROR

    def test_local_login_form_overrides(self):
        assert (
            aggregate_message_category(True, [PageClass.ERROR], local_login_form=True)
            == MessageCategory.ACTIVE_PHISHING
        )

    def test_benign_only_is_other(self):
        assert aggregate_message_category(True, [PageClass.BENIGN]) == MessageCategory.OTHER


class TestSpearClassifier:
    @pytest.fixture()
    def classifier(self):
        classifier = SpearPhishClassifier(threshold=10)
        for brand in COMPANY_BRANDS:
            classifier.add_reference(brand.name, render_visual(brand.spec))
        return classifier

    def test_exact_clone_matches(self, classifier):
        clone = render_visual(COMPANY_BRANDS[0].spec)
        match = classifier.match(clone)
        assert match is not None and match.brand == COMPANY_BRANDS[0].name
        assert match.combined_distance == 0

    def test_clone_with_victim_email_overlay_matches(self, classifier):
        screenshot = render_visual(COMPANY_BRANDS[1].spec, overlay_text="victim@corp.example")
        match = classifier.match(screenshot)
        assert match is not None and match.brand == COMPANY_BRANDS[1].name

    def test_clone_with_noise_matches(self, classifier):
        screenshot = add_gaussian_noise(render_visual(COMPANY_BRANDS[2].spec), 8.0, random.Random(1))
        assert classifier.match(screenshot) is not None

    def test_hue_rotated_clone_still_matches(self, classifier):
        """The paper's explicit claim: hue-rotate does not defeat the hashes."""
        rotated = hue_rotate(render_visual(COMPANY_BRANDS[0].spec), 4.0)
        match = classifier.match(rotated)
        assert match is not None and match.brand == COMPANY_BRANDS[0].name

    def test_cross_brand_does_not_match(self, classifier):
        for index in range(1, len(COMPANY_BRANDS)):
            screenshot = render_visual(COMPANY_BRANDS[index].spec)
            match = classifier.match(screenshot)
            assert match is not None and match.brand == COMPANY_BRANDS[index].name

    def test_unrelated_page_no_match(self, classifier):
        from repro.web.site import VisualSpec

        unrelated = render_visual(
            VisualSpec(brand="Random Blog", title="Welcome", header_color=(200, 200, 200),
                       button_text="", fields=(), layout_variant=7)
        )
        assert classifier.match(unrelated) is None

    def test_single_hash_ablation_weaker(self, classifier):
        """Combined matching is at least as specific as single-hash."""
        from repro.web.site import VisualSpec

        candidates = [
            render_visual(VisualSpec(brand=f"B{i}", title="Sign in", layout_variant=i,
                                     header_color=(i * 20 % 255, 80, 120)))
            for i in range(12)
        ]
        combined_hits = sum(1 for c in candidates if classifier.match(c) is not None)
        phash_hits = sum(1 for c in candidates if classifier.match_with_single_hash(c, "phash") is not None)
        dhash_hits = sum(1 for c in candidates if classifier.match_with_single_hash(c, "dhash") is not None)
        assert combined_hits <= phash_hits
        assert combined_hits <= dhash_hits


class TestTriage:
    def test_funnel_shape(self):
        funnel = simulate_triage_funnel(random.Random(1))
        assert funnel.inbound == 60_000_000
        assert funnel.gateway_filtered == int(60_000_000 * 0.17)
        assert funnel.delivered == funnel.inbound - funnel.gateway_filtered
        # ~0.03% of delivered messages are reported.
        assert 0.0002 < funnel.reported_fraction_of_delivered < 0.0004
        # ~3.7% of reports are malicious.
        assert 0.025 < funnel.malicious_fraction_of_reported < 0.05

    def test_tag_distribution(self):
        rng = random.Random(2)
        from repro.core.triage import expert_tag

        tags = [expert_tag(rng) for _ in range(20_000)]
        assert 0.03 < tags.count(TAG_MALICIOUS) / len(tags) < 0.045
        assert 0.58 < tags.count(TAG_SPAM) / len(tags) < 0.65

    def test_sampled_funnel_consistent(self):
        funnel = simulate_triage_funnel(random.Random(3), reported_sample=2000)
        assert funnel.tagged_malicious + funnel.tagged_spam + funnel.tagged_legitimate == funnel.reported


class TestPipelineIntegration:
    def test_records_align_with_messages(self, small_corpus, analyzed_records):
        assert len(analyzed_records) == len(small_corpus.messages)
        for index, record in enumerate(analyzed_records):
            assert record.message_index == index

    def test_category_assignment_matches_ground_truth(self, analyzed_records):
        expected_map = {
            "fraud-no-resources": MessageCategory.NO_RESOURCES,
            "credential-phishing": MessageCategory.ACTIVE_PHISHING,
            "error-nxdomain": MessageCategory.ERROR,
            "error-unreachable": MessageCategory.ERROR,
            "error-mobile-only": MessageCategory.ERROR,
            "error-geo-filtered": MessageCategory.ERROR,
            "interaction": MessageCategory.INTERACTION,
            "download": MessageCategory.DOWNLOAD,
            "html-attachment-local": MessageCategory.ACTIVE_PHISHING,
            "html-attachment-redirect": MessageCategory.ACTIVE_PHISHING,
        }
        mismatches = [
            (record.ground_truth.get("category"), record.category)
            for record in analyzed_records
            if expected_map.get(record.ground_truth.get("category", "")) not in (None, record.category)
        ]
        assert not mismatches, mismatches[:5]

    def test_spear_classification_accuracy(self, analyzed_records):
        true_positive = false_positive = false_negative = 0
        for record in analyzed_records:
            truth = record.ground_truth.get("role") == "spear"
            predicted = record.spear_brand is not None
            if truth and predicted:
                true_positive += 1
                assert record.spear_brand == record.ground_truth.get("brand")
            elif predicted and not truth:
                false_positive += 1
            elif truth and not predicted:
                false_negative += 1
        assert true_positive > 0
        assert false_positive == 0
        assert false_negative == 0

    def test_auth_pass_for_every_message(self, analyzed_records):
        assert all(record.auth is not None and record.auth.all_pass for record in analyzed_records)

    def test_noise_detection_matches_ground_truth(self, analyzed_records):
        for record in analyzed_records:
            if record.ground_truth.get("noise_padding"):
                assert record.noise_padded

    def test_dynamic_discovery_of_redirect_attachment(self, analyzed_records):
        redirect_records = [
            record for record in analyzed_records
            if record.ground_truth.get("category") == "html-attachment-redirect"
        ]
        assert redirect_records
        for record in redirect_records:
            assert any(crawl.discovered_dynamically for crawl in record.crawls)

    def test_enrichment_attached_for_active(self, analyzed_records):
        active = [r for r in analyzed_records if r.category == MessageCategory.ACTIVE_PHISHING]
        enriched = [r for r in active if r.enrichments]
        assert len(enriched) > len(active) * 0.9
        sample = next(iter(enriched[0].enrichments.values()))
        assert sample.whois is not None or sample.first_cert_issued_at is not None

    def test_summary_counts(self, analyzed_records):
        findings = summarize(analyzed_records)
        assert findings.total_messages == len(analyzed_records)
        assert findings.auth_all_pass == len(analyzed_records)
        assert findings.spear_messages > 0
        assert findings.category_counts[MessageCategory.ACTIVE_PHISHING] > 0

    def test_pipeline_is_deterministic(self, small_corpus):
        box_a = CrawlerBox.for_world(small_corpus.world, rng=random.Random(5))
        box_b = CrawlerBox.for_world(small_corpus.world, rng=random.Random(5))
        sample = small_corpus.messages[:30]
        records_a = [box_a.analyze(m, i) for i, m in enumerate(sample)]
        records_b = [box_b.analyze(m, i) for i, m in enumerate(sample)]
        assert [r.category for r in records_a] == [r.category for r in records_b]
        assert [r.spear_brand for r in records_a] == [r.spear_brand for r in records_b]
