"""Hot-path caches: the JS parse LRU and the spear-reference memo.

Both caches are pure wins only if they are invisible: a cached parse
must yield an AST equal to a fresh parse, and a memoized reference
crawl must yield the same pHash/dHash reference set a fresh crawl
would.  These tests pin the invisibility and the actually-caching
behaviour (hit counters, LRU eviction, per-key isolation).
"""

from __future__ import annotations

import pytest

from repro.js.parser import (
    _ParseCache,
    clear_parse_cache,
    parse,
    parse_cache_info,
)

SCRIPT = """
var tries = 0;
function check(blocked) {
    if (blocked) { return -1; }
    tries = tries + 1;
    return tries * 10;
}
check(false) + check(false);
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_parse_cache()
    yield
    clear_parse_cache()


class TestParseCache:
    def test_cached_parse_equals_fresh_parse(self):
        cached = parse(SCRIPT)
        fresh = parse(SCRIPT, use_cache=False)
        assert cached == fresh  # AST dataclass equality, node for node

    def test_repeat_parse_hits_and_returns_same_object(self):
        first = parse(SCRIPT)
        before = parse_cache_info()
        second = parse(SCRIPT)
        after = parse_cache_info()
        assert second is first  # shared immutable AST, no reparse
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_different_sources_do_not_collide(self):
        a = parse("var x = 1;")
        b = parse("var x = 2;")
        assert a != b
        assert parse("var x = 1;") is a
        assert parse("var x = 2;") is b

    def test_bypass_does_not_touch_cache(self):
        before = parse_cache_info()
        parse(SCRIPT, use_cache=False)
        after = parse_cache_info()
        assert (after["hits"], after["misses"], after["size"]) == (
            before["hits"], before["misses"], before["size"])

    def test_clear_resets_counters_and_evicts(self):
        first = parse(SCRIPT)
        clear_parse_cache()
        info = parse_cache_info()
        assert (info["hits"], info["misses"], info["size"]) == (0, 0, 0)
        assert parse(SCRIPT) is not first  # reparsed after eviction

    def test_lru_evicts_least_recently_used(self):
        cache = _ParseCache(maxsize=2)
        key_a, key_b, key_c = (_ParseCache.key(s) for s in ("a;", "b;", "c;"))
        cache.put(key_a, parse("a;", use_cache=False))
        cache.put(key_b, parse("b;", use_cache=False))
        assert cache.get(key_a) is not None  # touch a: b becomes LRU
        cache.put(key_c, parse("c;", use_cache=False))
        assert cache.get(key_b) is None  # evicted
        assert cache.get(key_a) is not None
        assert cache.get(key_c) is not None

    def test_interpretation_unaffected_by_caching(self):
        # The cache hands the SAME Program object to every interpreter,
        # which is only sound because execution never mutates the AST.
        from repro.js.interp import Interpreter

        results = []
        for use_cache in (True, True, False):
            interpreter = Interpreter()
            program = parse(SCRIPT, use_cache=use_cache)
            results.append(interpreter.run_program(program, interpreter.globals))
        assert results[0] == results[1] == results[2] == 30


class TestSpearReferenceMemo:
    def test_reference_crawl_memoized_per_world(self, small_corpus):
        from repro.core.spearphish import SpearPhishClassifier
        from repro.kits.brands import COMPANY_BRANDS

        network = small_corpus.world.network
        brands = COMPANY_BRANDS
        first = SpearPhishClassifier.from_portals(network, brands)
        second = SpearPhishClassifier.from_portals(network, brands)
        # Same memoized reference pages (one crawl), independent classifiers.
        assert first is not second
        assert first.references == second.references
        cache = network.__dict__["_spear_reference_cache"]
        key = tuple((brand.name, brand.login_domain) for brand in brands)
        assert list(cache[key]) == first.references
        # Both classifiers share the one memoized tuple for this key.
        assert all(a is b for a, b in zip(first.references, second.references))

    def test_memo_matches_fresh_crawl(self, small_corpus):
        from repro.core.spearphish import SpearPhishClassifier
        from repro.kits.brands import COMPANY_BRANDS

        network = small_corpus.world.network
        brands = COMPANY_BRANDS
        memoized = SpearPhishClassifier.from_portals(network, brands)
        fresh = SpearPhishClassifier._crawl_references(network, brands)
        assert memoized.references == list(fresh)
