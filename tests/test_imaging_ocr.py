"""OCR round-trip tests, including property-based ones."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.effects import add_gaussian_noise, crop_border
from repro.imaging.font import GLYPHS, normalize_char, supported_characters
from repro.imaging.image import Image
from repro.imaging.ocr import ocr_image
from repro.imaging.render import render_lines, render_text


class TestFont:
    def test_all_glyphs_are_7x5(self):
        for char, glyph in GLYPHS.items():
            assert glyph.shape == (7, 5), char

    def test_glyphs_are_distinct(self):
        seen = {}
        for char, glyph in GLYPHS.items():
            key = glyph.tobytes()
            assert key not in seen, f"{char!r} duplicates {seen.get(key)!r}"
            seen[key] = char

    def test_lowercase_folds_to_uppercase(self):
        assert normalize_char("a") == "A"
        assert normalize_char("z") == "Z"

    def test_unknown_char_falls_back(self):
        assert normalize_char("é") == "?"

    def test_supported_characters_cover_urls(self):
        chars = supported_characters()
        for needed in "HTTPS://A-B.COM/PATH?X=1&Y=2":
            assert needed in chars


class TestOcrRoundTrip:
    @pytest.mark.parametrize("scale", [1, 2, 3, 4])
    def test_single_line_scales(self, scale):
        text = "HELLO WORLD 123"
        result = ocr_image(render_text(text, scale=scale))
        assert result.text == text

    def test_url_roundtrip(self):
        url = "HTTPS://EVIL-SITE.COM/DHFYWFH?TOKEN=ABC123"
        assert ocr_image(render_text(url, scale=2)).text == url

    def test_multiline(self):
        lines = ["DEAR USER,", "PLEASE SIGN IN AT", "HTTP://LOGIN.EXAMPLE.RU/A"]
        assert ocr_image(render_lines(lines, scale=2)).text == "\n".join(lines)

    def test_lowercase_input_reads_as_uppercase(self):
        assert ocr_image(render_text("hello", scale=2)).text == "HELLO"

    def test_empty_image(self):
        result = ocr_image(Image.new(50, 20))
        assert result.text == ""
        assert result.confidence == 1.0

    def test_noise_robustness(self):
        image = render_text("SCAN THIS CODE NOW", scale=3)
        noisy = add_gaussian_noise(image, 30.0, random.Random(5))
        assert ocr_image(noisy).text == "SCAN THIS CODE NOW"

    def test_inverted_polarity(self):
        image = render_text("INVERSE", scale=2, fg=(255, 255, 255), bg=(0, 0, 0))
        assert ocr_image(image).text == "INVERSE"

    def test_cropped_margins(self):
        image = render_text("MARGINS", scale=3, margin=10)
        cropped = crop_border(image, 6)
        assert ocr_image(cropped).text == "MARGINS"

    def test_confidence_high_for_clean_render(self):
        result = ocr_image(render_text("CLEAN", scale=2))
        assert result.confidence > 0.95


_OCR_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:/.-_?=&"


@settings(max_examples=25, deadline=None)
@given(
    text=st.text(alphabet=_OCR_ALPHABET, min_size=1, max_size=24),
    scale=st.integers(min_value=2, max_value=3),
)
def test_ocr_roundtrip_property(text, scale):
    """Any renderable text recovers exactly (modulo trailing spaces).

    Strings made solely of baseline-free strokes ("_", "__") are
    inherently ambiguous without a reference line and are excluded (see
    the ocr_image docstring).
    """
    from hypothesis import assume

    assume(text.strip("_- ") != "")
    rendered = render_text(text, scale=scale)
    assert ocr_image(rendered).text == text.rstrip()
