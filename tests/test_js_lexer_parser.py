"""Lexer and parser tests for the PhishScript engine."""

import pytest

from repro.js import nodes as ast
from repro.js.lexer import JSSyntaxError, tokenize
from repro.js.parser import parse, parse_expression_source


class TestLexer:
    def test_numbers(self):
        kinds = [(t.kind, t.value) for t in tokenize("1 2.5 0x1F 1e3 .5")][:-1]
        assert kinds == [("num", 1.0), ("num", 2.5), ("num", 31.0), ("num", 1000.0), ("num", 0.5)]

    def test_number_at_end_of_input(self):
        assert tokenize("3")[0].value == 3.0

    def test_strings_and_escapes(self):
        tokens = tokenize(r"'a\n' "  + '"b\\x41" ' + r'"B"')
        assert tokens[0].value == "a\n"
        assert tokens[1].value == "bA"
        assert tokens[2].value == "B"

    def test_unterminated_string(self):
        with pytest.raises(JSSyntaxError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("1 // line\n/* block */ 2")
        values = [t.value for t in tokens if t.kind == "num"]
        assert values == [1.0, 2.0]

    def test_multichar_punctuators(self):
        values = [t.value for t in tokenize("=== !== && || => ++ +=")][:-1]
        assert values == ["===", "!==", "&&", "||", "=>", "++", "+="]

    def test_template_literal_parts(self):
        token = tokenize("`a ${x+1} b`")[0]
        assert token.kind == "template"
        assert token.value[0] == ("str", "a ")
        assert token.value[1][0] == "expr"

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("var variable function func")
        assert [t.kind for t in tokens][:-1] == ["keyword", "ident", "keyword", "ident"]

    def test_line_tracking(self):
        tokens = tokenize("1\n\n2")
        assert tokens[0].line == 1
        assert tokens[1].line == 3


class TestParser:
    def test_var_declarations(self):
        program = parse("var a = 1, b;")
        declaration = program.body[0]
        assert isinstance(declaration, ast.VarDecl)
        assert [name for name, _ in declaration.declarations] == ["a", "b"]

    def test_function_declaration(self):
        program = parse("function f(a, b) { return a; }")
        fn = program.body[0]
        assert isinstance(fn, ast.FunctionDecl)
        assert fn.params == ["a", "b"]

    def test_arrow_functions(self):
        expr = parse_expression_source("x => x + 1")
        assert isinstance(expr, ast.FunctionExpr) and expr.is_arrow
        expr2 = parse_expression_source("(a, b) => { return a; }")
        assert isinstance(expr2, ast.FunctionExpr) and expr2.params == ["a", "b"]

    def test_parenthesized_expression_is_not_arrow(self):
        expr = parse_expression_source("(1 + 2) * 3")
        assert isinstance(expr, ast.Binary)

    def test_precedence(self):
        expr = parse_expression_source("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_member_chains(self):
        expr = parse_expression_source("a.b.c['d']")
        assert isinstance(expr, ast.Member) and expr.computed
        assert isinstance(expr.obj, ast.Member)

    def test_new_expression(self):
        expr = parse_expression_source("new XMLHttpRequest()")
        assert isinstance(expr, ast.New)

    def test_conditional(self):
        expr = parse_expression_source("a ? b : c")
        assert isinstance(expr, ast.Conditional)

    def test_if_else_chain(self):
        program = parse("if (a) {} else if (b) {} else {}")
        statement = program.body[0]
        assert isinstance(statement, ast.If)
        assert isinstance(statement.alternate, ast.If)

    def test_for_classic(self):
        program = parse("for (var i = 0; i < 3; i++) { }")
        assert isinstance(program.body[0], ast.For)

    def test_for_in_and_of(self):
        for_in = parse("for (var k in obj) {}").body[0]
        assert isinstance(for_in, ast.ForIn) and not for_in.of
        for_of = parse("for (var v of list) {}").body[0]
        assert isinstance(for_of, ast.ForIn) and for_of.of

    def test_try_catch_finally(self):
        statement = parse("try { a(); } catch (e) { b(); } finally { c(); }").body[0]
        assert isinstance(statement, ast.Try)
        assert statement.param == "e"
        assert statement.finalizer is not None

    def test_try_without_handler_rejected(self):
        with pytest.raises(JSSyntaxError):
            parse("try { a(); }")

    def test_object_literal_variants(self):
        expr = parse_expression_source("{a: 1, 'b': 2, c, d() { return 1; }}")
        assert isinstance(expr, ast.ObjectLiteral)
        assert [key for key, _ in expr.entries] == ["a", "b", "c", "d"]

    def test_switch(self):
        statement = parse("switch (x) { case 1: a(); break; default: b(); }").body[0]
        assert isinstance(statement, ast.Switch)
        assert len(statement.cases) == 2

    def test_debugger_statement(self):
        assert isinstance(parse("debugger;").body[0], ast.Debugger)

    def test_invalid_assignment_target(self):
        with pytest.raises(JSSyntaxError):
            parse("1 = 2;")

    def test_unexpected_token(self):
        with pytest.raises(JSSyntaxError):
            parse("var = 3;")
