"""The serve daemon's storage health machine: ok -> degraded ->
readonly -> recovered, with zero accepted-record loss.

A scripted storage-fault engine fails exactly the ``records.jsonl``
appends the test says to fail.  The contract under test:

- a failed verdict append *degrades* the daemon (the verdict still
  streams; its wire bytes are buffered, never dropped);
- enough consecutive failures flip it *readonly*: new submissions shed
  with an explicit machine-readable ``overloaded`` response whose
  reason names the storage failure, ``/healthz`` answers 503 but keeps
  answering, and the ``/stats`` reconciliation invariant still holds;
- readonly sheds never tick the admission clock, so the deterministic
  shed set of the admission transcript is unaffected;
- when the disk heals, the next arrival probes recovery: the buffer
  drains in order, health returns to ``ok``, and the drained checkpoint
  holds every accepted record exactly once.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import urllib.error
import urllib.request

import pytest

from repro.runner import CheckpointStore
from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.storage.durable import install_storage_faults
from repro.storage.faults import InjectedDiskFull

SEED, SCALE = 31, 0.02


def _eml(i: int) -> bytes:
    return (
        f"From: \"IT Support\" <support@spammer{i}.ru>\n"
        f"To: victim@corp.example\n"
        f"Subject: Password expires today {i}\n"
        f"Date: Tue, 12 Mar 2024 10:30:00 +0000\n"
        f"MIME-Version: 1.0\n"
        f"Content-Type: text/html; charset=utf-8\n"
        f"\n"
        f"<html><body><a href=\"https://phish{i}.example/portal\">Open</a>"
        f"</body></html>\n"
    ).encode()


class BrokenRecordsDisk:
    """Scripted engine: while ``failing``, every write to records.jsonl
    reports ENOSPC; everything else (manifest, endpoint) stays healthy."""

    active = True

    def __init__(self):
        self.failing = False

    def write_fault(self, path, nbytes):
        if self.failing and pathlib.PurePath(path).name == "records.jsonl":
            return InjectedDiskFull("records.jsonl: no space left (scripted)"), 0
        return None

    def check_fsync(self, path):
        pass

    def check_replace(self, path):
        pass


@pytest.fixture()
def broken_disk():
    disk = BrokenRecordsDisk()
    install_storage_faults(disk)
    yield disk
    install_storage_faults(None)


@contextlib.contextmanager
def _daemon(directory):
    config = ServeConfig(
        seed=SEED, scale=SCALE, jobs=1, executor="thread", batch_size=1,
        readonly_after=2,
    )
    daemon = ServeDaemon(config, directory)
    daemon.start()
    try:
        yield daemon
    finally:
        daemon.request_shutdown()
        assert daemon.wait() == 0


def _healthz(port: int) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=30
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _assert_reconciled(stats: dict) -> None:
    assert stats["submitted"] == (
        stats["accepted"] + stats["shed"] + stats["rejected"]
    )
    assert stats["accepted"] == (
        stats["completed"] + stats["failed"] + stats["queued"] + stats["in_flight"]
    )


class TestStorageHealthMachine:
    def test_degrade_readonly_shed_recover_zero_loss(self, tmp_path, broken_disk):
        with _daemon(tmp_path) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                # Healthy baseline: two verdicts, both durable.
                for i in range(2):
                    assert client.submit_bytes(_eml(i), reporter="acme").accepted
                client.wait_verdicts(timeout=120)
                assert daemon.storage_health == "ok"

                # First failed append: degraded, verdict still streamed,
                # record buffered (not lost), /healthz still 200.
                broken_disk.failing = True
                outcome = client.submit_bytes(_eml(2), reporter="acme")
                assert outcome.accepted
                client.wait_verdicts(timeout=120)
                assert outcome.status == "verdict"
                assert daemon.storage_health == "degraded"
                status, health = _healthz(daemon.port)
                assert status == 200 and health["status"] == "degraded"
                assert health["storage"]["pending_appends"] == 1

                # Second consecutive failure trips readonly_after=2.
                outcome = client.submit_bytes(_eml(3), reporter="acme")
                assert outcome.accepted
                client.wait_verdicts(timeout=120)
                assert outcome.status == "verdict"
                assert daemon.storage_health == "readonly"
                status, health = _healthz(daemon.port)
                assert status == 503 and health["status"] == "readonly"
                assert health["storage"]["pending_appends"] == 2
                assert "no space left" in health["storage"]["last_error"]

                # Readonly sheds explicitly — and keeps /stats honest.
                shed = client.submit_bytes(_eml(4), reporter="acme")
                assert shed.status == "overloaded"
                assert "readonly" in shed.reason
                assert "no space left" in shed.reason
                stats = client.stats()
                _assert_reconciled(stats)
                assert stats["storage"]["health"] == "readonly"
                assert stats["storage"]["storage_shed"] == 1
                assert stats["storage"]["append_errors"] >= 2

                # Disk heals: the next arrival probes recovery, drains
                # the buffer in order, and is admitted normally.
                broken_disk.failing = False
                outcome = client.submit_bytes(_eml(5), reporter="acme")
                assert outcome.accepted
                client.wait_verdicts(timeout=120)
                assert outcome.status == "verdict"
                assert daemon.storage_health == "ok"
                status, health = _healthz(daemon.port)
                assert status == 200 and health["status"] == "ok"
                assert health["storage"]["pending_appends"] == 0
                assert health["storage"]["recoveries"] >= 1
                stats = client.stats()
                _assert_reconciled(stats)
                assert stats["completed"] == 5

        # Zero loss: all five accepted submissions (indices 0-4; the
        # shed one was never assigned an index) are durable exactly once.
        install_storage_faults(None)
        store = CheckpointStore(tmp_path)
        scan = store.scan()
        assert scan.corruption == []
        assert scan.indices == {0, 1, 2, 3, 4}
        manifest = store.read_manifest()
        assert manifest.status == "stopped"
        assert manifest.service["next_index"] == 5

    def test_drain_flushes_pending_buffer(self, tmp_path, broken_disk):
        # Records buffered while degraded are flushed by the drain once
        # the disk heals — even with no further traffic to probe it.
        with _daemon(tmp_path) as daemon:
            with ServeClient("127.0.0.1", daemon.port, timeout=120) as client:
                broken_disk.failing = True
                assert client.submit_bytes(_eml(0), reporter="acme").accepted
                client.wait_verdicts(timeout=120)
                assert daemon.storage_health == "degraded"
                broken_disk.failing = False
            # No more submissions: the drain itself must flush.
        install_storage_faults(None)
        store = CheckpointStore(tmp_path)
        assert store.scan().indices == {0}
        assert store.read_manifest().status == "stopped"
