"""Bot-detection service tests: BotD, Turnstile, AnonWAF, reCAPTCHA."""

import json
import random

import pytest

from repro.botdetect import signals
from repro.botdetect.anonwaf import AnonWafProtection
from repro.botdetect.botd import botd_gate_script, botd_script, read_botd_verdict
from repro.botdetect.recaptcha import RecaptchaService
from repro.botdetect.turnstile import TurnstileProtection
from repro.browser.browser import Browser
from repro.browser.profile import datacenter_scanner_profile, human_chrome_profile
from repro.web.context import ClientContext, IP_DATACENTER
from repro.web.network import Network
from repro.web.site import Page, Website
from repro.web.tls import TLSCertificate


def _network_with(page_html, domain="test.example"):
    network = Network()
    site = Website(domain, ip="6.6.6.6")
    site.set_default(Page(html=page_html))
    network.host_website(site)
    network.issue_certificate(TLSCertificate(domain, "CA", float("-inf"), float("inf")))
    return network, site


def _visit(network, profile, url="https://test.example/"):
    browser = Browser(network, profile, rng=random.Random(2))
    return browser.visit(url)


class TestSignals:
    def test_webdriver_check(self):
        assert signals.check_webdriver({"webdriver": True}) is not None
        assert signals.check_webdriver({"webdriver": False}) is None

    def test_headless_ua(self):
        assert signals.check_headless_ua({"userAgent": "HeadlessChrome/120"}) is not None
        assert signals.check_headless_ua({"userAgent": "Chrome/120"}) is None

    def test_plugin_surface_spares_mobile(self):
        mobile = {"userAgent": "iPhone Mobile Safari", "plugins": 0, "hasChrome": False}
        desktop = {"userAgent": "Chrome/120", "plugins": 0, "hasChrome": False}
        assert signals.check_plugin_surface(mobile) is None
        assert signals.check_plugin_surface(desktop) is not None

    def test_behaviour(self):
        assert signals.check_behaviour({"mouseMoves": 0, "trustedMoves": 0}) is not None
        assert signals.check_behaviour({"mouseMoves": 5, "trustedMoves": 0}) is not None
        assert signals.check_behaviour({"mouseMoves": 5, "trustedMoves": 5}) is None

    def test_tls_stack(self):
        assert signals.check_tls_stack(ClientContext(tls_fingerprint="python-requests")) is not None
        assert signals.check_tls_stack(ClientContext(tls_fingerprint="chrome")) is None

    def test_interception_headers(self):
        quirky = {"Cache-Control": "no-cache", "Pragma": "no-cache"}
        assert signals.check_interception_headers(quirky) is not None
        assert signals.check_interception_headers({"Cache-Control": "max-age=0"}) is None

    def test_ip_reputation(self):
        assert signals.check_ip_reputation(ClientContext(known_scanner=True)) is not None
        assert signals.check_ip_reputation(ClientContext(ip_type=IP_DATACENTER)) is not None
        assert signals.check_ip_reputation(ClientContext()) is None


class TestBotD:
    def test_human_passes(self):
        network, _ = _network_with(f"<html><head><script>{botd_script()}</script></head><body></body></html>")
        result = _visit(network, human_chrome_profile())
        verdict = read_botd_verdict(result.final_session)
        assert verdict is not None and verdict["bot"] is False

    def test_scanner_detected_with_reason(self):
        network, _ = _network_with(f"<html><head><script>{botd_script()}</script></head><body></body></html>")
        result = _visit(network, datacenter_scanner_profile())
        verdict = read_botd_verdict(result.final_session)
        assert verdict["bot"] is True
        assert "webdriver" in verdict["reasons"]

    def test_gate_script_branches(self):
        gate = botd_gate_script("window.__branch = 'human';", "window.__branch = 'bot';")
        network, _ = _network_with(f"<html><head><script>{gate}</script></head><body></body></html>")
        human = _visit(network, human_chrome_profile())
        assert human.final_session.window.get("__branch") == "human"
        scanner = _visit(network, datacenter_scanner_profile())
        assert scanner.final_session.window.get("__branch") == "bot"


class TestTurnstile:
    def _protected(self):
        network, site = _network_with("<html><body><p>SECRET-CONTENT</p></body></html>")
        protection = TurnstileProtection(site)
        return network, protection

    def test_human_clears_without_interaction(self):
        network, protection = self._protected()
        result = _visit(network, human_chrome_profile())
        assert "SECRET-CONTENT" in result.final_response.body
        assert protection.verdict_log[-1].passed

    def test_scanner_stuck_on_interstitial(self):
        network, protection = self._protected()
        result = _visit(network, datacenter_scanner_profile())
        assert "SECRET-CONTENT" not in (result.final_response.body if result.final_response else "")
        failed = [v for v in protection.verdict_log if not v.passed]
        assert failed and any(d.signal == "navigator.webdriver" for d in failed[0].detections)

    def test_clearance_is_ip_bound(self):
        """A stolen clearance cookie does not help a bot on another IP."""
        network, protection = self._protected()
        browser = Browser(network, human_chrome_profile(), rng=random.Random(3))
        browser.visit("https://test.example/")
        cookie = browser.cookies["test.example"]["cf_clearance"]
        # Replay from a scanner on a different IP: the cookie is ignored
        # and the scanner cannot pass the challenge itself.
        scanner = Browser(network, datacenter_scanner_profile(), rng=random.Random(4))
        scanner.set_cookie("test.example", "cf_clearance", cookie)
        result = scanner.visit("https://test.example/")
        assert "SECRET-CONTENT" not in result.final_response.body

    def test_cdp_leak_detected(self):
        network, protection = self._protected()
        leaky = human_chrome_profile().derive(cdp_runtime_leak=True)
        result = _visit(network, leaky)
        assert "SECRET-CONTENT" not in result.final_response.body
        detections = [d.signal for v in protection.verdict_log for d in v.detections]
        assert "cdp-runtime-leak" in detections

    def test_vm_timing_detected(self):
        network, protection = self._protected()
        vm = human_chrome_profile().derive(vm_timing_quantization=True)
        result = _visit(network, vm)
        detections = [d.signal for v in protection.verdict_log for d in v.detections]
        assert "vm-timing" in detections


class TestAnonWaf:
    def _protected(self):
        network, site = _network_with("<html><body><p>WAF-PROTECTED</p></body></html>")
        waf = AnonWafProtection(site)
        return network, waf

    def test_human_passes_and_logged(self):
        network, waf = self._protected()
        result = _visit(network, human_chrome_profile())
        assert "WAF-PROTECTED" in result.final_response.body
        assert waf.human_visits()

    def test_interception_quirk_blocked_at_network_layer(self):
        network, waf = self._protected()
        quirky = human_chrome_profile().derive(interception_cache_quirk=True)
        result = _visit(network, quirky)
        assert result.final_response.status == 403
        detections = [d.signal for v in waf.bot_visits() for d in v.detections]
        assert "interception-cache-headers" in detections

    def test_non_browser_tls_blocked(self):
        network, waf = self._protected()
        scripted = human_chrome_profile().derive(tls_fingerprint="python-requests")
        result = _visit(network, scripted)
        assert result.final_response.status == 403

    def test_no_mouse_behaviour_blocked_at_sensor(self):
        network, waf = self._protected()
        still = human_chrome_profile().derive(generates_mouse_movement=False)
        result = _visit(network, still)
        assert "WAF-PROTECTED" not in result.final_response.body
        sensor_verdicts = [v for v in waf.verdict_log if v.stage == "sensor"]
        assert sensor_verdicts and not sensor_verdicts[0].classified_as == "human"


class TestRecaptcha:
    def test_clean_client_high_score(self):
        service = RecaptchaService()
        score, detections = service.score(
            {"webdriver": False, "userAgent": "Chrome/120", "plugins": 3, "hasChrome": True,
             "mouseMoves": 5, "trustedMoves": 5},
            ClientContext(),
        )
        assert score >= 0.8 and not detections

    def test_bot_low_score(self):
        service = RecaptchaService()
        score, detections = service.score(
            {"webdriver": True, "userAgent": "HeadlessChrome", "plugins": 0, "hasChrome": False,
             "mouseMoves": 0, "trustedMoves": 0},
            ClientContext(known_scanner=True),
        )
        assert score <= 0.2 and detections

    def test_embedded_snippet_scores_in_browser(self):
        network, site = _network_with(
            "<html><head><script>"
            + RecaptchaService.embed_snippet()
            + "</script></head><body></body></html>"
        )
        service = RecaptchaService()
        service.install(network)
        result = _visit(network, human_chrome_profile())
        assert result.final_session.window.get("__recaptcha_score") >= 0.8
        assert service.score_log
