"""Graceful shutdown: drain on SIGINT, survive SIGKILL, resume exactly.

These tests drive the real CLI in a subprocess (signals delivered to a
live process, not simulated), then finish the run in-process and compare
against an uninterrupted baseline:

- first SIGINT: workers finish their in-flight messages, the checkpoint
  flushes, the manifest lands as ``status: interrupted``, and the exit
  code is 130;
- SIGKILL of the whole process group (no chance to clean up): the
  checkpoint may carry a torn tail but nothing worse;
- in both cases a bare ``resume`` completes the run with records
  byte-identical to a never-interrupted one, on both executors.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.runner import CheckpointStore

SEED, SCALE = 31, 0.06
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def baseline_export(tmp_path_factory):
    """Records of the uninterrupted run, exported once."""
    path = tmp_path_factory.mktemp("baseline") / "run.json"
    assert main(["run", "--scale", str(SCALE), "--seed", str(SEED),
                 "--export", str(path)]) == 0
    return json.loads(path.read_text())["records"]


def _launch(checkpoint, executor: str):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "run",
         "--scale", str(SCALE), "--seed", str(SEED),
         "--jobs", "2", "--executor", executor,
         "--checkpoint", str(checkpoint)],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,  # its own process group, killable as one
    )


def _wait_for_records(checkpoint, minimum: int, timeout: float = 120.0) -> int:
    """Block until ``records.jsonl`` holds >= minimum lines."""
    records = checkpoint / "records.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if records.exists():
            lines = records.read_text().count("\n")
            if lines >= minimum:
                return lines
        time.sleep(0.05)
    raise AssertionError(f"no {minimum} durable records within {timeout}s")


def _resume_and_export(checkpoint, tmp_path):
    out = tmp_path / "resumed.json"
    assert main(["resume", str(checkpoint), "--export", str(out)]) == 0
    return json.loads(out.read_text())["records"]


@pytest.mark.parametrize("executor", ["process", "thread"])
class TestSigintDrain:
    def test_sigint_drains_then_resume_is_byte_identical(
        self, tmp_path, executor, baseline_export, capsys
    ):
        checkpoint = tmp_path / "ckpt"
        proc = _launch(checkpoint, executor)
        try:
            _wait_for_records(checkpoint, minimum=2)
            proc.send_signal(signal.SIGINT)
            output = proc.communicate(timeout=120)[0]
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)

        if proc.returncode == 0:
            pytest.skip("run finished before the signal landed")
        assert proc.returncode == 130, output
        assert "Drain requested" in output
        assert "Interrupted:" in output
        assert "resume" in output

        # The drain left a *consistent* checkpoint: CRC-clean lines and
        # an 'interrupted' manifest that already counts them.
        store = CheckpointStore(checkpoint)
        scan = store.scan()
        assert scan.issues == []
        manifest = store.read_manifest()
        assert manifest.status == "interrupted"
        assert manifest.completed == len(scan.indices)
        assert manifest.completed < manifest.total_messages

        resumed = _resume_and_export(checkpoint, tmp_path)
        capsys.readouterr()
        assert json.dumps(resumed) == json.dumps(baseline_export)


@pytest.mark.parametrize("executor", ["process", "thread"])
class TestSigkillResume:
    def test_sigkill_then_resume_is_byte_identical(
        self, tmp_path, executor, baseline_export, capsys
    ):
        checkpoint = tmp_path / "ckpt"
        proc = _launch(checkpoint, executor)
        try:
            _wait_for_records(checkpoint, minimum=2)
        finally:
            # No warning, no cleanup: the whole process group dies now.
            os.killpg(proc.pid, signal.SIGKILL)
            proc.communicate(timeout=120)

        # At worst the kill tore the line being appended; fsck agrees
        # the checkpoint is otherwise intact.
        store = CheckpointStore(checkpoint)
        assert store.scan().corruption == []
        assert main(["fsck", str(checkpoint)]) == 0
        capsys.readouterr()

        resumed = _resume_and_export(checkpoint, tmp_path)
        capsys.readouterr()
        assert json.dumps(resumed) == json.dumps(baseline_export)
