"""Crawler tests: Table I reproduction and NotABot ablation."""

import pytest

from repro.crawlers.assessment import (
    TABLE1_CRAWLERS,
    assess_all_crawlers,
    assess_crawler,
    run_anonwaf_test,
    run_botd_test,
    run_turnstile_test,
)
from repro.crawlers.notabot import (
    NOTABOT_KNOCKOUTS,
    notabot_profile,
    notabot_profile_without,
)
from repro.crawlers.profiles import CRAWLER_PROFILES, UNDETECTED_CHROMEDRIVER_HEADLESS, crawler_profile

#: The paper's Table I (pass = True), blank cells read as pass.
PAPER_TABLE1 = {
    "kangooroo": (False, False, False),
    "lacus": (True, False, False),
    "puppeteer-stealth": (True, False, False),
    "selenium-stealth": (False, False, False),
    "undetected-chromedriver": (True, False, True),
    "nodriver": (True, True, True),
    "selenium-driverless": (True, True, True),
    "notabot": (True, True, True),
}


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.crawler: row for row in assess_all_crawlers(seed=7)}

    @pytest.mark.parametrize("crawler", TABLE1_CRAWLERS)
    def test_matches_paper(self, rows, crawler):
        row = rows[crawler]
        expected = PAPER_TABLE1[crawler]
        assert (row.passes_botd, row.passes_turnstile, row.passes_anonwaf) == expected

    def test_exactly_three_pass_all(self, rows):
        """"Only three out of eight crawlers, including NotABot, were able
        to bypass all the bot detection tools"."""
        passing = [name for name, row in rows.items() if row.passes_all]
        assert sorted(passing) == ["nodriver", "notabot", "selenium-driverless"]

    def test_deterministic_across_seeds(self):
        a = assess_crawler("notabot", seed=1)
        b = assess_crawler("notabot", seed=99)
        assert (a.passes_botd, a.passes_turnstile, a.passes_anonwaf) == (
            b.passes_botd,
            b.passes_turnstile,
            b.passes_anonwaf,
        )

    def test_unknown_crawler_rejected(self):
        with pytest.raises(KeyError):
            crawler_profile("nonexistent")


class TestUndetectedChromedriverFootnote:
    def test_headless_variant_fails_botd(self):
        """Table I footnote: BotD passes "only when used in non-headless mode"."""
        assert run_botd_test(CRAWLER_PROFILES["undetected-chromedriver"])
        assert not run_botd_test(UNDETECTED_CHROMEDRIVER_HEADLESS)


class TestNotABotAblation:
    """Knocking out any counter-measure re-exposes a detection signal."""

    def test_full_profile_passes_everything(self):
        profile = notabot_profile()
        assert run_botd_test(profile)
        assert run_turnstile_test(profile)
        assert run_anonwaf_test(profile)[0]

    def test_automation_flag_knockout(self):
        profile = notabot_profile_without("no-automation-flag-scrub")
        assert not run_botd_test(profile)
        assert not run_turnstile_test(profile)
        assert not run_anonwaf_test(profile)[0]

    def test_headless_knockout(self):
        profile = notabot_profile_without("headless-mode")
        assert not run_botd_test(profile)
        assert not run_turnstile_test(profile)

    def test_interception_knockout_only_waf(self):
        profile = notabot_profile_without("interception-enabled")
        assert run_botd_test(profile)
        assert run_turnstile_test(profile)  # Turnstile ignores headers
        assert not run_anonwaf_test(profile)[0]

    def test_mouse_knockout(self):
        profile = notabot_profile_without("no-fake-mouse")
        assert run_botd_test(profile)  # BotD has no behavioural check
        assert not run_turnstile_test(profile)
        assert not run_anonwaf_test(profile)[0]

    def test_vm_knockout_only_turnstile(self):
        profile = notabot_profile_without("virtual-machine")
        assert run_botd_test(profile)
        assert not run_turnstile_test(profile)
        assert run_anonwaf_test(profile)[0]

    def test_datacenter_ip_knockout(self):
        profile = notabot_profile_without("datacenter-ip")
        assert not run_anonwaf_test(profile)[0]

    def test_unknown_knockout_rejected(self):
        with pytest.raises(KeyError):
            notabot_profile_without("warp-drive")

    def test_every_knockout_is_detected_somewhere(self):
        for name in NOTABOT_KNOCKOUTS:
            if name == "full":
                continue
            profile = notabot_profile_without(name)
            results = (
                run_botd_test(profile),
                run_turnstile_test(profile),
                run_anonwaf_test(profile)[0],
            )
            assert not all(results), f"knockout {name} went undetected"
