"""Perceptual-hash tests: robustness, sensitivity, and the hue-rotate evasion."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.effects import add_gaussian_noise, crop_border, hue_rotate, overlay_text
from repro.imaging.image import Image
from repro.imaging.phash import HASH_BITS, dhash, hamming_distance, phash
from repro.imaging.render import render_lines


def _page_like(text_lines, bg=(244, 246, 248)):
    base = render_lines(text_lines, scale=2, margin=6, bg=bg)
    page = Image.new(max(200, base.width), max(150, base.height + 40), bg)
    page.fill_rect(0, 0, page.width, 24, (20, 60, 120))
    page.paste(base, 0, 30)
    return page


class TestHashBasics:
    def test_hash_is_64_bits(self):
        image = _page_like(["SIGN IN"])
        assert 0 <= phash(image) < 2**HASH_BITS
        assert 0 <= dhash(image) < 2**HASH_BITS

    def test_identical_images_zero_distance(self):
        a = _page_like(["LOGIN PAGE"])
        b = _page_like(["LOGIN PAGE"])
        assert hamming_distance(phash(a), phash(b)) == 0
        assert hamming_distance(dhash(a), dhash(b)) == 0

    def test_different_layouts_large_distance(self):
        a = _page_like(["CORPORATE LOGIN", "EMAIL", "PASSWORD"])
        b = Image.new(200, 150, (30, 30, 30))
        b.fill_rect(20, 100, 160, 30, (240, 240, 240))
        assert hamming_distance(phash(a), phash(b)) > 10

    def test_hamming_distance_symmetric(self):
        a, b = phash(_page_like(["A"])), phash(_page_like(["B B B"]))
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestRobustness:
    """The paper: "robust against small alterations in the images, such
    as scaling, cropping, or noise"."""

    def test_scaling_invariance(self):
        image = _page_like(["ACCOUNT PORTAL", "EMAIL", "PASSWORD"])
        scaled = image.resize(int(image.width * 1.5), int(image.height * 1.5))
        assert hamming_distance(phash(image), phash(scaled)) <= 6
        assert hamming_distance(dhash(image), dhash(scaled)) <= 6

    def test_noise_invariance(self):
        image = _page_like(["ACCOUNT PORTAL"])
        noisy = add_gaussian_noise(image, 12.0, random.Random(3))
        assert hamming_distance(phash(image), phash(noisy)) <= 6
        assert hamming_distance(dhash(image), dhash(noisy)) <= 6

    def test_small_crop_invariance(self):
        image = _page_like(["ACCOUNT PORTAL", "EMAIL"])
        cropped = crop_border(image, 2)
        assert hamming_distance(phash(image), phash(cropped)) <= 8

    def test_small_overlay_tolerated(self):
        image = _page_like(["ACCOUNT PORTAL", "EMAIL", "PASSWORD"])
        stamped = overlay_text(image, "victim@corp.example", 10, image.height - 16)
        assert hamming_distance(phash(image), phash(stamped)) <= 8


class TestHueRotateEvasion:
    """Section V-C: hue-rotate(4deg) "is not efficient against CrawlerBox
    [...] because we employ fuzzy hashes which primarily work on
    grayscale information"."""

    def test_hue_rotation_does_not_change_phash(self):
        image = _page_like(["SIGN IN TO CONTINUE", "EMAIL", "PASSWORD"])
        rotated = hue_rotate(image, 4.0)
        assert rotated != image  # the pixels did change ...
        assert hamming_distance(phash(image), phash(rotated)) <= 2  # ... the hash did not

    def test_hue_rotation_does_not_change_dhash(self):
        image = _page_like(["SIGN IN TO CONTINUE"])
        rotated = hue_rotate(image, 4.0)
        assert hamming_distance(dhash(image), dhash(rotated)) <= 2

    def test_larger_rotations_also_survive(self):
        image = _page_like(["SIGN IN", "EMAIL"])
        for degrees in (10.0, 45.0, -4.0):
            rotated = hue_rotate(image, degrees)
            assert hamming_distance(phash(image), phash(rotated)) <= 4, degrees

    def test_hue_rotate_zero_is_near_identity(self):
        image = _page_like(["X"])
        assert hamming_distance(phash(image), phash(hue_rotate(image, 0.0))) == 0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    degrees=st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
)
def test_hue_rotation_hash_invariance_property(seed, degrees):
    """Hue rotation preserves both hashes on luminance-structured images.

    Real login pages have genuine luminance structure (dark text, light
    backgrounds).  On *isoluminant* color boundaries a hue rotation can
    flip the contrast polarity and with it the hash — so the generator
    enforces a minimum luminance separation, matching the domain the
    paper's claim applies to.
    """

    def luminance(color):
        return 0.299 * color[0] + 0.587 * color[1] + 0.114 * color[2]

    rng = random.Random(seed)
    background = (rng.randrange(256), rng.randrange(256), rng.randrange(256))
    foreground = (rng.randrange(256), rng.randrange(256), rng.randrange(256))
    while abs(luminance(foreground) - luminance(background)) < 40:
        foreground = (rng.randrange(256), rng.randrange(256), rng.randrange(256))
    image = Image.new(64, 48, background)
    image.fill_rect(8, 8, 30, 20, foreground)
    rotated = hue_rotate(image, degrees)
    assert hamming_distance(phash(image), phash(rotated)) <= 6
    assert hamming_distance(dhash(image), dhash(rotated)) <= 6


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=2**64 - 1))
def test_hamming_distance_is_metric_like(a, b):
    assert hamming_distance(a, a) == 0
    assert hamming_distance(a, b) == hamming_distance(b, a)
    assert 0 <= hamming_distance(a, b) <= 64
