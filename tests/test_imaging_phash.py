"""Perceptual-hash tests: robustness, sensitivity, and the hue-rotate evasion."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.fft import dctn

from repro.imaging.effects import add_gaussian_noise, crop_border, hue_rotate, overlay_text
from repro.imaging.image import Image
from repro.imaging.phash import HASH_BITS, _resize_gray, dhash, hamming_distance, phash
from repro.imaging.render import render_lines


def _page_like(text_lines, bg=(244, 246, 248)):
    base = render_lines(text_lines, scale=2, margin=6, bg=bg)
    page = Image.new(max(200, base.width), max(150, base.height + 40), bg)
    page.fill_rect(0, 0, page.width, 24, (20, 60, 120))
    page.paste(base, 0, 30)
    return page


class TestHashBasics:
    def test_hash_is_64_bits(self):
        image = _page_like(["SIGN IN"])
        assert 0 <= phash(image) < 2**HASH_BITS
        assert 0 <= dhash(image) < 2**HASH_BITS

    def test_identical_images_zero_distance(self):
        a = _page_like(["LOGIN PAGE"])
        b = _page_like(["LOGIN PAGE"])
        assert hamming_distance(phash(a), phash(b)) == 0
        assert hamming_distance(dhash(a), dhash(b)) == 0

    def test_different_layouts_large_distance(self):
        a = _page_like(["CORPORATE LOGIN", "EMAIL", "PASSWORD"])
        b = Image.new(200, 150, (30, 30, 30))
        b.fill_rect(20, 100, 160, 30, (240, 240, 240))
        assert hamming_distance(phash(a), phash(b)) > 10

    def test_hamming_distance_symmetric(self):
        a, b = phash(_page_like(["A"])), phash(_page_like(["B B B"]))
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestRobustness:
    """The paper: "robust against small alterations in the images, such
    as scaling, cropping, or noise"."""

    def test_scaling_invariance(self):
        image = _page_like(["ACCOUNT PORTAL", "EMAIL", "PASSWORD"])
        scaled = image.resize(int(image.width * 1.5), int(image.height * 1.5))
        assert hamming_distance(phash(image), phash(scaled)) <= 6
        assert hamming_distance(dhash(image), dhash(scaled)) <= 6

    def test_noise_invariance(self):
        image = _page_like(["ACCOUNT PORTAL"])
        noisy = add_gaussian_noise(image, 12.0, random.Random(3))
        assert hamming_distance(phash(image), phash(noisy)) <= 6
        assert hamming_distance(dhash(image), dhash(noisy)) <= 6

    def test_small_crop_invariance(self):
        image = _page_like(["ACCOUNT PORTAL", "EMAIL"])
        cropped = crop_border(image, 2)
        assert hamming_distance(phash(image), phash(cropped)) <= 8

    def test_small_overlay_tolerated(self):
        image = _page_like(["ACCOUNT PORTAL", "EMAIL", "PASSWORD"])
        stamped = overlay_text(image, "victim@corp.example", 10, image.height - 16)
        assert hamming_distance(phash(image), phash(stamped)) <= 8


class TestHueRotateEvasion:
    """Section V-C: hue-rotate(4deg) "is not efficient against CrawlerBox
    [...] because we employ fuzzy hashes which primarily work on
    grayscale information"."""

    def test_hue_rotation_does_not_change_phash(self):
        image = _page_like(["SIGN IN TO CONTINUE", "EMAIL", "PASSWORD"])
        rotated = hue_rotate(image, 4.0)
        assert rotated != image  # the pixels did change ...
        assert hamming_distance(phash(image), phash(rotated)) <= 2  # ... the hash did not

    def test_hue_rotation_does_not_change_dhash(self):
        image = _page_like(["SIGN IN TO CONTINUE"])
        rotated = hue_rotate(image, 4.0)
        assert hamming_distance(dhash(image), dhash(rotated)) <= 2

    def test_larger_rotations_also_survive(self):
        image = _page_like(["SIGN IN", "EMAIL"])
        for degrees in (10.0, 45.0, -4.0):
            rotated = hue_rotate(image, degrees)
            assert hamming_distance(phash(image), phash(rotated)) <= 4, degrees

    def test_hue_rotate_zero_is_near_identity(self):
        image = _page_like(["X"])
        assert hamming_distance(phash(image), phash(hue_rotate(image, 0.0))) == 0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    degrees=st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
)
def test_hue_rotation_hash_invariance_property(seed, degrees):
    """Hue rotation preserves both hashes on luminance-structured images.

    Real login pages have genuine luminance structure (dark text, light
    backgrounds).  On *isoluminant* color boundaries a hue rotation can
    flip the contrast polarity and with it the hash — so the generator
    enforces a minimum luminance separation, matching the domain the
    paper's claim applies to.
    """

    def luminance(color):
        return 0.299 * color[0] + 0.587 * color[1] + 0.114 * color[2]

    rng = random.Random(seed)
    background = (rng.randrange(256), rng.randrange(256), rng.randrange(256))
    foreground = (rng.randrange(256), rng.randrange(256), rng.randrange(256))
    while abs(luminance(foreground) - luminance(background)) < 40:
        foreground = (rng.randrange(256), rng.randrange(256), rng.randrange(256))
    image = Image.new(64, 48, background)
    image.fill_rect(8, 8, 30, 20, foreground)
    rotated = hue_rotate(image, degrees)
    assert hamming_distance(phash(image), phash(rotated)) <= 6
    assert hamming_distance(dhash(image), dhash(rotated)) <= 6


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=2**64 - 1))
def test_hamming_distance_is_metric_like(a, b):
    assert hamming_distance(a, a) == 0
    assert hamming_distance(a, b) == hamming_distance(b, a)
    assert 0 <= hamming_distance(a, b) <= 64


# ----------------------------------------------------------------------
# Vectorized fast path == naive reference, bit for bit
# ----------------------------------------------------------------------
def _resize_gray_reference(image, width, height):
    """Per-block double loop over the same exact-integer definition.

    Integer per-mille BT.601 luminance summed per block, divided once:
    exact in int64, so the vectorized ``np.add.reduceat`` path must
    reproduce it bit for bit — not merely within float tolerance.
    """
    pixels = image.pixels
    y_edges = np.linspace(0, pixels.shape[0], height + 1).astype(int)
    x_edges = np.linspace(0, pixels.shape[1], width + 1).astype(int)
    out = np.zeros((height, width))
    for row in range(height):
        y0 = int(y_edges[row])
        y1 = max(int(y_edges[row + 1]), y0 + 1)
        for col in range(width):
            x0 = int(x_edges[col])
            x1 = max(int(x_edges[col + 1]), x0 + 1)
            total = 0
            for y in range(y0, y1):
                for x in range(x0, x1):
                    r, g, b = (int(v) for v in pixels[y, x][:3])
                    total += 299 * r + 587 * g + 114 * b
            out[row, col] = total / ((y1 - y0) * (x1 - x0) * 1000.0)
    return out


def _bits_to_int_reference(bits):
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def _phash_reference(image):
    small = _resize_gray_reference(image, 32, 32)
    spectrum = dctn(small, norm="ortho")
    block = spectrum[:8, :8].copy()
    median = float(np.median(block.flatten()[1:]))
    return _bits_to_int_reference((block.flatten() > median).astype(np.uint8))


def _dhash_reference(image):
    small = _resize_gray_reference(image, 9, 8)
    bits = ((small[:, 1:] - small[:, :-1]) > 1.0).astype(np.uint8).flatten()
    return _bits_to_int_reference(bits)


def _synthetic_images():
    rng = random.Random(2024)
    flat = Image.new(64, 48, (128, 128, 128))
    noise = Image.new(40, 40, (0, 0, 0))
    noise.pixels = np.array(
        [[[rng.randrange(256) for _ in range(3)] for _ in range(40)] for _ in range(40)],
        dtype=noise.pixels.dtype,
    )
    h_gradient = Image.new(100, 30, (0, 0, 0))
    for x in range(100):
        h_gradient.fill_rect(x, 0, 1, 30, (int(255 * x / 99),) * 3)
    v_gradient = Image.new(30, 100, (0, 0, 0))
    for y in range(100):
        v_gradient.fill_rect(0, y, 30, 1, (0, int(255 * y / 99), 200))
    page = _page_like(["REFERENCE LOGIN", "EMAIL", "PASSWORD"])
    tiny = Image.new(5, 4, (200, 40, 90))  # smaller than the 32x32 grid: upscale path
    tiny.fill_rect(1, 1, 2, 2, (10, 220, 30))
    odd = Image.new(37, 53, (250, 250, 245))  # block edges that do not divide evenly
    odd.fill_rect(5, 7, 20, 30, (12, 34, 56))
    return {
        "flat": flat, "noise": noise, "h_gradient": h_gradient,
        "v_gradient": v_gradient, "page": page, "tiny": tiny, "odd": odd,
    }


class TestVectorizedBitIdentity:
    """The reduceat/packbits fast path vs a four-deep python loop."""

    @pytest.mark.parametrize("name", list(_synthetic_images()))
    def test_resize_gray_exact(self, name):
        image = _synthetic_images()[name]
        for width, height in ((32, 32), (9, 8), (3, 7)):
            fast = _resize_gray(image, width, height)
            reference = _resize_gray_reference(image, width, height)
            assert np.array_equal(fast, reference), (name, width, height)

    @pytest.mark.parametrize("name", list(_synthetic_images()))
    def test_phash_bit_identical(self, name):
        image = _synthetic_images()[name]
        assert phash(image) == _phash_reference(image), name

    @pytest.mark.parametrize("name", list(_synthetic_images()))
    def test_dhash_bit_identical(self, name):
        image = _synthetic_images()[name]
        assert dhash(image) == _dhash_reference(image), name
