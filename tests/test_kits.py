"""Phishing-kit tests: deployments, cloaks, lures, C2 behaviour."""

import random

import pytest

from repro.browser.browser import Browser
from repro.browser.profile import (
    datacenter_scanner_profile,
    human_chrome_profile,
    mobile_phone_profile,
)
from repro.crawlers.notabot import NotABot
from repro.kits.attachment import (
    build_download_lure,
    build_html_attachment_message,
    build_zip_hta_message,
    deploy_download_site,
)
from repro.kits.brands import COMPANY_BRANDS, host_legitimate_portals
from repro.kits.credential import CredentialKit, CredentialKitOptions
from repro.kits.fraud import build_fraud_message
from repro.kits.interaction import build_interaction_message, deploy_interaction_site
from repro.kits.lures import build_credential_lure
from repro.mail.parser import EmailParser
from repro.web.network import Network


@pytest.fixture()
def network():
    net = Network()
    net.install_ip_services()
    host_legitimate_portals(net)
    return net


def _deploy(network, options, brand=COMPANY_BRANDS[0], domain="phish-kit.example"):
    kit = CredentialKit(brand, options)
    return kit.deploy(network, domain, ip="185.1.1.1", cert_issued_at=0.0)


def _human_visit(network, url, seed=5):
    browser = Browser(network, human_chrome_profile(), rng=random.Random(seed), timestamp=50.0)
    return browser.visit(url)


class TestCredentialKit:
    def test_token_flow_reveals_form_to_victim(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        url = deployment.register_victim("ana.martin@corp.amatravel.example", "tok42")
        result = _human_visit(network, url)
        session = result.final_session
        assert session.elements["content"].get("style").get("display") == "block"

    def test_missing_token_gets_decoy(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        deployment.register_victim("v@corp.example", "tok42")
        result = _human_visit(network, f"https://{deployment.domain}/")
        assert "under construction" in result.final_response.body

    def test_cloud_scanner_blocked_when_configured(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=True))
        url = deployment.register_victim("v@corp.example", "tok1")
        browser = Browser(network, datacenter_scanner_profile(), rng=random.Random(1), timestamp=50.0)
        result = browser.visit(url)
        assert "under construction" in result.final_response.body

    def test_credentials_harvested_via_collect(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        url = deployment.register_victim("v@corp.example", "tok9")
        browser = Browser(network, human_chrome_profile(), rng=random.Random(2), timestamp=50.0)
        browser.visit(url)
        # Simulate the victim submitting the form.
        from repro.web.urls import parse_url

        browser.subrequest("POST", parse_url(f"https://{deployment.domain}/collect"),
                           body='{"email": "v@corp.example", "password": "hunter2"}')
        assert deployment.harvested_credentials
        assert deployment.harvested_credentials[0]["password"] == "hunter2"

    def test_victim_check_gates_on_database(self, network):
        options = CredentialKitOptions(victim_check_variant="a", block_cloud_ips=False)
        deployment = _deploy(network, options)
        url = deployment.register_victim("known@corp.amatravel.example", "tokA")
        result = _human_visit(network, url)
        assert result.final_session.elements["content"].get("style").get("display") == "block"

    def test_victim_check_rejects_unknown_email(self, network):
        import base64

        options = CredentialKitOptions(victim_check_variant="a", block_cloud_ips=False)
        deployment = _deploy(network, options)
        deployment.register_victim("known@corp.example", "tokA")
        encoded = base64.b64encode(b"stranger@other.example").decode()
        url = f"https://{deployment.domain}/tokA#e={encoded}"
        result = _human_visit(network, url)
        # Redirected to the decoy instead of revealing.
        assert result.url_chain[-1] != url or result.final_session.elements["content"].get("style").get("display") != "block"

    def test_hue_rotate_kit_applies_filter(self, network):
        options = CredentialKitOptions(hue_rotate=True, block_cloud_ips=False)
        deployment = _deploy(network, options)
        url = deployment.register_victim("v@corp.example", "tokH")
        signals = _human_visit(network, url).final_session.signals()
        assert signals.hue_rotation_deg == 4.0

    def test_console_hijack_kit(self, network):
        options = CredentialKitOptions(console_hijack=True, block_cloud_ips=False)
        deployment = _deploy(network, options)
        url = deployment.register_victim("v@corp.example", "tokC")
        assert _human_visit(network, url).final_session.signals().console_hijacked

    def test_ip_exfiltration_reaches_c2(self, network):
        options = CredentialKitOptions(ip_exfiltration="httpbin+ipapi", block_cloud_ips=False)
        deployment = _deploy(network, options)
        url = deployment.register_victim("v@corp.example", "tokE")
        result = _human_visit(network, url)
        assert deployment.exfiltrated_client_data
        exfiltrated = deployment.exfiltrated_client_data[0]
        assert exfiltrated["ip"] == human_chrome_profile().ip
        assert "country" in exfiltrated
        ajax_targets = [call.url for call in result.final_session.ajax_log]
        assert any("httpbin.org" in u for u in ajax_targets)
        assert any("ipapi.co" in u for u in ajax_targets)

    def test_turnstile_kit_clears_for_stealth_crawler(self, network):
        options = CredentialKitOptions(use_turnstile=True, block_cloud_ips=False)
        deployment = _deploy(network, options)
        url = deployment.register_victim("v@corp.example", "tokT")
        crawler = NotABot(network, rng=random.Random(3))
        result = crawler.crawl_url(url, timestamp=50.0)
        assert result.final_session.elements["content"].get("style").get("display") == "block"

    def test_otp_gate_page(self, network):
        options = CredentialKitOptions(otp_gate=True, block_cloud_ips=False, tokenized_urls=False)
        deployment = _deploy(network, options)
        result = _human_visit(network, f"https://{deployment.domain}/view")
        assert "one-time password" in result.final_session.parsed.text.lower()

    def test_mobile_only_kit(self, network):
        options = CredentialKitOptions(mobile_only=True, tokenized_urls=False, error_on_deny=True, block_cloud_ips=False)
        deployment = _deploy(network, options)
        desktop = _human_visit(network, f"https://{deployment.domain}/x")
        assert desktop.final_response.status >= 400
        mobile_browser = Browser(network, mobile_phone_profile(), rng=random.Random(4), timestamp=50.0)
        mobile = mobile_browser.visit(f"https://{deployment.domain}/x")
        assert mobile.final_response.status == 200


class TestLures:
    def test_link_lure_contains_tokenized_url(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        message = build_credential_lure(
            deployment, "v@corp.example", "tokL", 10.0, random.Random(1), embed_as="link"
        )
        report = EmailParser().parse(message)
        assert any("tokL" in url for url in report.unique_urls())

    def test_qr_lure_decodes(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        message = build_credential_lure(
            deployment, "v@corp.example", "tokQ", 10.0, random.Random(2), embed_as="qr"
        )
        report = EmailParser().parse(message)
        assert any("tokQ" in url for url in report.unique_urls())
        assert report.qr_payloads

    def test_faulty_qr_lure_defeats_strict_parser(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        message = build_credential_lure(
            deployment, "v@corp.example", "tokF", 10.0, random.Random(3), embed_as="faulty_qr"
        )
        assert not any("tokF" in u for u in EmailParser(lenient_qr=False).parse(message).unique_urls())
        assert any("tokF" in u for u in EmailParser(lenient_qr=True).parse(message).unique_urls())

    def test_pdf_lure_extractable_both_strategies(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        for seed in range(4):  # half carry an embedded QR as well
            message = build_credential_lure(
                deployment, "v@corp.example", f"tokp{seed}", 10.0, random.Random(seed),
                embed_as="pdf",
            )
            report = EmailParser().parse(message)
            assert any(f"tokp{seed}" in url for url in report.unique_urls())
            methods = {item.method for item in report.urls}
            assert "pdf-annotation" in methods and "pdf-text" in methods

    def test_image_text_lure_needs_ocr(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        message = build_credential_lure(
            deployment, "v@corp.example", "toki1", 10.0, random.Random(5), embed_as="image_text"
        )
        report = EmailParser().parse(message)
        ocr_urls = [item.url for item in report.urls if item.method == "ocr"]
        assert any("toki1" in url for url in ocr_urls)
        # Without image scanning, the URL is invisible.
        from repro.mail.message import ContentType

        stripped = [p for p in message.parts if not p.content_type.startswith("image/")]
        message.parts = stripped
        assert not EmailParser().parse(message).unique_urls()

    def test_noise_padding(self, network):
        deployment = _deploy(network, CredentialKitOptions(block_cloud_ips=False))
        message = build_credential_lure(
            deployment, "v@corp.example", "tokN", 10.0, random.Random(4), noise_padding=True
        )
        assert "\n" * 25 in message.body_text()


class TestOtherKits:
    def test_fraud_message_has_no_urls(self):
        message = build_fraud_message("v@corp.example", 5.0, random.Random(1))
        assert EmailParser().parse(message).unique_urls() == []
        assert "reply" in message.body_text().lower() or "respond" in message.body_text().lower()

    def test_interaction_site_kinds(self, network):
        for kind in ("dropbox-document", "gdrive-page", "classic-captcha"):
            domain = f"{kind.replace('-', '')}.example"
            deploy_interaction_site(network, domain, "185.2.2.2", kind, 0.0)
            result = _human_visit(network, f"https://{domain}/")
            assert result.final_response.status == 200

    def test_interaction_message(self):
        message = build_interaction_message(
            "v@corp.example", 5.0, "https://share.example/doc", "dropbox-document", random.Random(1)
        )
        assert "https://share.example/doc" in EmailParser().parse(message).unique_urls()

    def test_download_site_serves_zip(self, network):
        deploy_download_site(network, "dl.example", "185.3.3.3", "evil-js.example", 0.0, random.Random(1))
        result = _human_visit(network, "https://dl.example/x.zip")
        assert result.final_response.content_type == "application/zip"
        assert getattr(result.final_response, "archive", None) is not None

    def test_zip_hta_message_parses(self):
        message = build_zip_hta_message("v@corp.example", 5.0, random.Random(1), "evil-js.example")
        report = EmailParser().parse(message)
        assert report.hta_files
        assert any("evil-js.example" in url for url in report.unique_urls())

    def test_local_html_attachment(self):
        message = build_html_attachment_message("v@corp.example", 5.0, random.Random(2), local_loading=True)
        report = EmailParser().parse(message)
        assert report.html_attachment_paths

    def test_redirect_html_attachment_hides_url_statically(self):
        message = build_html_attachment_message(
            "v@corp.example", 5.0, random.Random(3), local_loading=False,
            landing_url="https://landing.example/token",
        )
        report = EmailParser().parse(message)
        # The landing URL is base64-obfuscated: static parsing misses it.
        assert "https://landing.example/token" not in report.unique_urls()
        assert report.html_attachment_paths
