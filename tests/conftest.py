"""Shared fixtures: a small generated world and its analyzed records.

Scale 0.06 keeps the full generate+analyze cycle around a few seconds
while exercising every kit family and evasion feature at least once.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CrawlerBox
from repro.dataset import CorpusGenerator


TEST_SCALE = 0.15
TEST_SEED = 2024


@pytest.fixture(scope="session")
def small_corpus():
    return CorpusGenerator(seed=TEST_SEED, scale=TEST_SCALE).generate()


@pytest.fixture(scope="session")
def crawlerbox(small_corpus):
    return CrawlerBox.for_world(small_corpus.world)


@pytest.fixture(scope="session")
def analyzed_records(small_corpus, crawlerbox):
    return crawlerbox.analyze_corpus(small_corpus.messages)


@pytest.fixture()
def rng():
    return random.Random(1234)
