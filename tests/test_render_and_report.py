"""Tests for page rendering (visual specs) and key-findings reporting."""

import pytest

from repro.browser.render import render_visual
from repro.core.outcomes import MessageCategory
from repro.core.report import summarize
from repro.imaging.phash import dhash, hamming_distance, phash
from repro.kits.brands import COMMODITY_BRANDS, COMPANY_BRANDS, brand_by_name
from repro.web.site import VisualSpec, benign_decoy_page


class TestRenderVisual:
    def test_deterministic(self):
        spec = COMPANY_BRANDS[0].spec
        assert render_visual(spec) == render_visual(spec)

    def test_layout_variants_differ_structurally(self):
        base = VisualSpec(brand="X", title="Sign in", layout_variant=0)
        shifted = VisualSpec(brand="X", title="Sign in", layout_variant=5)
        a, b = render_visual(base), render_visual(shifted)
        assert hamming_distance(phash(a), phash(b)) + hamming_distance(dhash(a), dhash(b)) > 8

    def test_all_brand_pairs_are_separable(self):
        """No two portals hash within the classifier threshold of each other."""
        brands = list(COMPANY_BRANDS) + [brand for brand, _ in COMMODITY_BRANDS]
        renders = [(brand.name, render_visual(brand.spec)) for brand in brands]
        for i, (name_a, image_a) in enumerate(renders):
            for name_b, image_b in renders[i + 1 :]:
                p_distance = hamming_distance(phash(image_a), phash(image_b))
                d_distance = hamming_distance(dhash(image_a), dhash(image_b))
                assert max(p_distance, d_distance) > 10, (name_a, name_b)

    def test_overlay_text_changes_pixels_not_hash_class(self):
        spec = COMPANY_BRANDS[0].spec
        plain = render_visual(spec)
        stamped = render_visual(spec, overlay_text="victim@corp.example")
        assert plain != stamped
        assert hamming_distance(phash(plain), phash(stamped)) <= 10

    def test_hue_rotation_in_spec(self):
        spec = COMPANY_BRANDS[0].spec.with_hue_rotation(4.0)
        rotated = render_visual(spec)
        plain = render_visual(COMPANY_BRANDS[0].spec)
        assert rotated != plain
        assert hamming_distance(phash(rotated), phash(plain)) <= 2

    def test_logo_text_rendered(self):
        with_logo = render_visual(VisualSpec(brand="B", logo_text="BRAND"))
        without = render_visual(VisualSpec(brand="B"))
        assert with_logo != without

    def test_decoy_page_renders(self):
        page = benign_decoy_page("Nothing here")
        image = render_visual(page.visual)
        assert image.width > 0

    def test_brand_lookup(self):
        assert brand_by_name("Amatravel").login_domain == "login.amatravel.example"
        assert brand_by_name("DocuSign").name == "DocuSign"
        with pytest.raises(KeyError):
            brand_by_name("Nonexistent Corp")


class TestKeyFindings:
    def test_summary_over_analyzed_corpus(self, analyzed_records):
        findings = summarize(analyzed_records)
        assert findings.total_messages == len(analyzed_records)
        assert findings.spear_fraction_of_active > 0.5
        assert findings.distinct_landing_domains > 0
        assert findings.qr_messages >= findings.faulty_qr_messages >= 1
        assert findings.local_login_form_messages >= 1

    def test_category_fraction_empty(self):
        findings = summarize([])
        assert findings.category_fraction(MessageCategory.ACTIVE_PHISHING) == 0.0
        assert findings.spear_fraction_of_active == 0.0

    def test_hotlink_subset_of_spear(self, analyzed_records):
        findings = summarize(analyzed_records)
        assert 0 < findings.hotlink_spear_messages <= findings.spear_messages
