"""The runner subsystem: queue, retry, checkpoint, stats, CorpusRunner.

The headline guarantees under test:

- parallel-equals-serial: ``jobs=4`` produces byte-identical exported
  records to ``jobs=1`` (and to the plain ``analyze_corpus`` path);
- resume-from-checkpoint skips already-analyzed indices and finishes
  with the same records as an uninterrupted run;
- transient faults retry with backoff and either recover or land on
  the dead-letter list; non-transient faults abort the run.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import CrawlerBox
from repro.core.export import export_records, record_to_dict
from repro.dataset import CorpusGenerator
from repro.runner import (
    CheckpointStore,
    CorpusRunner,
    Job,
    JobQueue,
    QueueClosed,
    RetryPolicy,
    RunManifest,
    RunningStats,
    TransientFault,
)


@pytest.fixture(scope="module")
def runner_corpus():
    return CorpusGenerator(seed=31, scale=0.02).generate()


@pytest.fixture(scope="module")
def serial_records(runner_corpus):
    box = CrawlerBox.for_world(runner_corpus.world)
    return box.analyze_corpus(runner_corpus.messages)


def _box_factory(corpus):
    return lambda worker_id: CrawlerBox.for_world(corpus.world)


# ----------------------------------------------------------------------
# JobQueue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        queue.put(Job(index=0, priority=5))
        queue.put(Job(index=1, priority=0))
        queue.put(Job(index=2, priority=5))
        queue.put(Job(index=3, priority=-1))
        order = [queue.get().index for _ in range(4)]
        assert order == [3, 1, 0, 2]

    def test_bounded_put_times_out(self):
        queue = JobQueue(maxsize=1)
        queue.put(Job(index=0))
        with pytest.raises(TimeoutError):
            queue.put(Job(index=1), timeout=0.02)

    def test_requeue_ignores_bound_and_delay_orders_delivery(self):
        queue = JobQueue(maxsize=1)
        queue.put(Job(index=0))
        queue.requeue(Job(index=1), delay=0.0)  # over capacity, must not block
        queue.requeue(Job(index=2), delay=0.05)
        assert queue.get().index in (0, 1)
        assert queue.get().index in (0, 1)
        assert queue.get().index == 2  # waits out the backoff delay

    def test_close_drains_then_signals(self):
        queue = JobQueue()
        queue.put(Job(index=0))
        queue.close()
        assert queue.get().index == 0
        assert queue.get() is None
        with pytest.raises(QueueClosed):
            queue.put(Job(index=1))

    def test_close_discard_pending(self):
        queue = JobQueue()
        queue.put(Job(index=0))
        queue.close(discard_pending=True)
        assert queue.get() is None

    def test_close_wakes_blocked_getter(self):
        queue = JobQueue()
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.get()))
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]

    def test_delayed_job_due_mid_scan_is_delivered_not_dropped(self):
        # Regression: a delayed job whose deadline passes between the
        # promotion scan and the wait computation must loop and deliver,
        # not time out — returning None there retired an idle worker
        # (and could hang the run) while work was still pending.
        clocks = iter([0.0, 0.0, 10.0, 10.0])
        queue = JobQueue(clock=lambda: next(clocks, 10.0))
        queue.requeue(Job(index=7), delay=5.0)  # clock #1: not_before = 5.0
        # get(): promote scan at t=0 (job not yet due), wait computation
        # at t=10 (wait = -5, i.e. due mid-scan), re-loop promotes at t=10.
        job = queue.get()
        assert job is not None and job.index == 7

    def test_idle_get_blocks_on_condition_until_put(self):
        # Idle workers block on the queue condition — a put must wake
        # them; no polling deadline is involved when timeout is None.
        queue = JobQueue()
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.get()))
        thread.start()
        thread.join(timeout=0.1)
        assert thread.is_alive()  # parked on the condition, not returning
        queue.put(Job(index=3))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results[0].index == 3


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        delays = [policy.backoff_delay(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounded(self, rng):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.25)
        for _ in range(50):
            delay = policy.backoff_delay(1, rng)
            assert 1.0 <= delay <= 1.25

    def test_transient_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientFault("flaky"))
        assert not policy.is_transient(ValueError("bug"))


# ----------------------------------------------------------------------
# RunningStats
# ----------------------------------------------------------------------
class TestRunningStats:
    def test_incremental_equals_batch(self, serial_records):
        incremental = RunningStats()
        for record in serial_records:
            incremental.update(record)
        assert incremental.as_dict() == RunningStats.from_records(serial_records).as_dict()

    def test_merge_of_partials_equals_whole(self, serial_records):
        half = len(serial_records) // 2
        left = RunningStats.from_records(serial_records[:half])
        right = RunningStats.from_records(serial_records[half:])
        assert left.merge(right).as_dict() == RunningStats.from_records(serial_records).as_dict()

    def test_agrees_with_batch_figures(self, serial_records):
        from repro.analysis import figures

        stats = RunningStats.from_records(serial_records)
        breakdown = figures.outcome_breakdown(serial_records)
        assert stats.analyzed == breakdown.total
        assert dict(stats.categories) == dict(breakdown.counts)
        evasion = figures.section5c_evasion(serial_records)
        assert stats.turnstile == evasion.turnstile
        assert stats.recaptcha == evasion.recaptcha
        assert stats.faulty_qr == evasion.faulty_qr


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_append_load_roundtrip_sorted(self, tmp_path, serial_records):
        store = CheckpointStore(tmp_path / "ckpt")
        for record in reversed(serial_records[:5]):  # completion order != index order
            store.append(record)
        store.close()
        loaded = store.load_records()
        assert [record.message_index for record in loaded] == [0, 1, 2, 3, 4]
        assert [record_to_dict(r) for r in loaded] == [
            record_to_dict(r) for r in serial_records[:5]
        ]
        assert store.completed_indices() == {0, 1, 2, 3, 4}

    def test_torn_final_line_ignored(self, tmp_path, serial_records):
        store = CheckpointStore(tmp_path / "ckpt")
        for record in serial_records[:3]:
            store.append(record)
        store.close()
        with store.records_path.open("a") as handle:
            handle.write('{"message_index": 99, "truncated')  # killed mid-write
        assert store.completed_indices() == {0, 1, 2}

    def test_duplicate_append_last_wins(self, tmp_path, serial_records):
        store = CheckpointStore(tmp_path / "ckpt")
        store.append(serial_records[0])
        store.append(serial_records[0])
        store.close()
        assert len(store.load_records()) == 1

    def test_manifest_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        manifest = RunManifest(
            seed=5, scale=0.03, jobs=4, total_messages=290, completed=144,
            status="running", dead_letters=[{"index": 7, "attempts": 3, "error": "x"}],
            stats={"analyzed": 144},
        )
        store.write_manifest(manifest)
        assert store.read_manifest() == manifest

    def test_unsupported_manifest_version(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.manifest_path.write_text('{"manifest_version": 99}')
        with pytest.raises(ValueError, match="manifest version"):
            store.read_manifest()


# ----------------------------------------------------------------------
# CorpusRunner: determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_parallel_equals_serial(self, runner_corpus, serial_records):
        runner = CorpusRunner(_box_factory(runner_corpus), jobs=4)
        result = runner.run(runner_corpus.messages)
        serial_doc = json.dumps(export_records(serial_records))
        parallel_doc = json.dumps(export_records(result.records))
        assert parallel_doc == serial_doc

    def test_single_message_in_isolation_matches_corpus_run(
        self, runner_corpus, serial_records
    ):
        index = len(serial_records) // 2
        box = CrawlerBox.for_world(runner_corpus.world)
        record = box.analyze(runner_corpus.messages[index], message_index=index)
        assert record_to_dict(record) == record_to_dict(serial_records[index])

    def test_pipeline_owned_crawler_does_not_accumulate(self, runner_corpus):
        box = CrawlerBox.for_world(runner_corpus.world)
        box.analyze_corpus(runner_corpus.messages[:10])
        assert box.crawler.crawled == []

    def test_standalone_crawler_retains_results(self, runner_corpus):
        from repro.crawlers.notabot import NotABot

        crawler = NotABot(runner_corpus.world.network)
        assert crawler.retain_results
        crawler.crawl_url("https://nonexistent-domain.example/")
        assert len(crawler.crawled) == 1


# ----------------------------------------------------------------------
# CorpusRunner: resume
# ----------------------------------------------------------------------
class TestResume:
    def test_resume_skips_completed_indices(self, tmp_path, runner_corpus, serial_records):
        store = CheckpointStore(tmp_path / "ckpt")
        prefix = len(serial_records) // 3
        for record in serial_records[:prefix]:  # the "interrupted" run's output
            store.append(record)
        store.close()

        analyzed: list[int] = []
        runner = CorpusRunner(
            _box_factory(runner_corpus),
            jobs=2,
            checkpoint=CheckpointStore(tmp_path / "ckpt"),
            fault_injector=lambda index, attempts: analyzed.append(index),
        )
        result = runner.run(runner_corpus.messages)

        assert result.resumed_indices == tuple(range(prefix))
        assert not (set(analyzed) & set(range(prefix)))  # skipped, not re-run
        assert [record_to_dict(r) for r in result.records] == [
            record_to_dict(r) for r in serial_records
        ]
        assert result.stats.analyzed == len(serial_records)

        manifest = store.read_manifest()
        assert manifest.status == "complete"
        assert manifest.completed == len(serial_records)

    def test_completed_checkpoint_resumes_to_noop(self, tmp_path, runner_corpus, serial_records):
        store = CheckpointStore(tmp_path / "ckpt")
        for record in serial_records:
            store.append(record)
        store.close()
        runner = CorpusRunner(
            _box_factory(runner_corpus),
            checkpoint=CheckpointStore(tmp_path / "ckpt"),
            fault_injector=lambda index, attempts: pytest.fail("nothing should run"),
        )
        result = runner.run(runner_corpus.messages)
        assert len(result.resumed_indices) == len(serial_records)


# ----------------------------------------------------------------------
# CorpusRunner: retry and dead letters
# ----------------------------------------------------------------------
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01, jitter=0.0)


class TestRetries:
    def test_twice_failing_job_recovers(self, runner_corpus, serial_records):
        target = 3
        failures: list[int] = []

        def flaky(index, attempts):
            if index == target and attempts < 2:
                failures.append(attempts)
                raise TransientFault(f"flaky attempt {attempts}")

        runner = CorpusRunner(
            _box_factory(runner_corpus), jobs=2, retry_policy=FAST_RETRY,
            fault_injector=flaky,
        )
        result = runner.run(runner_corpus.messages[:8])
        assert failures == [0, 1]
        assert result.stats.retried == 2
        assert not result.dead_letters
        assert [r.message_index for r in result.records] == list(range(8))
        # The retried record is STILL byte-identical to the serial run.
        assert record_to_dict(result.records[target]) == record_to_dict(serial_records[target])

    def test_always_failing_job_dead_letters(self, runner_corpus):
        def doomed(index, attempts):
            if index == 2:
                raise TransientFault("permanently flaky")

        runner = CorpusRunner(
            _box_factory(runner_corpus), jobs=2, retry_policy=FAST_RETRY,
            fault_injector=doomed,
        )
        result = runner.run(runner_corpus.messages[:6])
        assert len(result.dead_letters) == 1
        letter = result.dead_letters[0]
        assert letter.index == 2
        assert letter.attempts == FAST_RETRY.max_attempts
        assert "permanently flaky" in letter.error
        assert result.stats.dead_lettered == 1
        assert [r.message_index for r in result.records] == [0, 1, 3, 4, 5]

    def test_non_transient_fault_aborts_run(self, runner_corpus):
        def buggy(index, attempts):
            if index == 1:
                raise ValueError("pipeline bug")

        runner = CorpusRunner(
            _box_factory(runner_corpus), jobs=2, retry_policy=FAST_RETRY,
            fault_injector=buggy,
        )
        with pytest.raises(ValueError, match="pipeline bug"):
            runner.run(runner_corpus.messages[:6])

    def test_jobs_must_be_positive(self, runner_corpus):
        with pytest.raises(ValueError):
            CorpusRunner(_box_factory(runner_corpus), jobs=0)
