"""The record data plane: worker-side serialization end to end.

The process backend's workers render each record to its final
checkpoint wire form — canonical JSON line plus CRC32 suffix — and
ship batches of those bytes in length-prefixed frames; the parent
appends bytes it never re-serializes, and the serve daemon splices the
same bytes into verdict responses.  These tests pin the invariants
that make that safe:

- a worker-written checkpoint line is byte-identical to what the
  parent would have serialized from the same record (so `repro fsck`,
  `repro compact`, resume, and salvage all keep working unchanged);
- the frame codec round-trips exactly;
- the warm pool hands back byte-identical records when a second run
  reuses parked workers;
- fault injection and the hostile corpus produce byte-identical
  checkpoint files on both backends;
- worker-merged stats match parent-side accounting.
"""

from __future__ import annotations

import json

import pytest

from repro.core import CrawlerBox
from repro.core.export import (
    WireRecord,
    export_records,
    record_to_dict,
    record_to_line,
    record_to_wire,
)
from repro.dataset import CorpusGenerator
from repro.runner import (
    CheckpointStore,
    CorpusRunner,
    RunnerConfig,
    encode_record_line,
    parse_record_line,
)
from repro.runner import pool as pool_module
from repro.runner.pool import drop_warm_pool, pack_frame, unpack_frame

SEED, SCALE = 31, 0.02
CONFIG = RunnerConfig(seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def plane_corpus():
    return CorpusGenerator(seed=SEED, scale=SCALE).generate()


@pytest.fixture(scope="module")
def serial_records(plane_corpus):
    box = CrawlerBox.for_world(plane_corpus.world)
    return box.analyze_corpus(plane_corpus.messages)


def _runner(corpus, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("executor", "process")
    kwargs.setdefault("config", CONFIG)
    return CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(corpus.world), **kwargs
    )


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip(self):
        entries = [(0, b"abc"), (7, b""), (123_456, b"x" * 10_000)]
        assert unpack_frame(pack_frame(entries)) == entries

    def test_empty_frame(self):
        assert unpack_frame(pack_frame([])) == []

    def test_wire_bytes_pass_through_verbatim(self, serial_records):
        wires = [
            (record.message_index, record_to_wire(record))
            for record in serial_records[:5]
        ]
        assert unpack_frame(pack_frame(wires)) == wires


# ----------------------------------------------------------------------
# Worker-serialized checkpoint lines
# ----------------------------------------------------------------------
class TestWorkerSerializedCheckpoint:
    def test_lines_byte_identical_to_parent_serialization(
        self, tmp_path, plane_corpus, serial_records
    ):
        sample = plane_corpus.messages[:12]
        store = CheckpointStore(tmp_path / "ckpt")
        result = _runner(plane_corpus, checkpoint=store).run(sample)
        assert not result.dead_letters
        lines = (tmp_path / "ckpt" / "records.jsonl").read_text().splitlines()
        expected = {
            record.message_index: encode_record_line(record_to_line(record))
            for record in serial_records[:12]
        }
        assert len(lines) == len(sample)
        for line in lines:
            data, issue = parse_record_line(line)
            assert issue is None  # CRC-clean as written
            assert line == expected[data["message_index"]]

    def test_fsck_clean_over_worker_written_lines(self, tmp_path, plane_corpus):
        from repro.cli import main

        store = CheckpointStore(tmp_path / "ckpt")
        result = _runner(plane_corpus, checkpoint=store).run(
            plane_corpus.messages[:8]
        )
        assert not result.dead_letters
        assert main(["fsck", str(tmp_path / "ckpt")]) == 0

    def test_compact_idempotent_over_worker_written_lines(
        self, tmp_path, plane_corpus, serial_records
    ):
        from repro.cli import main

        store = CheckpointStore(tmp_path / "ckpt")
        result = _runner(plane_corpus, checkpoint=store).run(
            plane_corpus.messages[:10]
        )
        assert not result.dead_letters
        records_path = tmp_path / "ckpt" / "records.jsonl"
        assert main(["compact", str(tmp_path / "ckpt")]) == 0
        once = records_path.read_bytes()
        assert main(["compact", str(tmp_path / "ckpt")]) == 0
        assert records_path.read_bytes() == once
        # Compaction orders by index: the file is now exactly the
        # parent-side serialization of the serial records.
        expected = b"".join(
            encode_record_line(record_to_line(record)).encode("utf-8") + b"\n"
            for record in serial_records[:10]
        )
        assert once == expected
        assert main(["fsck", str(tmp_path / "ckpt")]) == 0

    def test_append_wire_strips_crc_for_plain_stores(self, tmp_path, serial_records):
        record = serial_records[0]
        store = CheckpointStore(tmp_path / "plain", crc=False)
        store.append_wire(record_to_wire(record))
        store.close()
        line = (tmp_path / "plain" / "records.jsonl").read_text().rstrip("\n")
        assert "\t#crc32=" not in line
        assert line == record_to_line(record)


# ----------------------------------------------------------------------
# Warm pool reuse
# ----------------------------------------------------------------------
class TestWarmPoolReuse:
    def test_second_run_reuses_workers_byte_identically(
        self, plane_corpus, serial_records
    ):
        drop_warm_pool()
        sample = plane_corpus.messages[:10]
        first = _runner(plane_corpus).run(sample)
        parked = pool_module._warm_pool
        assert parked is not None  # the pool survived the run
        pids = {process.pid for process in parked.workers.values()}
        second = _runner(plane_corpus).run(sample)
        reused = pool_module._warm_pool
        assert reused is not None
        assert {process.pid for process in reused.workers.values()} == pids
        expected = json.dumps(export_records(serial_records[:10]))
        assert json.dumps(export_records(first.records)) == expected
        assert json.dumps(export_records(second.records)) == expected

    def test_mismatched_config_rebuilds_the_pool(self, plane_corpus):
        drop_warm_pool()
        _runner(plane_corpus).run(plane_corpus.messages[:4])
        parked = pool_module._warm_pool
        assert parked is not None
        pids = {process.pid for process in parked.workers.values()}
        other = _runner(
            plane_corpus,
            config=RunnerConfig(seed=SEED, scale=SCALE, corpus_prefix=4),
        )
        result = other.run(plane_corpus.messages[:4])
        assert not result.dead_letters
        rebuilt = pool_module._warm_pool
        assert rebuilt is not None
        assert {process.pid for process in rebuilt.workers.values()}.isdisjoint(pids)


# ----------------------------------------------------------------------
# Stats come back from worker shards
# ----------------------------------------------------------------------
class TestMergedStats:
    def test_process_stats_match_thread_stats(self, plane_corpus):
        sample = plane_corpus.messages[:12]
        process = _runner(plane_corpus).run(sample)
        thread = _runner(plane_corpus, executor="thread").run(sample)
        process_stats = process.stats.as_dict()
        thread_stats = thread.stats.as_dict()
        for stats in (process_stats, thread_stats):
            stats.pop("stage_seconds", None)
            stats.pop("stages", None)
        assert process_stats == thread_stats
        assert process.stats.analyzed == len(sample)


# ----------------------------------------------------------------------
# Byte-identity under fire, pinned at the checkpoint-line level
# ----------------------------------------------------------------------
class TestCheckpointBytesUnderFire:
    def test_fault_injection_identical_lines_across_backends(self, tmp_path):
        from repro.web.faults import FaultEngine, fault_profile

        # A dedicated corpus: installing faults mutates the shared
        # world's network, so the module fixture must stay pristine.
        corpus = CorpusGenerator(seed=SEED, scale=SCALE).generate()
        corpus.world.network.install_faults(
            FaultEngine(fault_profile("hostile"), seed=99)
        )
        config = RunnerConfig(seed=SEED, scale=SCALE, faults="hostile", fault_seed=99)
        messages = corpus.messages[:8]
        outputs = {}
        for executor in ("thread", "process"):
            store = CheckpointStore(tmp_path / executor)
            result = _runner(
                corpus, executor=executor, config=config, checkpoint=store
            ).run(messages)
            assert not result.dead_letters
            assert all(r.fault_telemetry is not None for r in result.records)
            store.compact()
            outputs[executor] = (tmp_path / executor / "records.jsonl").read_bytes()
        assert outputs["thread"] == outputs["process"]

    def test_hostile_corpus_identical_lines_across_backends(
        self, tmp_path, plane_corpus
    ):
        from repro.core import PipelineConfig
        from repro.dataset.hostile import hostile_corpus

        budget = 500_000
        config = RunnerConfig(
            seed=SEED, scale=SCALE, corpus_prefix=4, hostile="7:1", budget=budget
        )
        pipeline = PipelineConfig(budget_work_units=budget)
        messages = plane_corpus.messages[:4] + hostile_corpus(seed=7, copies=1)
        outputs = {}
        for executor in ("thread", "process"):
            store = CheckpointStore(tmp_path / executor)
            runner = CorpusRunner(
                box_factory=lambda worker_id: CrawlerBox.for_world(
                    plane_corpus.world, config=pipeline
                ),
                jobs=2,
                executor=executor,
                config=config,
                checkpoint=store,
            )
            result = runner.run(messages)
            assert not result.dead_letters
            store.compact()
            outputs[executor] = (tmp_path / executor / "records.jsonl").read_bytes()
        assert outputs["thread"] == outputs["process"]

        from repro.cli import main

        assert main(["fsck", str(tmp_path / "process")]) == 0


# ----------------------------------------------------------------------
# The verdict splice
# ----------------------------------------------------------------------
class TestVerdictSplice:
    def test_spliced_verdict_decodes_like_the_encoded_one(self, serial_records):
        from repro.serve.protocol import encode_verdict_line

        record = serial_records[0]
        wire = WireRecord(record_to_wire(record))
        line = encode_verdict_line("client-17", record.message_index, wire.payload)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert json.loads(line) == {
            "op": "verdict",
            "id": "client-17",
            "message_index": record.message_index,
            "record": record_to_dict(record),
        }

    def test_wire_record_lazy_parse_matches_original(self, serial_records):
        record = serial_records[1]
        wire = WireRecord(record_to_wire(record))
        assert record_to_dict(wire.record) == record_to_dict(record)
