"""PDF substrate and enrichment-source tests."""

import pytest

from repro.enrichment.enricher import Enricher
from repro.enrichment.shodan import ServiceBanner, ShodanDatabase
from repro.enrichment.umbrella import PassiveDnsDatabase
from repro.imaging.ocr import ocr_image
from repro.pdfdoc import PdfDocument, PdfPage
from repro.web.network import Network
from repro.web.tls import TLSCertificate
from repro.web.whois import WhoisRecord


class TestPdfDocument:
    def test_text_and_annotations(self):
        document = PdfDocument(title="Invoice")
        document.add_page(PdfPage(text_lines=["LINE ONE"], uri_annotations=["https://a.example/1"]))
        document.add_page(PdfPage(text_lines=["LINE TWO"], uri_annotations=["https://b.example/2"]))
        assert document.all_text() == "LINE ONE\nLINE TWO"
        assert document.all_uri_annotations() == ["https://a.example/1", "https://b.example/2"]

    def test_rasterized_page_is_ocr_readable(self):
        page = PdfPage(text_lines=["PAY AT HTTPS://PDF.EXAMPLE/X"])
        raster = page.rasterize(scale=2)
        assert "HTTPS://PDF.EXAMPLE/X" in ocr_image(raster).text

    def test_raster_includes_images(self):
        from repro.imaging.image import Image

        page = PdfPage(text_lines=["HEADER"], images=[Image.new(40, 40, (0, 0, 0))])
        raster = page.rasterize()
        assert raster.height > 40

    def test_magic_bytes(self):
        assert PdfDocument().magic_bytes == b"%PDF-"


class TestPassiveDns:
    def test_volume_window(self):
        db = PassiveDnsDatabase()
        db.record_volume("evil.example", day=10, queries=40)
        db.record_volume("evil.example", day=11, queries=10)
        db.record_volume("evil.example", day=50, queries=999)  # outside window
        stats = db.volume_stats("evil.example", before_hour=12 * 24.0, window_days=30)
        assert stats.total == 50
        assert stats.max_daily == 40

    def test_unknown_domain(self):
        db = PassiveDnsDatabase()
        stats = db.volume_stats("ghost.example", before_hour=100.0)
        assert stats.total == 0 and stats.max_daily == 0
        assert not db.knows("ghost.example")

    def test_ingest_resolver_log(self):
        db = PassiveDnsDatabase()
        db.ingest_resolver_log([(25.0, "a.example"), (26.0, "a.example"), (30.0, "b.example")])
        stats = db.volume_stats("a.example", before_hour=48.0, window_days=2)
        assert stats.total == 2


class TestShodan:
    def test_banners(self):
        db = ShodanDatabase()
        db.add_https_host("1.2.3.4", server_software="nginx/1.24")
        banners = db.lookup("1.2.3.4")
        assert len(banners) == 2
        assert any(b.port == 443 for b in banners)
        assert db.lookup("9.9.9.9") == []


class TestEnricher:
    def test_full_join(self):
        network = Network()
        network.whois.register(WhoisRecord("evil.example", "NameCheap", created=100.0, expires=9999.0))
        network.ct_log.submit(TLSCertificate("evil.example", "LE", 400.0, 9000.0))
        passive = PassiveDnsDatabase()
        passive.record_volume("evil.example", day=20, queries=42)
        shodan = ShodanDatabase()
        shodan.add_https_host("5.5.5.5")
        enricher = Enricher(network, passive, shodan)
        record = enricher.enrich("evil.example", at_time=600.0, server_ip="5.5.5.5")
        assert record.whois.registrar == "NameCheap"
        assert record.first_cert_issued_at == 400.0
        assert record.dns_volumes.total == 42
        assert len(record.shodan_banners) == 2

    def test_subdomain_falls_back_to_registrable(self):
        network = Network()
        network.whois.register(WhoisRecord("evil.example", "GoDaddy", created=10.0, expires=9999.0))
        network.ct_log.submit(TLSCertificate("evil.example", "LE", 20.0, 9000.0, sans=("*.evil.example",)))
        enricher = Enricher(network)
        record = enricher.enrich("login.evil.example", at_time=100.0)
        assert record.registrable_domain == "evil.example"
        assert record.whois is not None
        assert record.first_cert_issued_at == 20.0

    def test_unknown_domain_graceful(self):
        record = Enricher(Network()).enrich("mystery.example", at_time=5.0)
        assert record.whois is None
        assert record.first_cert_issued_at is None
        assert record.dns_volumes is None
