"""Mail substrate tests: messages, authentication, recursive parsing."""

import random

import pytest

from repro.imaging.render import render_lines, render_text
from repro.mail.attachments import ArchiveFile, FileBlob, HtaFile
from repro.mail.auth import DomainMailPolicy, MailAuthDns, evaluate_authentication
from repro.mail.message import ContentType, EmailMessage, MessagePart
from repro.mail.parser import EmailParser
from repro.mail.textscan import extract_urls_from_markup, extract_urls_from_text, normalize_url
from repro.pdfdoc import PdfDocument, PdfPage
from repro.qr.encoder import qr_image


class TestMessageModel:
    def test_base64_transfer_encoding(self):
        part = MessagePart.text("click https://evil.example/x", base64_encode=True)
        assert "https://" not in part.content  # hidden on the wire
        assert part.decoded_text() == "click https://evil.example/x"

    def test_body_text_concatenates_text_parts(self):
        message = EmailMessage()
        message.add_part(MessagePart.text("one"))
        message.add_part(MessagePart.html("<p>ignored</p>"))
        message.add_part(MessagePart.text("two", base64_encode=True))
        assert message.body_text() == "one\ntwo"

    def test_sender_domain(self):
        assert EmailMessage(sender="a@B.Example").sender_domain == "b.example"


class TestAuthentication:
    def _dns(self):
        dns = MailAuthDns()
        dns.publish(DomainMailPolicy("vendor.example", spf_allowed_ips=frozenset({"1.2.3.4"})))
        return dns

    def test_all_pass_for_compliant_sender(self):
        message = EmailMessage(
            sender="billing@vendor.example", sending_domain="vendor.example",
            sending_ip="1.2.3.4", dkim_signed=True,
        )
        results = evaluate_authentication(message, self._dns())
        assert results.all_pass

    def test_spf_fails_for_wrong_ip(self):
        message = EmailMessage(
            sender="billing@vendor.example", sending_domain="vendor.example",
            sending_ip="9.9.9.9", dkim_signed=True,
        )
        results = evaluate_authentication(message, self._dns())
        assert results.spf == "fail"

    def test_dkim_fails_without_signature(self):
        message = EmailMessage(
            sender="billing@vendor.example", sending_domain="vendor.example",
            sending_ip="1.2.3.4", dkim_signed=False,
        )
        assert evaluate_authentication(message, self._dns()).dkim == "fail"

    def test_dmarc_requires_alignment(self):
        dns = self._dns()
        dns.publish(DomainMailPolicy("other.example", spf_allowed_ips=frozenset({"1.2.3.4"})))
        message = EmailMessage(
            sender="ceo@vendor.example", sending_domain="other.example",
            sending_ip="1.2.3.4", dkim_signed=True,
        )
        results = evaluate_authentication(message, dns)
        assert results.spf == "pass"
        assert results.dmarc == "fail"

    def test_unknown_domain_yields_none(self):
        message = EmailMessage(sender="x@stranger.example", sending_domain="stranger.example")
        results = evaluate_authentication(message, self._dns())
        assert results.spf == "none"


class TestTextScan:
    def test_extracts_and_normalizes(self):
        urls = extract_urls_from_text("go to HTTPS://Evil.Example/Path now, or http://two.example.")
        assert urls == ["https://evil.example/Path", "http://two.example"]

    def test_ignores_invalid(self):
        assert extract_urls_from_text("ftp://x.example and just text") == []

    def test_markup_attributes(self):
        urls = extract_urls_from_markup('<a href="https://a.example/1">x</a><img src="https://b.example/2"/>')
        assert urls == ["https://a.example/1", "https://b.example/2"]

    def test_dedup(self):
        assert len(extract_urls_from_text("https://a.example/x https://a.example/x")) == 1

    def test_normalize_preserves_path_case(self):
        assert normalize_url("HTTPS://A.Example/CaseSensitive") == "https://a.example/CaseSensitive"


class TestRecursiveParsing:
    def test_text_part(self):
        message = EmailMessage().add_part(MessagePart.text("visit https://a.example/x"))
        report = EmailParser().parse(message)
        assert report.unique_urls() == ["https://a.example/x"]
        assert report.urls[0].method == "text"

    def test_base64_encoded_body_decoded(self):
        message = EmailMessage().add_part(MessagePart.text("https://hidden.example/y", base64_encode=True))
        report = EmailParser().parse(message)
        assert "https://hidden.example/y" in report.unique_urls()

    def test_naive_parser_misses_base64(self):
        message = EmailMessage().add_part(MessagePart.text("https://hidden.example/y", base64_encode=True))
        report = EmailParser(decode_base64_text=False).parse(message)
        assert report.unique_urls() == []

    def test_html_static_and_queued_for_dynamic(self):
        message = EmailMessage().add_part(MessagePart.html('<a href="https://h.example/z">z</a>'))
        report = EmailParser().parse(message)
        assert report.unique_urls() == ["https://h.example/z"]
        assert len(report.html_documents) == 1

    def test_html_attachment_flagged(self):
        message = EmailMessage().add_part(
            MessagePart(ContentType.HTML, "<html></html>", filename="invoice.html", inline=False)
        )
        report = EmailParser().parse(message)
        assert report.html_attachment_paths == {"part[0]"}

    def test_image_ocr(self):
        image = render_lines(["PAY NOW AT", "HTTPS://OCR.EXAMPLE/PAY"], scale=2)
        message = EmailMessage().add_part(MessagePart(ContentType.IMAGE, image))
        report = EmailParser().parse(message)
        assert "https://ocr.example/PAY".lower() in [u.lower() for u in report.unique_urls()]
        assert report.urls[0].method == "ocr"

    def test_image_qr(self):
        message = EmailMessage().add_part(
            MessagePart(ContentType.IMAGE, qr_image("https://qr.example/t", scale=3))
        )
        report = EmailParser().parse(message)
        assert "https://qr.example/t" in report.unique_urls()
        assert report.qr_payloads[0][1] == "https://qr.example/t"

    def test_faulty_qr_lenient_vs_strict(self):
        message = EmailMessage().add_part(
            MessagePart(ContentType.IMAGE, qr_image("xxx https://quish.example/1", scale=3))
        )
        lenient = EmailParser(lenient_qr=True).parse(message)
        strict = EmailParser(lenient_qr=False).parse(message)
        assert "https://quish.example/1" in lenient.unique_urls()
        assert "https://quish.example/1" not in strict.unique_urls()
        # Both still observe the payload itself.
        assert strict.qr_payloads

    def test_pdf_both_strategies(self):
        pdf = PdfDocument().add_page(
            PdfPage(
                text_lines=["INVOICE AT HTTPS://PDF.EXAMPLE/INV"],
                uri_annotations=["https://annot.example/link"],
                images=[qr_image("https://pdfqr.example/q", scale=3)],
            )
        )
        message = EmailMessage().add_part(MessagePart(ContentType.PDF, pdf, filename="i.pdf"))
        report = EmailParser().parse(message)
        methods = {item.method for item in report.urls}
        assert {"pdf-annotation", "pdf-text", "ocr", "qr"} <= methods
        assert "https://pdfqr.example/q" in report.unique_urls()

    def test_zip_recursion(self):
        archive = ArchiveFile().add("page.html", '<html><a href="https://zip.example/h">x</a></html>')
        archive.add("note.txt", "see https://txt.example/n")
        message = EmailMessage().add_part(MessagePart(ContentType.ZIP, archive, filename="a.zip"))
        report = EmailParser().parse(message)
        assert {"https://zip.example/h", "https://txt.example/n"} <= set(report.unique_urls())

    def test_hta_recorded_never_executed(self):
        hta = HtaFile("drop.hta", "https://evil-js.example/payload.js")
        archive = ArchiveFile().add("drop.hta", hta)
        message = EmailMessage().add_part(MessagePart(ContentType.ZIP, archive))
        report = EmailParser().parse(message)
        assert report.hta_files[0][1].remote_script_url == "https://evil-js.example/payload.js"
        assert any(item.method == "hta-reference" for item in report.urls)

    def test_eml_recursion(self):
        inner = EmailMessage().add_part(MessagePart.text("inner https://nested.example/n"))
        outer = EmailMessage().add_part(MessagePart(ContentType.EML, inner, filename="fwd.eml"))
        report = EmailParser().parse(outer)
        assert report.unique_urls() == ["https://nested.example/n"]
        assert "eml:" in report.urls[0].part_path

    def test_octet_stream_magic_sniffing(self):
        pdf = PdfDocument().add_page(PdfPage(text_lines=["GO HTTPS://BLOB.EXAMPLE/B"]))
        blob = FileBlob.wrapping("mystery.bin", pdf)
        assert blob.sniffed_kind() == "pdf"
        message = EmailMessage().add_part(MessagePart(ContentType.OCTET_STREAM, blob))
        report = EmailParser().parse(message)
        assert "https://blob.example/B".lower() in [u.lower() for u in report.unique_urls()]

    def test_unknown_blob_skipped(self):
        blob = FileBlob("junk.bin", b"\x00\x01\x02", payload=b"gibberish")
        message = EmailMessage().add_part(MessagePart(ContentType.OCTET_STREAM, blob))
        assert EmailParser().parse(message).unique_urls() == []

    def test_deep_nesting(self):
        leaf = EmailMessage().add_part(MessagePart.text("bottom https://deep.example/d"))
        archive = ArchiveFile().add("fwd.eml", leaf)
        inner = EmailMessage().add_part(MessagePart(ContentType.ZIP, archive))
        outer = EmailMessage().add_part(MessagePart(ContentType.EML, inner))
        report = EmailParser().parse(outer)
        assert report.unique_urls() == ["https://deep.example/d"]

    def test_provenance_paths(self):
        message = EmailMessage()
        message.add_part(MessagePart.text("https://first.example/1"))
        message.add_part(MessagePart.text("https://second.example/2"))
        report = EmailParser().parse(message)
        assert report.urls[0].part_path == "part[0]"
        assert report.urls[1].part_path == "part[1]"
