"""Unit tests for the individual kit script snippets (Section V-C)."""

import random

import pytest

from repro.browser.browser import Browser
from repro.browser.profile import datacenter_scanner_profile, human_chrome_profile
from repro.js import Interpreter
from repro.kits import scripts
from repro.web.network import Network
from repro.web.site import Page, Website
from repro.web.tls import TLSCertificate


def _run_in_page(page_scripts, profile=None, extra_body=""):
    network = Network()
    site = Website("snippet.example", ip="2.2.2.2")
    script_tags = "\n".join(f"<script>{source}</script>" for source in page_scripts)
    site.add_page(
        "/",
        Page(html=f"<html><head>{script_tags}</head><body>{extra_body}</body></html>"),
    )
    network.host_website(site)
    network.issue_certificate(TLSCertificate("snippet.example", "CA", float("-inf"), float("inf")))
    browser = Browser(network, profile or human_chrome_profile(), rng=random.Random(3))
    return browser.visit("https://snippet.example/").final_session


class TestConsoleHijack:
    def test_suppresses_logging(self):
        session = _run_in_page([scripts.console_hijack_script(), "console.log('secret')"])
        assert session.interp.console_log == []
        assert session.signals().console_hijacked

    def test_without_hijack_logs_flow(self):
        session = _run_in_page(["console.log('visible')"])
        assert ("log", "visible") in session.interp.console_log
        assert not session.signals().console_hijacked


class TestDebuggerTimer:
    def test_fires_every_timer_round(self):
        session = _run_in_page([scripts.debugger_timer_script()])
        signals = session.signals()
        assert signals.uses_debugger_timer
        assert signals.debugger_hits >= 1


class TestContextMenuBlock:
    def test_registers_blocking_listeners(self):
        session = _run_in_page([scripts.context_menu_block_script()])
        signals = session.signals()
        assert signals.context_menu_blocked
        assert signals.devtools_keys_blocked


class TestUaTimezoneCloak:
    def test_reveals_for_human(self):
        cloak = scripts.ua_timezone_language_cloak(
            "window.__state = 'revealed';", "https://decoy-landing.example/"
        )
        session = _run_in_page([cloak])
        assert session.window.get("__state") == "revealed"

    def test_redirects_scanner(self):
        cloak = scripts.ua_timezone_language_cloak(
            "window.__state = 'revealed';", "https://decoy-landing.example/"
        )
        session = _run_in_page([cloak], profile=datacenter_scanner_profile())
        assert session.window.get("__state") != "revealed"
        assert session.navigation_target == "https://decoy-landing.example/"


class TestFingerprintLibraryGate:
    def test_human_passes_and_gets_visitor_id(self):
        gate = scripts.fingerprint_library_gate(
            "window.__state = 'in';", "https://decoy-landing.example/"
        )
        session = _run_in_page([gate])
        assert session.window.get("__state") == "in"
        assert session.window.get("__fpjs_visitor_id")

    def test_visitor_id_is_stable_per_profile(self):
        gate = scripts.fingerprint_library_gate("var x=1;", "https://d.example/")
        first = _run_in_page([gate]).window.get("__fpjs_visitor_id")
        second = _run_in_page([gate]).window.get("__fpjs_visitor_id")
        assert first == second

    def test_scanner_redirected(self):
        gate = scripts.fingerprint_library_gate(
            "window.__state = 'in';", "https://decoy-landing.example/"
        )
        session = _run_in_page([gate], profile=datacenter_scanner_profile())
        assert session.navigation_target == "https://decoy-landing.example/"


class TestHueRotateScript:
    def test_is_base64_dropper(self):
        source = scripts.hue_rotate_head_script(4.0)
        assert source.startswith("eval(atob(")
        assert "hue-rotate" not in source  # hidden from static inspection

    def test_applies_filter_dynamically(self):
        session = _run_in_page([scripts.hue_rotate_head_script(4.0)])
        assert session.signals().hue_rotation_deg == 4.0

    def test_custom_degrees(self):
        session = _run_in_page([scripts.hue_rotate_head_script(12.0)])
        assert session.signals().hue_rotation_deg == 12.0


class TestVictimCheckScript:
    def test_variants_are_distinct_and_deterministic(self):
        assert scripts.victim_check_script("a") == scripts.victim_check_script("a")
        assert scripts.victim_check_script("a") != scripts.victim_check_script("b")

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            scripts.victim_check_script("c")

    def test_script_is_obfuscated(self):
        source = scripts.victim_check_script("a")
        assert source.startswith("eval(atob(")
        assert "XMLHttpRequest" not in source  # only visible after decoding

    def test_console_hijack_inside(self):
        """The shared script hijacks the console, per the paper."""
        import base64
        import re

        source = scripts.victim_check_script("a")
        payload = base64.b64decode(re.search(r'atob\("([^"]+)"\)', source).group(1)).decode("latin-1")
        assert "console.log = noop" in payload
        assert "sleep" in payload


class TestIpExfiltration:
    def test_parses_and_runs(self):
        interp = Interpreter()
        # Without XHR hosts it fails at runtime, but must parse cleanly.
        source = scripts.ip_exfiltration_script("/c2/collect", use_ipapi=True)
        from repro.js.parser import parse

        parse(source)  # no SyntaxError
        source_plain = scripts.ip_exfiltration_script("/c2/collect", use_ipapi=False)
        parse(source_plain)
