"""Dataset generator tests: allocation helpers and corpus invariants."""

import random
from collections import Counter

import pytest

from repro.dataset import allocation, names
from repro.dataset.calibration import CALIBRATION, scaled
from repro.dataset.generator import CorpusGenerator, take_exact, take_until
from repro.web.urls import top_level_domain


class TestAllocationHelpers:
    def test_spear_tiers_sum(self):
        counts = allocation.expand_tiers(allocation.SPEAR_TIERS)
        assert len(counts) == 411
        assert sum(counts) == 1137
        assert max(counts) == 58

    def test_commodity_tiers_sum(self):
        counts = allocation.expand_tiers(allocation.COMMODITY_TIERS)
        assert len(counts) == 96
        assert sum(counts) == 130

    def test_monthly_quota_exact(self):
        quota = allocation.monthly_quota(100, (3, 2, 1))
        assert sum(quota) == 100
        assert quota[0] > quota[1] > quota[2]

    def test_monthly_quota_zero(self):
        assert sum(allocation.monthly_quota(0, (1, 1))) == 0

    def test_month_allocator_prefers_open_months(self):
        allocator = allocation.MonthAllocator([10, 1], 730.0, random.Random(1))
        month = allocator.take(5)
        assert month == 0
        assert allocator.remaining == [5, 1]

    def test_delivery_hour_inside_month(self):
        allocator = allocation.MonthAllocator([5, 5], 730.0, random.Random(2))
        hour = allocator.delivery_hour(1)
        assert 730.0 < hour < 1460.0

    def test_bulk_timedelta_sampling(self):
        samples = allocation.sample_bulk_timedeltas(100, 10, random.Random(3))
        assert len(samples) == 100
        tail = [a for a, _ in samples if a > 2160.0]
        assert len(tail) == 10  # exactly the forced tail
        for delta_a, delta_b in samples:
            assert delta_b < delta_a
            assert delta_b <= 1050.0

    def test_outlier_sampling_classes(self):
        fresh = allocation.sample_outlier_timedeltas("fresh-outlier", 0, random.Random(4))
        assert fresh[0] > 6552.0 and fresh[1] <= 1050.0
        compromised_old_cert = allocation.sample_outlier_timedeltas("compromised", 0, random.Random(5))
        assert compromised_old_cert[1] > 2160.0
        compromised_newer = allocation.sample_outlier_timedeltas("compromised", 7, random.Random(6))
        assert 1080.0 <= compromised_newer[1] <= 2160.0
        with pytest.raises(ValueError):
            allocation.sample_outlier_timedeltas("martian", 0, random.Random(7))

    def test_tld_labels_full_scale(self):
        labels = allocation.tld_labels(CALIBRATION, 522, random.Random(8))
        counts = Counter(labels)
        assert counts[".com"] == 262
        assert counts[".ru"] == 48
        assert counts[".dev"] == 45

    def test_tld_labels_subsampled_keeps_dominance(self):
        labels = allocation.tld_labels(CALIBRATION, 50, random.Random(9))
        counts = Counter(labels)
        assert counts.most_common(1)[0][0] == ".com"

    def test_scaled_helper(self):
        assert scaled(100, 1.0) == 100
        assert scaled(100, 0.1) == 10
        assert scaled(3, 0.1, minimum=1) == 1
        assert scaled(0, 0.1) == 0


class TestNameGenerators:
    def test_neutral_names_are_dns_safe(self, rng):
        for _ in range(50):
            name = names.neutral_domain(rng)
            assert name.replace("-", "").isalnum()

    def test_combosquatting_contains_brand(self, rng):
        assert "amatravel" in names.combosquatting_domain("amatravel", rng)

    def test_target_embedding_structure(self, rng):
        host = names.target_embedding_host("amatravel", rng)
        assert host.startswith("amatravel.")
        assert host.count(".") >= 1

    def test_homoglyph_differs_but_resembles(self, rng):
        for _ in range(20):
            fake = names.homoglyph_domain("amatravel", rng)
            assert fake != "amatravel"

    def test_keyword_stuffing_uses_keywords(self, rng):
        host = names.keyword_stuffing_domain(rng)
        parts = host.split("-")
        assert sum(1 for part in parts if part in names.PHISHY_KEYWORDS) >= 3

    def test_typosquatting_edit_distance(self, rng):
        for _ in range(20):
            fake = names.typosquatting_domain("skybooker", rng)
            assert fake != "skybooker"
            assert abs(len(fake) - len("skybooker")) <= 1

    def test_deceptive_host_dispatch(self, rng):
        for technique in names.DECEPTIVE_TECHNIQUES:
            host = names.deceptive_host(technique, "payroute", rng, ".com")
            assert host.endswith(".com")
        with pytest.raises(ValueError):
            names.deceptive_host("quantum", "x", rng, ".com")

    def test_employee_email_shape(self, rng):
        email = names.employee_email(rng, "corp.amatravel.example")
        assert email.endswith("@corp.amatravel.example")
        assert "." in email.split("@")[0]


class TestTakeHelpers:
    def _plans(self, counts):
        from repro.dataset.generator import DomainPlan
        from repro.kits.brands import COMPANY_BRANDS

        return [
            DomainPlan(host=f"d{i}.example", tld=".com", klass="fresh", role="spear",
                       brand=COMPANY_BRANDS[0], message_count=count)
            for i, count in enumerate(counts)
        ]

    def test_take_exact_finds_solution(self):
        pool = self._plans([58, 31, 15, 15, 9, 5] + [2] * 20 + [1] * 50)
        chosen = take_exact(pool, 10, 75)
        assert chosen is not None
        assert len(chosen) == 10
        assert sum(plan.message_count for plan in chosen) == 75

    def test_take_exact_infeasible_returns_none(self):
        pool = self._plans([5, 5])
        assert take_exact(pool, 3, 100) is None

    def test_take_until_reaches_target(self):
        pool = self._plans([10, 5, 3, 2, 1, 1, 1])
        chosen = take_until(pool, 17)
        assert sum(plan.message_count for plan in chosen) == 17


class TestGeneratedCorpusInvariants:
    def test_total_and_categories(self, small_corpus):
        truth = Counter(m.ground_truth.get("category") for m in small_corpus.messages)
        assert sum(truth.values()) == len(small_corpus.messages)
        # Every paper bucket is represented even at small scale.
        for category in (
            "fraud-no-resources", "credential-phishing", "error-nxdomain",
            "error-unreachable", "interaction", "download",
            "html-attachment-local", "html-attachment-redirect",
        ):
            assert truth[category] >= 1, category

    def test_messages_sorted_by_delivery(self, small_corpus):
        times = [m.delivered_at for m in small_corpus.messages]
        assert times == sorted(times)

    def test_every_message_authenticates(self, small_corpus):
        from repro.mail.auth import evaluate_authentication

        for message in small_corpus.messages[:200]:
            assert evaluate_authentication(message, small_corpus.world.mail_dns).all_pass

    def test_landing_domains_unique_hosts(self, small_corpus):
        hosts = [plan.host for plan in small_corpus.domain_plans]
        assert len(hosts) == len(set(hosts))

    def test_credential_deployments_live(self, small_corpus):
        for plan in small_corpus.domain_plans:
            assert plan.deployment is not None
            assert small_corpus.world.network.website(plan.host) is not None

    def test_whois_and_ct_registered(self, small_corpus):
        from repro.web.urls import registered_domain

        network = small_corpus.world.network
        for plan in small_corpus.domain_plans:
            assert network.whois.lookup(registered_domain(plan.host)) is not None
            assert network.ct_log.lookup(plan.host) or network.ct_log.lookup(registered_domain(plan.host))

    def test_registration_precedes_certificate(self, small_corpus):
        from repro.web.urls import registered_domain

        network = small_corpus.world.network
        for plan in small_corpus.domain_plans:
            whois = network.whois.lookup(registered_domain(plan.host))
            cert = network.ct_log.earliest_issuance(plan.host)
            if cert is None:
                cert = network.ct_log.earliest_issuance(registered_domain(plan.host))
            assert whois.created < cert

    def test_determinism(self):
        a = CorpusGenerator(seed=77, scale=0.03).generate()
        b = CorpusGenerator(seed=77, scale=0.03).generate()
        assert len(a.messages) == len(b.messages)
        assert [m.subject for m in a.messages] == [m.subject for m in b.messages]
        assert [p.host for p in a.domain_plans] == [p.host for p in b.domain_plans]

    def test_different_seeds_differ(self):
        a = CorpusGenerator(seed=1, scale=0.03).generate()
        b = CorpusGenerator(seed=2, scale=0.03).generate()
        assert [p.host for p in a.domain_plans] != [p.host for p in b.domain_plans]

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            CorpusGenerator(scale=0.0)
        with pytest.raises(ValueError):
            CorpusGenerator(scale=1.5)

    def test_tld_distribution_dominated_by_com(self, small_corpus):
        counts = Counter(top_level_domain(plan.host) for plan in small_corpus.domain_plans)
        assert counts.most_common(1)[0][0] == ".com"
