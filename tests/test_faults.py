"""Deterministic fault injection and the resilient crawl path.

The headline guarantees under test:

- every fault kind in the taxonomy is reachable and degrades into the
  browser's existing outcomes (never an uncaught exception);
- the schedule is a pure function of ``(fault_seed, host, attempt,
  epoch)``: same seed, same weather — across jobs counts and backends
  the exported records are byte-identical;
- ``--faults off`` (or no engine at all) produces byte-identical
  records to the pre-fault-engine pipeline;
- flaky-then-recovers hosts recover within the retry allowance, the
  circuit breaker bounds work spent on permanently-dead hosts, and the
  per-message retry budget caps total retries;
- a hostile full-soak run completes with zero dead letters and a
  populated FaultTelemetry on every record;
- enrichment lookups that hit a takedown degrade the enrich stage
  instead of aborting the message;
- dead letters carry the full per-attempt retry history.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.browser.browser import Browser, VisitOutcome
from repro.browser.profile import BrowserProfile
from repro.core import CrawlerBox
from repro.core.artifacts import MessageRecord
from repro.core.export import export_records, record_from_dict, record_to_dict
from repro.core.stages.builtin import EnrichStage
from repro.crawlers.base import Crawler
from repro.dataset import CorpusGenerator
from repro.enrichment.enricher import Enricher
from repro.runner import CorpusRunner, RetryPolicy, RunnerConfig, TransientFault
from repro.web.faults import (
    FAULT_PROFILES,
    FaultEngine,
    FaultProfile,
    fault_profile,
)
from repro.web.http import HttpRequest, HttpResponse
from repro.web.network import ConnectionFailed, Network
from repro.web.resilient import (
    CircuitBreaker,
    FaultTelemetry,
    ResiliencePolicy,
    ResilientFetcher,
)
from repro.web.site import Page, Website
from repro.web.tls import TLSCertificate

SEED, SCALE, FAULT_SEED = 31, 0.02, 77
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.01, jitter=0.0)


def _hostile_corpus():
    corpus = CorpusGenerator(seed=SEED, scale=SCALE).generate()
    corpus.world.network.install_faults(
        FaultEngine(fault_profile("hostile"), seed=FAULT_SEED)
    )
    return corpus


def _site_network(**profile_fields) -> Network:
    """A one-site network whose host gets the given fault rates."""
    network = Network()
    site = Website("a.example", ip="9.9.9.9")
    site.add_page("/", Page(html="<html><body>home</body></html>"))
    network.host_website(site)
    network.issue_certificate(TLSCertificate("a.example", "CA", 0.0, 1000.0))
    engine = FaultEngine(seed=3)
    engine.set_host_profile("a.example", FaultProfile(**profile_fields))
    network.install_faults(engine)
    return network


def _visit(network: Network, url: str = "https://a.example/"):
    return Browser(network, BrowserProfile(), timestamp=5.0).visit(url)


# ----------------------------------------------------------------------
# Profiles and engine basics
# ----------------------------------------------------------------------
class TestProfiles:
    def test_presets_exist(self):
        assert set(FAULT_PROFILES) == {"off", "light", "heavy", "hostile"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            fault_profile("apocalyptic")

    def test_off_profile_is_inactive(self):
        assert not fault_profile("off").active
        assert not FaultEngine(fault_profile("off"), seed=1).active

    def test_hostile_profile_is_active(self):
        assert fault_profile("hostile").active
        assert FaultEngine(fault_profile("hostile"), seed=1).active

    def test_host_override_activates_engine(self):
        engine = FaultEngine(fault_profile("off"), seed=1)
        engine.set_host_profile("Dead.Example", FaultProfile(connect_timeout=1.0))
        assert engine.active
        assert engine.profile_for("dead.EXAMPLE").connect_timeout == 1.0


class TestEngineDeterminism:
    def _transcript(self, engine: FaultEngine) -> list[str]:
        kinds = []
        for host in ("a.example", "b.example", "c.example"):
            for attempt in range(3):
                for hour in (0.0, 1.0, 24.0):
                    request = HttpRequest.get(f"https://{host}/", timestamp=hour)
                    request.fault_attempt = attempt
                    try:
                        engine.check_connection(request)
                    except Exception as exc:  # noqa: BLE001 - classifying
                        kinds.append(getattr(exc, "kind", "?"))
                    else:
                        kinds.append("-")
        return kinds

    def test_same_seed_same_weather(self):
        profile = fault_profile("hostile")
        first = self._transcript(FaultEngine(profile, seed=9))
        second = self._transcript(FaultEngine(profile, seed=9))
        assert first == second
        assert any(kind != "-" for kind in first)  # hostile actually fires

    def test_flaky_trait_is_stable_per_host(self):
        engine = FaultEngine(fault_profile("hostile"), seed=9)
        hosts = [f"host{i}.example" for i in range(64)]
        traits = [engine.flaky_dead_attempts(host) for host in hosts]
        assert traits == [engine.flaky_dead_attempts(host) for host in hosts]
        assert any(traits)  # fraction 0.30 over 64 hosts
        assert all(t <= fault_profile("hostile").flaky_max_dead_attempts for t in traits)


# ----------------------------------------------------------------------
# Every taxonomy kind degrades into a browser outcome
# ----------------------------------------------------------------------
class TestFaultKinds:
    @pytest.mark.parametrize(
        "rates, outcome, kind",
        [
            ({"nxdomain_flap": 1.0}, VisitOutcome.NXDOMAIN, "nxdomain_flap"),
            ({"dns_servfail": 1.0}, VisitOutcome.NXDOMAIN, "dns_servfail"),
            ({"connect_timeout": 1.0}, VisitOutcome.CONNECTION_FAILED, "connect_timeout"),
            ({"tls_handshake": 1.0}, VisitOutcome.TLS_ERROR, "tls_handshake"),
            ({"slow_start": 1.0}, VisitOutcome.CONNECTION_FAILED, "slow_start"),
            ({"mid_body_stall": 1.0}, VisitOutcome.CONNECTION_FAILED, "mid_body_stall"),
            ({"truncated_body": 1.0}, VisitOutcome.CONNECTION_FAILED, "truncated_body"),
            ({"http_429": 1.0}, VisitOutcome.HTTP_ERROR, "http_429"),
            ({"redirect_loop": 1.0}, VisitOutcome.REDIRECT_LOOP, "redirect_loop"),
        ],
    )
    def test_kind_reaches_outcome(self, rates, outcome, kind):
        result = _visit(_site_network(**rates))
        assert result.outcome == outcome
        assert kind in result.fault_kinds

    def test_http_5xx_statuses(self):
        result = _visit(_site_network(http_5xx=1.0))
        assert result.outcome == VisitOutcome.HTTP_ERROR
        assert result.final_response.status in (500, 502, 503)
        assert "http_5xx" in result.fault_kinds

    def test_429_carries_retry_after(self):
        result = _visit(_site_network(http_429=1.0))
        assert result.final_response.status == 429
        assert result.final_response.headers.get("Retry-After") == "30"

    def test_tls_handshake_skipped_for_plain_http(self):
        result = _visit(_site_network(tls_handshake=1.0), url="http://a.example/")
        assert result.outcome == VisitOutcome.OK
        assert not result.fault_kinds

    def test_genuine_errors_record_no_fault_kind(self):
        network = Network()  # nothing hosted, no engine
        result = _visit(network, url="https://gone.example/")
        assert result.outcome == VisitOutcome.NXDOMAIN
        assert not result.fault_kinds


# ----------------------------------------------------------------------
# The resilient fetch path
# ----------------------------------------------------------------------
class TestFlakyRecovery:
    def test_flaky_host_recovers_within_retry_allowance(self):
        network = _site_network(flaky_host_fraction=1.0)
        crawler = Crawler(network, BrowserProfile())
        telemetry = FaultTelemetry()
        fetcher = ResilientFetcher(
            fetch=lambda url, ts, attempt: crawler.crawl_url(
                url, timestamp=ts, fault_attempt=attempt
            ),
            telemetry=telemetry,
        )
        result = fetcher.fetch("https://a.example/", "a.example", 5.0)
        # Dead for its first 1-2 attempts, healthy afterwards: the default
        # 3 attempts always reach the recovery.
        assert result.outcome == VisitOutcome.OK
        assert 1 <= telemetry.retries <= 2
        assert telemetry.fault_kinds.get("flaky_host", 0) >= 1
        assert telemetry.backoff_seconds > 0.0


def _dead_result():
    return SimpleNamespace(
        outcome="connection_failed", final_response=None, fault_kinds=["connect_timeout"]
    )


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(threshold=2, probe_after=2)
        assert breaker.allow("h") == "closed"
        assert breaker.failure("h") is False
        assert breaker.failure("h") is True  # threshold reached: tripped
        assert breaker.is_open("h")
        assert breaker.allow("h") == "blocked"
        assert breaker.allow("h") == "probe"  # probe_after skips elapsed
        assert breaker.failure("h") is False  # probe failure: no re-trip
        assert breaker.allow("h") == "blocked"
        assert breaker.allow("h") == "probe"
        breaker.success("h")  # probe succeeded: closed again
        assert not breaker.is_open("h")
        assert breaker.allow("h") == "closed"

    def test_breaker_bounds_work_on_dead_host(self):
        calls = []

        def dead_fetch(url, ts, attempt):
            calls.append(url)
            return _dead_result()

        policy = ResiliencePolicy(
            max_attempts_per_request=3,
            retry_budget_per_message=100,
            breaker_threshold=3,
            breaker_probe_after=3,
        )
        telemetry = FaultTelemetry()
        fetcher = ResilientFetcher(dead_fetch, policy=policy, telemetry=telemetry)
        results = [
            fetcher.fetch(f"https://dead.example/{i}", "dead.example", 0.0)
            for i in range(10)
        ]
        # The first URL consumed the trip threshold; afterwards the open
        # breaker allows at most one probe per URL, so total fetches are
        # bounded far below 10 URLs x 3 attempts.
        assert telemetry.breaker_trips == 1
        assert len(calls) == policy.breaker_threshold + telemetry.breaker_probes
        assert len(calls) <= policy.breaker_threshold + len(results) - 1
        # Suppressed URLs surface as "no data at all" for the crawl stage.
        assert results.count(None) == telemetry.unreachable > 0

    def test_breaker_success_resets_host(self):
        outcomes = iter(["connection_failed"] * 3 + ["ok"] * 10)

        def flaky_fetch(url, ts, attempt):
            return SimpleNamespace(
                outcome=next(outcomes), final_response=None, fault_kinds=[]
            )

        policy = ResiliencePolicy(breaker_threshold=3, breaker_probe_after=1)
        telemetry = FaultTelemetry()
        fetcher = ResilientFetcher(flaky_fetch, policy=policy, telemetry=telemetry)
        first = fetcher.fetch("https://h.example/a", "h.example", 0.0)
        assert first.outcome == "connection_failed"  # exhausted 3 attempts
        assert telemetry.breaker_trips == 1
        second = fetcher.fetch("https://h.example/b", "h.example", 0.0)
        assert second.outcome == "ok"  # probe succeeded, breaker closed
        third = fetcher.fetch("https://h.example/c", "h.example", 0.0)
        assert third.outcome == "ok"
        assert telemetry.breaker_probes == 1


class TestRetryBudget:
    def test_budget_exhaustion_caps_retries(self):
        policy = ResiliencePolicy(
            max_attempts_per_request=5,
            retry_budget_per_message=3,
            breaker_threshold=100,  # keep the breaker out of the way
        )
        telemetry = FaultTelemetry()
        fetcher = ResilientFetcher(
            lambda url, ts, attempt: _dead_result(), policy=policy, telemetry=telemetry
        )
        result = fetcher.fetch("https://dead.example/", "dead.example", 0.0)
        assert result.outcome == "connection_failed"
        assert telemetry.budget_exhausted
        assert telemetry.retries == policy.retry_budget_per_message
        assert telemetry.requests_attempted == policy.retry_budget_per_message + 1


class TestRetryAfter:
    def test_retry_after_header_drives_backoff(self):
        def throttled(url, ts, attempt):
            response = HttpResponse(status=429, body="")
            response.headers.set("Retry-After", "30")
            return SimpleNamespace(
                outcome="http_error", final_response=response, fault_kinds=["http_429"]
            )

        telemetry = FaultTelemetry()
        fetcher = ResilientFetcher(throttled, telemetry=telemetry)
        fetcher.fetch("https://busy.example/", "busy.example", 0.0)
        # Two retries (default 3 attempts), both delayed by the server's
        # Retry-After instead of exponential backoff.
        assert telemetry.retries == 2
        assert telemetry.backoff_seconds == pytest.approx(60.0)

    def test_genuine_redirect_loop_is_not_retried(self):
        calls = []

        def looping(url, ts, attempt):
            calls.append(url)
            return SimpleNamespace(
                outcome="redirect_loop", final_response=None, fault_kinds=[]
            )

        fetcher = ResilientFetcher(looping)
        fetcher.fetch("https://loop.example/", "loop.example", 0.0)
        assert len(calls) == 1  # a kit's own loop is its answer


# ----------------------------------------------------------------------
# Enrichment degradation (takedown between crawl and enrich)
# ----------------------------------------------------------------------
class TestEnrichGuard:
    def _context(self, network: Network, crawl_domains: list[str]):
        record = MessageRecord(
            message_index=0, delivered_at=5.0, recipient="r@x", sender_domain="x"
        )
        record.fault_telemetry = FaultTelemetry()
        record.crawls = [
            SimpleNamespace(landing_domain=domain, server_ip="")
            for domain in crawl_domains
        ]
        return SimpleNamespace(
            config=SimpleNamespace(enrich=True),
            record=record,
            box=SimpleNamespace(enricher=Enricher(network)),
        )

    def test_dead_lookup_degrades_stage_keeps_partials(self):
        network = Network()
        engine = FaultEngine(seed=3)
        engine.set_host_profile("dead.example", FaultProfile(connect_timeout=1.0))
        network.install_faults(engine)
        ctx = self._context(network, ["alive.example", "dead.example"])
        with pytest.raises(ConnectionFailed, match="dead.example"):
            EnrichStage().run(ctx)
        # The healthy domain's enrichment survived; only the dead one is
        # missing and the telemetry ledger recorded the failure.
        assert "alive.example" in ctx.record.enrichments
        assert "dead.example" not in ctx.record.enrichments
        assert ctx.record.fault_telemetry.enrich_failures == 1
        assert ctx.record.fault_telemetry.fault_kinds.get("connect_timeout") == 1

    def test_enrich_stage_failure_marks_status_not_message(self):
        # A domain taken down between crawl and enrichment: the crawl
        # succeeded, the lookup dies, the stage degrades — the message
        # still completes with its category and partial enrichments.
        corpus = CorpusGenerator(seed=SEED, scale=0.01).generate()
        box = CrawlerBox.for_world(corpus.world)
        real_enrich = box.enricher.enrich
        dead: set[str] = set()

        def takedown_enrich(domain, at_time, server_ip=""):
            if not dead:
                dead.add(domain)  # the first domain looked up goes dark
            if domain in dead:
                raise ConnectionFailed(f"{domain}: taken down before enrichment")
            return real_enrich(domain, at_time=at_time, server_ip=server_ip)

        box.enricher.enrich = takedown_enrich
        records = box.analyze_corpus(corpus.messages[:40])
        assert len(records) == 40
        failed = [r for r in records if r.stage_status.get("enrich") == "failed"]
        assert failed  # some message landed on the dead domain
        assert all(record.category for record in records)


# ----------------------------------------------------------------------
# Telemetry serialization
# ----------------------------------------------------------------------
class TestTelemetrySerialization:
    def test_record_roundtrip_preserves_telemetry(self):
        record = MessageRecord(
            message_index=1, delivered_at=2.0, recipient="r@x", sender_domain="x"
        )
        record.fault_telemetry = FaultTelemetry(
            requests_attempted=7, retries=3, backoff_seconds=1.5, deadline_hits=1,
            breaker_trips=1, breaker_skips=2, breaker_probes=1,
            budget_exhausted=True, unreachable=1, enrich_failures=1,
            fault_kinds={"connect_timeout": 2, "http_429": 1},
        )
        clone = record_from_dict(json.loads(json.dumps(record_to_dict(record))))
        assert clone.fault_telemetry is not None
        assert clone.fault_telemetry.as_dict() == record.fault_telemetry.as_dict()

    def test_faultless_record_serializes_without_telemetry_key(self):
        record = MessageRecord(
            message_index=1, delivered_at=2.0, recipient="r@x", sender_domain="x"
        )
        assert "fault_telemetry" not in record_to_dict(record)


# ----------------------------------------------------------------------
# End to end: hostile soak, cross-backend determinism, off-identity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hostile_thread2():
    corpus = _hostile_corpus()
    runner = CorpusRunner(
        box_factory=lambda wid: CrawlerBox.for_world(corpus.world),
        jobs=2,
        executor="thread",
    )
    result = runner.run(corpus.messages)
    return corpus, result


class TestHostileSoak:
    def test_soak_degrades_instead_of_dying(self, hostile_thread2):
        corpus, result = hostile_thread2
        assert not result.dead_letters
        assert len(result.records) == len(corpus.messages)
        assert all(r.fault_telemetry is not None for r in result.records)
        assert sum(r.fault_telemetry.total_faults for r in result.records) > 0
        assert result.stats.has_fault_activity
        assert result.stats.fault_retries > 0
        faults_dict = result.stats.as_dict()["faults"]
        assert faults_dict["kinds"]  # per-kind counts surfaced

    def test_fault_report_renders(self, hostile_thread2):
        from repro.runner import format_fault_report

        _, result = hostile_thread2
        report = format_fault_report(result.stats)
        assert "fault injection:" in report
        assert "breaker trips" in report

    def test_thread_jobs1_and_process_jobs2_byte_identical(self, hostile_thread2):
        _, parallel_result = hostile_thread2
        parallel = json.dumps(export_records(parallel_result.records))

        corpus = _hostile_corpus()
        serial = CorpusRunner(
            box_factory=lambda wid: CrawlerBox.for_world(corpus.world),
            jobs=1,
            executor="thread",
        ).run(corpus.messages)
        assert json.dumps(export_records(serial.records)) == parallel

        config = RunnerConfig(seed=SEED, scale=SCALE, faults="hostile", fault_seed=FAULT_SEED)
        process = CorpusRunner(config=config, jobs=2, executor="process").run(
            corpus.messages
        )
        assert process.executor == "process"
        assert json.dumps(export_records(process.records)) == parallel


class TestFaultsOffIdentity:
    def test_off_engine_matches_no_engine_byte_for_byte(self):
        def run(install_off_engine: bool) -> str:
            corpus = CorpusGenerator(seed=SEED, scale=SCALE).generate()
            if install_off_engine:
                corpus.world.network.install_faults(
                    FaultEngine(fault_profile("off"), seed=FAULT_SEED)
                )
            box = CrawlerBox.for_world(corpus.world)
            records = box.analyze_corpus(corpus.messages[:30])
            assert all(record.fault_telemetry is None for record in records)
            return json.dumps(export_records(records))

        assert run(True) == run(False)


# ----------------------------------------------------------------------
# Dead-letter retry history (thread backend)
# ----------------------------------------------------------------------
class TestDeadLetterHistory:
    def test_dead_letter_carries_per_attempt_history(self):
        corpus = CorpusGenerator(seed=SEED, scale=0.01).generate()

        def doomed(index, attempts):
            if index == 1:
                raise TransientFault(f"flaky infra (attempt {attempts})")

        runner = CorpusRunner(
            box_factory=lambda wid: CrawlerBox.for_world(corpus.world),
            jobs=2,
            retry_policy=FAST_RETRY,
            fault_injector=doomed,
        )
        result = runner.run(corpus.messages[:4])
        assert len(result.dead_letters) == 1
        letter = result.dead_letters[0]
        assert letter.attempts == FAST_RETRY.max_attempts
        assert len(letter.history) == FAST_RETRY.max_attempts
        assert "attempt 0" in letter.history[0]
        assert "attempt 1" in letter.history[1]
        assert letter.history[-1] == letter.error
        assert letter.backoff_seconds > 0.0
        payload = letter.as_dict()
        assert payload["history"] == list(letter.history)
        assert payload["backoff_seconds"] > 0.0

    def test_clean_dead_letter_dict_keeps_legacy_keys(self):
        from repro.runner import DeadLetter

        assert set(DeadLetter(1, 2, "boom").as_dict()) == {"index", "attempts", "error"}
