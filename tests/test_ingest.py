"""Real-world .eml ingestion (the phishing_pot RFC-822 format)."""

from __future__ import annotations

import base64
import textwrap
from datetime import datetime, timezone

import pytest

from repro.mail.ingest import (
    DEFAULT_EPOCH,
    IngestError,
    ingest_directory,
    ingest_directory_report,
    ingest_eml_bytes,
    ingest_eml_file,
    ingest_eml_text,
)
from repro.mail.message import ContentType, EmailMessage
from repro.mail.parser import EmailParser


def _sample_eml(body_b64: str) -> str:
    return textwrap.dedent(f"""\
        Return-Path: <bounce@spammer.ru>
        Delivered-To: victim@corp.example
        Received: from relay.spammer.ru (relay.spammer.ru [203.0.113.9])
        \tby mx.corp.example with ESMTP id abc123
        DKIM-Signature: v=1; a=rsa-sha256; d=spammer.ru; s=sel;
        From: "IT Support" <support@spammer.ru>
        To: victim@corp.example
        Subject: Password expires today
        Date: Tue, 12 Mar 2024 10:30:00 +0000
        MIME-Version: 1.0
        Content-Type: multipart/mixed; boundary="BOUND"

        --BOUND
        Content-Type: text/plain; charset=utf-8
        Content-Transfer-Encoding: base64

        {body_b64}
        --BOUND
        Content-Type: text/html; charset=utf-8
        Content-Disposition: attachment; filename="invoice.html"

        <html><body><a href="https://phish.example/portal">Open invoice</a></body></html>
        --BOUND--
        """)


SAMPLE = _sample_eml(
    base64.b64encode(b"Click https://evil.example/login now").decode("ascii")
)


class TestHeaderMapping:
    def test_addresses_and_subject(self):
        message = ingest_eml_text(SAMPLE)
        assert message.sender == "support@spammer.ru"
        assert message.sender_domain == "spammer.ru"
        assert message.recipient == "victim@corp.example"
        assert message.subject == "Password expires today"

    def test_delivery_time_relative_to_epoch(self):
        message = ingest_eml_text(SAMPLE)
        expected = (
            datetime(2024, 3, 12, 10, 30, tzinfo=timezone.utc) - DEFAULT_EPOCH
        ).total_seconds() / 3600
        assert message.delivered_at == expected

    def test_custom_epoch(self):
        epoch = datetime(2024, 3, 12, 10, 30, tzinfo=timezone.utc)
        assert ingest_eml_text(SAMPLE, epoch=epoch).delivered_at == 0.0

    def test_sending_infrastructure(self):
        message = ingest_eml_text(SAMPLE)
        assert message.sending_domain == "spammer.ru"
        assert message.sending_ip == "203.0.113.9"
        assert message.dkim_signed

    def test_missing_headers_fall_back(self):
        message = ingest_eml_text("Subject: hi\n\nplain body\n")
        assert message.sender == "unknown@example.com"
        assert message.recipient == "employee@corp.example"
        assert message.delivered_at == 0.0
        assert not message.dkim_signed


class TestPartMapping:
    def test_base64_transfer_encoding_preserved(self):
        message = ingest_eml_text(SAMPLE)
        text_part = message.parts[0]
        assert text_part.content_type == ContentType.TEXT
        # The base64 evasion must survive ingestion for the filters to miss it.
        assert text_part.transfer_encoding == "base64"
        assert "https://evil.example/login" in text_part.decoded_text()

    def test_html_attachment_flagged(self):
        message = ingest_eml_text(SAMPLE)
        html_part = message.parts[1]
        assert html_part.content_type == ContentType.HTML
        assert html_part.filename == "invoice.html"
        assert not html_part.inline

    def test_binary_attachment_becomes_sniffable_blob(self):
        eml = textwrap.dedent("""\
            From: a@b.example
            Subject: attachment
            Content-Type: application/pdf; name="doc.pdf"
            Content-Disposition: attachment; filename="doc.pdf"
            Content-Transfer-Encoding: base64

            JVBERi0xLjcgcmVzdA==
            """)
        message = ingest_eml_text(eml)
        (part,) = message.parts
        assert part.content_type == ContentType.OCTET_STREAM
        assert part.content.sniffed_kind() == "pdf"

    def test_nested_rfc822_recurses_without_duplication(self):
        eml = textwrap.dedent("""\
            From: fwd@corp.example
            Subject: FW: see attached
            Content-Type: multipart/mixed; boundary="OUTER"

            --OUTER
            Content-Type: text/plain

            outer body
            --OUTER
            Content-Type: message/rfc822

            From: original@spammer.ru
            Subject: inner
            Content-Type: text/plain

            inner body https://inner.example/x
            --OUTER--
            """)
        message = ingest_eml_text(eml)
        assert [part.content_type for part in message.parts] == [
            ContentType.TEXT,
            ContentType.EML,
        ]
        inner = message.parts[1].content
        assert isinstance(inner, EmailMessage)
        assert inner.sender == "original@spammer.ru"
        report = EmailParser().parse(message)
        assert [u.url for u in report.urls] == ["https://inner.example/x"]


class TestIngestResilience:
    """One hostile or truncated .eml must not abort a corpus ingestion."""

    def test_headerless_bytes_raise_ingest_error(self):
        with pytest.raises(IngestError, match="no headers parsed"):
            ingest_eml_bytes(b"\x00\x01\x02 not a message at all")

    def test_empty_file_raises_ingest_error(self):
        with pytest.raises(IngestError):
            ingest_eml_bytes(b"")

    def test_directory_skips_defective_files_and_continues(self, tmp_path):
        # Regression: a single undecodable sample used to abort the
        # whole directory; now it lands in the skip list with a reason
        # and every healthy neighbour still ingests.
        (tmp_path / "a_good.eml").write_text(SAMPLE)
        (tmp_path / "b_garbage.eml").write_bytes(b"\x00\xff\xfe garbage")
        (tmp_path / "c_unreadable.eml").mkdir()  # read fails with OSError
        (tmp_path / "d_good.eml").write_text(SAMPLE)

        report = ingest_directory_report(tmp_path)
        assert len(report.messages) == 2
        assert report.messages[0].ground_truth["source"].endswith("a_good.eml")
        assert report.messages[1].ground_truth["source"].endswith("d_good.eml")

        skipped = {entry["path"]: entry["reason"] for entry in report.skipped}
        assert len(skipped) == 2
        assert "no headers parsed" in skipped[str(tmp_path / "b_garbage.eml")]
        assert skipped[str(tmp_path / "c_unreadable.eml")].startswith("unreadable:")

    def test_legacy_directory_ingestion_skips_silently(self, tmp_path):
        (tmp_path / "good.eml").write_text(SAMPLE)
        (tmp_path / "bad.eml").write_bytes(b"\x00")
        messages = ingest_directory(tmp_path)
        assert len(messages) == 1

    def test_clean_directory_reports_no_skips(self, tmp_path):
        (tmp_path / "one.eml").write_text(SAMPLE)
        report = ingest_directory_report(tmp_path)
        assert report.skipped == []
        assert len(report.messages) == 1


class TestPipelineIntegration:
    def test_parser_extracts_urls_from_ingested_message(self):
        report = EmailParser().parse(ingest_eml_text(SAMPLE))
        assert {(u.url, u.method) for u in report.urls} == {
            ("https://evil.example/login", "text"),
            ("https://phish.example/portal", "html-static"),
        }
        assert report.html_attachment_paths  # the invoice opens locally

    def test_directory_ingestion_sorted_and_indexable(self, tmp_path):
        for name in ("b.eml", "a.eml", "ignored.txt"):
            (tmp_path / name).write_text(SAMPLE)
        messages = ingest_directory(tmp_path)
        assert len(messages) == 2
        assert messages[0].ground_truth["source"].endswith("a.eml")
        assert messages[1].ground_truth["source"].endswith("b.eml")

    def test_file_ingestion_records_source(self, tmp_path):
        path = tmp_path / "sample.eml"
        path.write_text(SAMPLE)
        message = ingest_eml_file(path)
        assert message.ground_truth["source"] == str(path)

    def test_crawlerbox_analyzes_ingested_message(self, small_corpus):
        from repro.core import CrawlerBox

        box = CrawlerBox.for_world(small_corpus.world)
        record = box.analyze(ingest_eml_text(SAMPLE), message_index=0)
        # The phish domains don't exist in the simulated world: every
        # crawl must surface as an error outcome, not an exception.
        assert record.extraction is not None
        assert len(record.crawls) == 2
        assert all(crawl.outcome == "nxdomain" for crawl in record.crawls)
