"""Locator + payload-extraction tests, including the faulty-QR bug."""

import random

import pytest

from repro.imaging.effects import add_gaussian_noise
from repro.imaging.image import Image
from repro.imaging.render import render_lines
from repro.qr.encoder import qr_image
from repro.qr.locator import QRLocateError, locate_qr_matrix
from repro.qr.scanner import (
    decode_qr_image,
    extract_url_lenient,
    extract_url_strict,
    scan_image_for_urls,
)
from repro.qr.tables import ECLevel


class TestLocator:
    def test_locate_plain_symbol(self):
        image = qr_image("LOCATE ME", scale=4)
        assert decode_qr_image(image) == "LOCATE ME"

    @pytest.mark.parametrize("scale", [2, 3, 5, 7])
    def test_various_scales(self, scale):
        image = qr_image("SCALE", scale=scale)
        assert decode_qr_image(image) == "SCALE"

    def test_embedded_with_offset(self):
        symbol = qr_image("OFFSET", scale=3)
        canvas = Image.new(400, 300)
        canvas.paste(symbol, 211, 87)
        assert decode_qr_image(canvas) == "OFFSET"

    def test_embedded_next_to_text(self):
        symbol = qr_image("WITH TEXT", scale=3)
        text = render_lines(["SCAN THE CODE BELOW", "TO RE-ENROLL MFA"], scale=2)
        canvas = Image.new(max(text.width, symbol.width) + 20, text.height + symbol.height + 30)
        canvas.paste(text, 10, 5)
        canvas.paste(symbol, 10, text.height + 15)
        assert decode_qr_image(canvas) == "WITH TEXT"

    def test_noisy_symbol(self):
        image = qr_image("NOISY", scale=4)
        noisy = add_gaussian_noise(image, 30.0, random.Random(8))
        assert decode_qr_image(noisy) == "NOISY"

    def test_data_region_finder_mimics(self):
        """Regression: a data region forming a 1:1:3:1:1 run must not
        contaminate a real finder's centre estimate (grid drift)."""
        payload = "https://secure-auth-webmail.io/t000239ae1c"
        image = qr_image(payload, ec_level=ECLevel.L, scale=3)
        assert decode_qr_image(image) == payload

    def test_scale_one_symbols(self):
        payload = "https://tiny.example/1px"
        assert decode_qr_image(qr_image(payload, scale=1)) == payload

    def test_random_payload_sweep(self):
        import string

        rng = random.Random(42)
        for _ in range(40):
            length = rng.randint(5, 100)
            payload = "".join(
                rng.choice(string.ascii_letters + string.digits + ":/.#?=-_ ")
                for _ in range(length)
            )
            level = rng.choice(list(ECLevel))
            scale = rng.choice([2, 3, 4])
            try:
                image = qr_image(payload, ec_level=level, scale=scale)
            except Exception:
                continue
            assert decode_qr_image(image) == payload, (length, level, scale)

    def test_blank_image_raises(self):
        with pytest.raises(QRLocateError):
            locate_qr_matrix(Image.new(100, 100))

    def test_text_only_image_raises(self):
        with pytest.raises(QRLocateError):
            locate_qr_matrix(render_lines(["JUST SOME TEXT", "NO CODE HERE"], scale=2))


class TestStrictExtraction:
    """The email-filter behaviour: the payload must BE a URL."""

    def test_valid_url_accepted(self):
        assert extract_url_strict("https://evil.com/a?b=1#f") == "https://evil.com/a?b=1#f"

    def test_http_accepted(self):
        assert extract_url_strict("http://evil.com/") == "http://evil.com/"

    def test_whitespace_trimmed(self):
        assert extract_url_strict("  https://evil.com/  ") == "https://evil.com/"

    @pytest.mark.parametrize(
        "payload",
        [
            "xxx https://evil.com/",
            "[https://evil.com/",
            "** https://evil.com/t/1",
            "qr:https://evil.com/x",
            "https://evil.com/a https://other.com/b",
            "not a url at all",
            "ftp://evil.com/",
        ],
    )
    def test_faulty_payloads_rejected(self, payload):
        assert extract_url_strict(payload) is None


class TestLenientExtraction:
    """The mobile-camera behaviour: carve the URL out of garbage."""

    @pytest.mark.parametrize(
        "payload,expected",
        [
            ("xxx https://evil.com/", "https://evil.com/"),
            ("[https://evil.com/t", "https://evil.com/t"),
            ("scan me: HTTPS://EVIL.COM/T", "HTTPS://EVIL.COM/T"),
            ("https://evil.com/a.", "https://evil.com/a"),
            ("https://clean.example/x", "https://clean.example/x"),
        ],
    )
    def test_carves_url(self, payload, expected):
        assert extract_url_lenient(payload) == expected

    def test_no_url_returns_none(self):
        assert extract_url_lenient("nothing here") is None


class TestFaultyQrBug:
    """The exploited mismatch: filters reject, mobile cameras extract."""

    @pytest.mark.parametrize("prefix", ["xxx ", "[", "** ", ")) "])
    def test_divergence_end_to_end(self, prefix):
        payload = prefix + "https://evil-site.com/dhfYWfH"
        image = qr_image(payload, ec_level=ECLevel.L, scale=3)
        assert scan_image_for_urls(image, lenient=False) == []
        assert scan_image_for_urls(image, lenient=True) == ["https://evil-site.com/dhfYWfH"]

    def test_clean_payload_both_extract(self):
        image = qr_image("https://evil-site.com/x", scale=3)
        assert scan_image_for_urls(image, lenient=False) == ["https://evil-site.com/x"]
        assert scan_image_for_urls(image, lenient=True) == ["https://evil-site.com/x"]

    def test_undecodable_image_returns_empty(self):
        assert scan_image_for_urls(Image.new(60, 60)) == []
