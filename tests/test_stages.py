"""Stage-graph behaviour: failure isolation, subsetting, degradation.

The contracts under test:

- an exception inside any built-in stage marks that stage ``failed`` in
  ``MessageRecord.stage_status``, degrades exactly its (transitive)
  dependents to ``skipped``, and never aborts the message;
- the runner therefore does NOT dead-letter messages whose pipeline
  merely degraded — only :class:`TransientFault` still reaches the
  retry machinery;
- ``stages=('auth', 'parse')`` performs crawl-free triage without ever
  touching the crawler;
- ``record_to_line``/``record_from_line`` round-trip the new
  ``stage_status``/``benign_url_skips`` fields, while healthy full-plan
  records serialize without them (byte-compatibility with the
  pre-stage-graph format);
- the benign-infrastructure skip list keeps utility hosts out of the
  crawl set and counts the skips on the record.
"""

from __future__ import annotations

import pytest

from repro.browser.session import SessionSignals
from repro.core import CrawlerBox, PipelineConfig
from repro.core.export import record_from_line, record_to_line
from repro.core.pipeline import BENIGN_INFRASTRUCTURE_HOSTS
from repro.core.stages import BUILTIN_STAGES, STAGE_NAMES, StageStatus, get_stage
from repro.mail.message import EmailMessage, MessagePart
from repro.runner import CorpusRunner, StageProfiler, TransientFault
from repro.runner.profile import PROFILE_TABLE_STAGES


def _fresh_box(small_corpus, **kwargs) -> CrawlerBox:
    return CrawlerBox.for_world(small_corpus.world, **kwargs)


def _transitive_dependents(name: str) -> set[str]:
    """Registry stages that (transitively) require ``name``'s provides."""
    dependents: set[str] = set()
    tainted = set(get_stage(name).provides)
    for stage in BUILTIN_STAGES:
        if stage.name == name:
            continue
        if tainted & set(stage.requires):
            dependents.add(stage.name)
            tainted |= set(stage.provides)
    return dependents


def _message_with_enrichment_index(small_corpus, records) -> int:
    for record in records:
        if record.enrichments:
            return record.message_index
    raise AssertionError("expected at least one enriched record in the corpus")


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
class TestFailureIsolation:
    @pytest.mark.parametrize("stage_name", STAGE_NAMES)
    def test_each_stage_failure_degrades_dependents(
        self, small_corpus, monkeypatch, stage_name
    ):
        box = _fresh_box(small_corpus)

        def boom(self, ctx):
            raise ValueError(f"injected {stage_name} bug")

        monkeypatch.setattr(type(get_stage(stage_name)), "run", boom)
        record = box.analyze(small_corpus.messages[0], message_index=0)

        status = record.stage_status
        assert set(status) == set(STAGE_NAMES)
        assert status[stage_name] == StageStatus.FAILED
        expected_skipped = _transitive_dependents(stage_name)
        for name in STAGE_NAMES:
            if name == stage_name:
                continue
            expected = (
                StageStatus.SKIPPED if name in expected_skipped else StageStatus.OK
            )
            assert status[name] == expected, f"{name} after {stage_name} failure"
        assert record.degraded_stages  # visible to callers

    def test_broken_crawler_keeps_parse_output(self, small_corpus, monkeypatch):
        box = _fresh_box(small_corpus)
        monkeypatch.setattr(
            box.crawler, "crawl_url", lambda *a, **k: (_ for _ in ()).throw(RuntimeError("net down"))
        )
        # Pick a message that actually extracts URLs so the crawl stage runs.
        for index, message in enumerate(small_corpus.messages[:50]):
            record = box.analyze(message, message_index=index)
            if record.stage_status["crawl"] == StageStatus.FAILED:
                break
        else:
            raise AssertionError("no message exercised the broken crawler")
        assert record.auth is not None
        assert record.extraction is not None
        assert record.stage_status["parse"] == StageStatus.OK
        assert record.stage_status["classify"] == StageStatus.SKIPPED
        assert record.stage_status["spear"] == StageStatus.SKIPPED
        assert record.stage_status["enrich"] == StageStatus.SKIPPED
        assert record.category == ""  # classify degraded, not defaulted

    def test_broken_enricher_degrades_only_enrich(self, small_corpus, analyzed_records, monkeypatch):
        box = _fresh_box(small_corpus)
        index = _message_with_enrichment_index(small_corpus, analyzed_records)

        def explode(domain, at_time, server_ip=""):
            raise KeyError("enrichment source offline")

        monkeypatch.setattr(box.enricher, "enrich", explode)
        record = box.analyze(small_corpus.messages[index], message_index=index)
        healthy = next(r for r in analyzed_records if r.message_index == index)
        assert record.stage_status["enrich"] == StageStatus.FAILED
        assert record.enrichments == {}
        # Everything upstream matches the healthy analysis.
        assert record.category == healthy.category
        assert [c.url for c in record.crawls] == [c.url for c in healthy.crawls]
        for name in STAGE_NAMES:
            if name != "enrich":
                assert record.stage_status[name] == StageStatus.OK

    def test_runner_does_not_dead_letter_degraded_messages(self, small_corpus):
        def explode(domain, at_time, server_ip=""):
            raise KeyError("enrichment source offline")

        def factory(worker_id):
            box = _fresh_box(small_corpus)
            box.enricher.enrich = explode
            return box

        sample = small_corpus.messages[:25]
        result = CorpusRunner(box_factory=factory, jobs=1).run(sample)
        assert result.dead_letters == []
        assert result.stats.dead_lettered == 0
        assert result.stats.retried == 0
        assert len(result.records) == len(sample)
        failed = [r for r in result.records if r.stage_status.get("enrich") == StageStatus.FAILED]
        assert failed, "expected at least one record to hit the broken enricher"

    def test_transient_fault_still_reaches_retry_machinery(
        self, small_corpus, analyzed_records, monkeypatch
    ):
        box = _fresh_box(small_corpus)
        index = _message_with_enrichment_index(small_corpus, analyzed_records)
        monkeypatch.setattr(
            box.enricher,
            "enrich",
            lambda *a, **k: (_ for _ in ()).throw(TransientFault("flaky source")),
        )
        with pytest.raises(TransientFault):
            box.analyze(small_corpus.messages[index], message_index=index)


# ----------------------------------------------------------------------
# Stage subsetting (--stages triage plans)
# ----------------------------------------------------------------------
class TestSubsetPlans:
    def test_auth_parse_triage_never_touches_the_crawler(self, small_corpus, monkeypatch):
        box = _fresh_box(small_corpus, stages=("auth", "parse"))
        assert box.plan.stage_names == ("auth", "parse")
        assert "crawl" not in box.plan and "dynamic-html" not in box.plan

        def forbidden(*args, **kwargs):
            raise AssertionError("crawler invoked during parse-only triage")

        monkeypatch.setattr(box.crawler, "crawl_url", forbidden)
        monkeypatch.setattr(box.crawler, "crawl_html", forbidden)

        for index, message in enumerate(small_corpus.messages[:20]):
            record = box.analyze(message, message_index=index)
            assert record.auth is not None
            assert record.extraction is not None
            assert record.crawls == []
            assert record.stage_status["auth"] == StageStatus.OK
            assert record.stage_status["parse"] == StageStatus.OK
            for name in ("dynamic-html", "crawl", "classify", "spear", "enrich"):
                assert record.stage_status[name] == StageStatus.SKIPPED

    def test_selection_order_is_normalized(self, small_corpus):
        box = _fresh_box(small_corpus, stages=("parse", "auth"))
        assert box.plan.stage_names == ("auth", "parse")

    def test_selection_with_missing_provider_is_rejected(self, small_corpus):
        from repro.core.stages import StagePlanError

        with pytest.raises(StagePlanError, match="requires"):
            _fresh_box(small_corpus, stages=("auth", "crawl"))

    def test_unknown_stage_is_rejected(self, small_corpus):
        from repro.core.stages import StagePlanError

        with pytest.raises(StagePlanError, match="unknown stage"):
            _fresh_box(small_corpus, stages=("auth", "fetch"))


# ----------------------------------------------------------------------
# Serialization round-trip and byte-compatibility
# ----------------------------------------------------------------------
class TestStageStatusSerialization:
    def test_degraded_record_round_trips(self, small_corpus, monkeypatch):
        box = _fresh_box(small_corpus)
        monkeypatch.setattr(
            box.parser, "parse", lambda message: (_ for _ in ()).throw(ValueError("bad MIME"))
        )
        record = box.analyze(small_corpus.messages[0], message_index=0)
        assert record.stage_status["parse"] == StageStatus.FAILED

        line = record_to_line(record)
        assert "stage_status" in line
        restored = record_from_line(line)
        assert restored.stage_status == record.stage_status
        assert record_to_line(restored) == line

    def test_subset_record_round_trips(self, small_corpus):
        box = _fresh_box(small_corpus, stages=("auth", "parse"))
        record = box.analyze(small_corpus.messages[0], message_index=0)
        restored = record_from_line(record_to_line(record))
        assert restored.stage_status == record.stage_status
        assert restored.stage_status["crawl"] == StageStatus.SKIPPED

    def test_healthy_record_serializes_without_new_fields(self, analyzed_records):
        healthy = next(
            r
            for r in analyzed_records
            if r.stage_status
            and all(s == StageStatus.OK for s in r.stage_status.values())
            and not r.benign_url_skips
        )
        line = record_to_line(healthy)
        assert "stage_status" not in line
        assert "benign_url_skips" not in line
        restored = record_from_line(line)
        assert restored.stage_status == {}  # dropped for healthy records

    def test_benign_skips_round_trip(self, analyzed_records):
        skipped = [r for r in analyzed_records if r.benign_url_skips]
        assert skipped, "seeded corpus should skip at least one benign URL"
        record = skipped[0]
        restored = record_from_line(record_to_line(record))
        assert restored.benign_url_skips == record.benign_url_skips


# ----------------------------------------------------------------------
# Benign-infrastructure skip list
# ----------------------------------------------------------------------
class TestBenignSkipList:
    def _message(self, urls):
        message = EmailMessage(
            sender="docs@sharepoint-notify.example",
            recipient="employee@corp.example",
            subject="links",
            delivered_at=100.0,
            sending_domain="sharepoint-notify.example",
        )
        message.add_part(MessagePart.text("\n".join(urls)))
        return message

    def test_utility_hosts_are_skipped_and_counted(self, small_corpus):
        box = _fresh_box(small_corpus)
        urls = [
            "https://gyazo-cdn.example/bg/1.png",
            "https://httpbin.org/ip",
            "https://phish-landing.example/login",
        ]
        record = box.analyze(self._message(urls), message_index=0)
        crawled = [crawl.url for crawl in record.crawls]
        assert crawled == ["https://phish-landing.example/login"]
        assert set(record.benign_url_skips) == {
            "https://gyazo-cdn.example/bg/1.png",
            "https://httpbin.org/ip",
        }

    def test_skip_list_can_be_disabled(self, small_corpus):
        box = _fresh_box(
            small_corpus, config=PipelineConfig(skip_benign_hosts=False)
        )
        urls = ["https://httpbin.org/ip", "https://phish-landing.example/login"]
        record = box.analyze(self._message(urls), message_index=0)
        assert [crawl.url for crawl in record.crawls] == urls
        assert record.benign_url_skips == ()

    def test_subdomains_of_benign_hosts_match(self):
        assert CrawlerBox._is_benign_infrastructure("httpbin.org")
        assert CrawlerBox._is_benign_infrastructure("cdn.httpbin.org")
        assert not CrawlerBox._is_benign_infrastructure("nothttpbin.org")
        assert not CrawlerBox._is_benign_infrastructure("phish-landing.example")

    def test_skip_list_covers_kit_and_web_utilities(self):
        assert "gyazo-cdn.example" in BENIGN_INFRASTRUCTURE_HOSTS
        assert "freeimages-cdn.example" in BENIGN_INFRASTRUCTURE_HOSTS
        assert "httpbin.org" in BENIGN_INFRASTRUCTURE_HOSTS
        assert "ipapi.co" in BENIGN_INFRASTRUCTURE_HOSTS


# ----------------------------------------------------------------------
# SessionSignals.merge
# ----------------------------------------------------------------------
class TestSessionSignalsMerge:
    def test_empty_chain_merges_to_none(self):
        assert SessionSignals.merge([]) is None

    def test_single_session_passes_through(self):
        signals = SessionSignals(debugger_hits=2)
        assert SessionSignals.merge([signals]) is signals

    def test_hue_rotation_takes_the_maximum(self):
        merged = SessionSignals.merge(
            [
                SessionSignals(hue_rotation_deg=30.0),
                SessionSignals(hue_rotation_deg=180.0),
                SessionSignals(hue_rotation_deg=90.0),
            ]
        )
        assert merged.hue_rotation_deg == 180.0

    def test_counters_and_sequences_accumulate(self):
        merged = SessionSignals.merge(
            [
                SessionSignals(debugger_hits=1, navigator_reads=("webdriver",)),
                SessionSignals(
                    debugger_hits=3, navigator_reads=("userAgent",), console_hijacked=True
                ),
            ]
        )
        assert merged.debugger_hits == 4
        assert merged.navigator_reads == ("webdriver", "userAgent")
        assert merged.console_hijacked is True


# ----------------------------------------------------------------------
# Profiler coverage
# ----------------------------------------------------------------------
class TestProfilerCoverage:
    def test_profile_rows_derive_from_registry_plus_unattributed(self, small_corpus):
        profiler = StageProfiler()
        box = _fresh_box(small_corpus, profiler=profiler)
        for index in range(3):
            box.analyze(small_corpus.messages[index], message_index=index)
        snapshot = profiler.snapshot()
        assert set(snapshot) == set(PROFILE_TABLE_STAGES)
        for name in STAGE_NAMES:
            assert snapshot[name]["calls"] == 3
        assert snapshot["unattributed"]["calls"] == 3
        # The residual bucket is the (non-negative) remainder of the
        # total analysis wall clock after per-stage attribution.
        assert snapshot["unattributed"]["seconds"] >= 0.0
