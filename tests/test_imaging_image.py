"""Unit tests for the raster Image class."""

import numpy as np
import pytest

from repro.imaging.image import BLACK, WHITE, Image


class TestConstruction:
    def test_new_dimensions(self):
        image = Image.new(10, 6)
        assert image.width == 10
        assert image.height == 6
        assert image.size == (10, 6)

    def test_new_fill_color(self):
        image = Image.new(4, 4, (10, 20, 30))
        assert image.get_pixel(0, 0) == (10, 20, 30)
        assert image.get_pixel(3, 3) == (10, 20, 30)

    def test_new_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            Image.new(0, 5)
        with pytest.raises(ValueError):
            Image.new(5, -1)

    def test_pixels_must_be_3d(self):
        with pytest.raises(ValueError):
            Image(np.zeros((4, 4), dtype=np.uint8))

    def test_from_bool_matrix(self):
        matrix = np.array([[True, False], [False, True]])
        image = Image.from_bool_matrix(matrix, scale=2)
        assert image.size == (4, 4)
        assert image.get_pixel(0, 0) == BLACK
        assert image.get_pixel(2, 0) == WHITE
        assert image.get_pixel(2, 2) == BLACK

    def test_from_bool_matrix_border(self):
        matrix = np.array([[True]])
        image = Image.from_bool_matrix(matrix, scale=1, border=2)
        assert image.size == (5, 5)
        assert image.get_pixel(0, 0) == WHITE
        assert image.get_pixel(2, 2) == BLACK

    def test_from_bool_matrix_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            Image.from_bool_matrix(np.array([[True]]), scale=0)


class TestPixelOps:
    def test_put_get_pixel(self):
        image = Image.new(3, 3)
        image.put_pixel(1, 2, (5, 6, 7))
        assert image.get_pixel(1, 2) == (5, 6, 7)

    def test_paste_basic(self):
        base = Image.new(10, 10, WHITE)
        stamp = Image.new(2, 2, BLACK)
        base.paste(stamp, 4, 4)
        assert base.get_pixel(4, 4) == BLACK
        assert base.get_pixel(5, 5) == BLACK
        assert base.get_pixel(6, 6) == WHITE

    def test_paste_clips_at_edges(self):
        base = Image.new(4, 4, WHITE)
        stamp = Image.new(3, 3, BLACK)
        base.paste(stamp, 3, 3)  # only 1x1 lands inside
        assert base.get_pixel(3, 3) == BLACK
        assert base.get_pixel(2, 2) == WHITE

    def test_paste_fully_outside_is_noop(self):
        base = Image.new(4, 4, WHITE)
        stamp = Image.new(2, 2, BLACK)
        base.paste(stamp, 10, 10)
        assert base.mean_color() == (255.0, 255.0, 255.0)

    def test_fill_rect(self):
        image = Image.new(6, 6, WHITE)
        image.fill_rect(1, 1, 2, 3, BLACK)
        assert image.get_pixel(1, 1) == BLACK
        assert image.get_pixel(2, 3) == BLACK
        assert image.get_pixel(3, 1) == WHITE

    def test_crop(self):
        image = Image.new(6, 6, WHITE)
        image.put_pixel(2, 3, BLACK)
        cropped = image.crop(2, 3, 2, 2)
        assert cropped.size == (2, 2)
        assert cropped.get_pixel(0, 0) == BLACK

    def test_crop_out_of_bounds(self):
        image = Image.new(4, 4)
        with pytest.raises(ValueError):
            image.crop(2, 2, 5, 5)


class TestTransforms:
    def test_grayscale_weights(self):
        image = Image.new(1, 1, (255, 0, 0))
        assert abs(image.to_grayscale()[0, 0] - 0.299 * 255) < 1e-6

    def test_resize_dimensions(self):
        image = Image.new(8, 8)
        assert image.resize(4, 2).size == (4, 2)
        assert image.resize(16, 16).size == (16, 16)

    def test_resize_preserves_solid_color(self):
        image = Image.new(8, 8, (3, 4, 5))
        small = image.resize(2, 2)
        assert small.get_pixel(0, 0) == (3, 4, 5)

    def test_equality_and_copy(self):
        image = Image.new(3, 3, (1, 2, 3))
        duplicate = image.copy()
        assert image == duplicate
        duplicate.put_pixel(0, 0, (9, 9, 9))
        assert image != duplicate

    def test_hash_consistency(self):
        a = Image.new(3, 3, (1, 2, 3))
        b = Image.new(3, 3, (1, 2, 3))
        assert hash(a) == hash(b)
