"""Hostile-input hardening: the ingestion guard and the work budget.

Two layers under test, plus their integration into the pipeline:

- :mod:`repro.mail.guard` — structural limits applied *before* a
  message enters the stage plan.  Every hostile shape from
  :mod:`repro.dataset.hostile` must trip exactly the limit it targets,
  and every calibrated-corpus message must pass untouched.
- :mod:`repro._budget` — the cooperative work-unit meter that bounds
  what a structurally-clean message may consume *during* analysis.
- ``CrawlerBox.analyze`` — quarantined records carry a structured
  report (serialization round-trip included), budget exhaustion
  degrades the running stage to ``failed`` without killing anything,
  and both decisions are deterministic.
"""

from __future__ import annotations

import threading

import pytest

from repro._budget import (
    DEFAULT_WORK_LIMIT,
    BudgetExceeded,
    MessageBudget,
    activate,
    current_budget,
)
from repro.core import CrawlerBox, PipelineConfig
from repro.core.export import record_from_dict, record_to_dict
from repro.core.outcomes import MessageCategory
from repro.core.stages.base import StageStatus
from repro.dataset.hostile import (
    EXPECTED_VIOLATIONS,
    SHAPES,
    hostile_corpus,
    hostile_message,
)
from repro.mail.guard import GuardLimits, MessageGuard, QuarantineReport
from repro.mail.message import EmailMessage, MessagePart
from repro.runner import RunningStats


def _clean_message() -> EmailMessage:
    message = EmailMessage(
        sender="sender@legit.example",
        recipient="employee@corp.example",
        subject="quarterly report",
        delivered_at=12.0,
    )
    message.add_part(MessagePart.text("see https://legit.example/report"))
    return message


# ----------------------------------------------------------------------
# The structural guard
# ----------------------------------------------------------------------
class TestMessageGuard:
    def test_clean_message_passes(self):
        assert MessageGuard().inspect(_clean_message()) is None

    def test_calibrated_corpus_never_quarantined(self, small_corpus):
        guard = MessageGuard()
        reports = [guard.inspect(message) for message in small_corpus.messages]
        assert reports == [None] * len(small_corpus.messages)

    @pytest.mark.parametrize(
        "shape,expected",
        [(shape, limit) for shape, limit in EXPECTED_VIOLATIONS.items() if limit],
    )
    def test_each_hostile_shape_trips_its_limit(self, shape, expected):
        report = MessageGuard().inspect(hostile_message(shape))
        assert report is not None, f"{shape} passed the guard"
        # The headline violation is the one the shape was built to trip.
        assert report.violations[0].limit == expected
        assert expected in report.reason
        violation = report.violations[0]
        assert violation.observed > violation.cap

    def test_js_loop_shape_passes_the_guard(self):
        # Structurally clean by design: bounding its runtime is the work
        # budget's job, not the guard's.
        assert MessageGuard().inspect(hostile_message("js-loop")) is None

    def test_report_preserves_triage_headers(self):
        report = MessageGuard().inspect(hostile_message("header-giant"))
        assert report.headers["From"].endswith("@hostile.example")
        assert report.headers["To"] == "employee@corp.example"
        assert "header-giant" in report.headers["Subject"]
        # Triage values are truncated, never multi-kilobyte.
        assert all(len(value) <= 256 for value in report.headers.values())

    def test_decision_is_deterministic(self):
        guard = MessageGuard()
        message = hostile_message("rfc822-chain", seed=3)
        assert guard.inspect(message).as_dict() == guard.inspect(message).as_dict()

    def test_violation_never_raises_it_reports(self):
        # A message tripping several limits yields one report listing
        # each limit once (first occurrence carries the diagnosis).
        message = hostile_message("header-bomb")
        message.headers["X-Giant"] = "B" * 20_000
        report = MessageGuard().inspect(message)
        limits = [violation.limit for violation in report.violations]
        assert sorted(limits) == sorted(set(limits))
        assert {"header-count", "header-bytes"} <= set(limits)

    def test_custom_limits_tighten_the_guard(self):
        strict = MessageGuard(GuardLimits(max_parts=1))
        report = strict.inspect(_clean_message())
        assert report is not None
        assert report.violations[0].limit == "part-count"

    def test_report_round_trips_through_dict(self):
        report = MessageGuard().inspect(hostile_message("archive-bomb"))
        clone = QuarantineReport.from_dict(report.as_dict())
        assert clone == report

    def test_base64_bomb_sized_without_decoding(self):
        # 6M encoded chars: the guard must estimate (~4.5 MiB) rather
        # than materialize the decode.
        report = MessageGuard().inspect(hostile_message("base64-bomb"))
        (violation,) = [v for v in report.violations if v.limit == "decoded-bytes"]
        assert violation.observed == len("QUJD" * 1_500_000) * 3 // 4


# ----------------------------------------------------------------------
# The work budget
# ----------------------------------------------------------------------
class TestMessageBudget:
    def test_charges_accumulate_per_kind(self):
        budget = MessageBudget(work_limit=10_000)
        budget.charge(1024, "js-steps")
        budget.charge(1024, "js-steps")
        budget.charge(2000, "ocr-tiles")
        assert budget.spent == 4048
        assert budget.spent_by_kind == {"js-steps": 2048, "ocr-tiles": 2000}

    def test_exhaustion_raises_with_diagnosis(self):
        budget = MessageBudget(work_limit=1000)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.charge(1024, "js-steps")
        assert excinfo.value.kind == "js-steps"
        assert excinfo.value.spent == 1024
        assert excinfo.value.limit == 1000
        assert "js-steps" in str(excinfo.value)

    def test_budget_exceeded_is_not_transient(self):
        # A deterministic exhaustion must never be retried by the runner.
        from repro.runner.retry import TransientFault

        assert not issubclass(BudgetExceeded, TransientFault)

    def test_unlimited_budget_never_trips(self):
        budget = MessageBudget(work_limit=None)
        budget.charge(10 * DEFAULT_WORK_LIMIT, "js-steps")
        assert budget.spent == 10 * DEFAULT_WORK_LIMIT

    def test_deadline_uses_injected_clock(self):
        now = [0.0]
        budget = MessageBudget(
            work_limit=None, deadline_seconds=5.0, clock=lambda: now[0]
        )
        budget.charge(1, "js-steps")
        now[0] = 6.0
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.charge(1, "js-steps")
        assert excinfo.value.kind == "deadline"

    def test_activate_installs_and_restores(self):
        assert current_budget() is None
        outer, inner = MessageBudget(), MessageBudget()
        with activate(outer):
            assert current_budget() is outer
            with activate(inner):
                assert current_budget() is inner
            assert current_budget() is outer
        assert current_budget() is None

    def test_activate_none_is_a_noop(self):
        with activate(None):
            assert current_budget() is None

    def test_budget_is_thread_local(self):
        mine = MessageBudget()
        seen = []
        with activate(mine):
            thread = threading.Thread(target=lambda: seen.append(current_budget()))
            thread.start()
            thread.join()
        assert seen == [None]  # the other thread never saw our budget


# ----------------------------------------------------------------------
# Pipeline integration
# ----------------------------------------------------------------------
class TestPipelineQuarantine:
    def test_hostile_message_becomes_quarantined_record(self, crawlerbox):
        record = crawlerbox.analyze(hostile_message("part-bomb"), message_index=3)
        assert record.category == MessageCategory.QUARANTINED
        assert record.quarantine is not None
        assert record.quarantine.violations[0].limit == "part-count"
        # Nothing ran: every stage is skipped, nothing was crawled.
        assert set(record.stage_status.values()) == {StageStatus.SKIPPED}
        assert record.crawls == []

    def test_quarantined_record_round_trips_serialization(self, crawlerbox):
        record = crawlerbox.analyze(hostile_message("rfc822-chain"), message_index=0)
        data = record_to_dict(record)
        assert data["category"] == "quarantined"
        assert data["quarantine"]["violations"][0]["limit"] == "rfc822-depth"
        clone = record_from_dict(data)
        assert clone.quarantine == record.quarantine
        assert record_to_dict(clone) == data

    def test_clean_record_serialization_untouched(self, analyzed_records):
        # Hardening must not perturb the historical artifact format: no
        # clean record grows quarantine/stage_errors keys.
        for record in analyzed_records:
            data = record_to_dict(record)
            assert "quarantine" not in data
            assert "stage_errors" not in data

    def test_guard_can_be_disabled(self, small_corpus):
        box = CrawlerBox.for_world(
            small_corpus.world, config=PipelineConfig(guard_enabled=False)
        )
        record = box.analyze(hostile_message("header-bomb"), message_index=0)
        assert record.quarantine is None
        assert record.category != MessageCategory.QUARANTINED

    def test_quarantine_decision_identical_across_boxes(self, small_corpus):
        first = CrawlerBox.for_world(small_corpus.world)
        second = CrawlerBox.for_world(small_corpus.world)
        for index, message in enumerate(hostile_corpus(seed=5)):
            left = record_to_dict(first.analyze(message, message_index=index))
            right = record_to_dict(second.analyze(message, message_index=index))
            assert left == right

    def test_stats_count_quarantines(self, crawlerbox):
        records = [
            crawlerbox.analyze(message, message_index=index)
            for index, message in enumerate(hostile_corpus(seed=1))
        ]
        stats = RunningStats.from_records(records)
        quarantined = sum(1 for shape in SHAPES if EXPECTED_VIOLATIONS[shape])
        assert stats.quarantined == quarantined
        assert stats.categories[MessageCategory.QUARANTINED] == quarantined
        assert stats.as_dict()["quarantined"] == quarantined

    def test_stats_omit_zero_hostile_counters(self, analyzed_records):
        data = RunningStats.from_records(analyzed_records).as_dict()
        assert "quarantined" not in data
        assert "budget_stage_failures" not in data


class TestPipelineBudget:
    def test_tight_budget_fails_stage_not_worker(self, small_corpus):
        box = CrawlerBox.for_world(
            small_corpus.world, config=PipelineConfig(budget_work_units=50_000)
        )
        record = box.analyze(hostile_message("js-loop"), message_index=0)
        # The runaway script exhausted the budget inside dynamic-html;
        # the stage failed, the record survived with a readable reason.
        assert record.stage_status["dynamic-html"] == StageStatus.FAILED
        assert record.stage_errors["dynamic-html"].startswith("BudgetExceeded")
        assert "js-steps" in record.stage_errors["dynamic-html"]
        assert record.quarantine is None  # degraded, not quarantined

    def test_budget_failures_counted_and_serialized(self, small_corpus):
        box = CrawlerBox.for_world(
            small_corpus.world, config=PipelineConfig(budget_work_units=50_000)
        )
        record = box.analyze(hostile_message("js-loop"), message_index=0)
        stats = RunningStats.from_records([record])
        assert stats.budget_stage_failures == 1
        assert stats.as_dict()["budget_stage_failures"] == 1
        clone = record_from_dict(record_to_dict(record))
        assert clone.stage_errors == record.stage_errors

    def test_budget_failure_is_deterministic(self, small_corpus):
        config = PipelineConfig(budget_work_units=50_000)
        runs = [
            record_to_dict(
                CrawlerBox.for_world(small_corpus.world, config=config).analyze(
                    hostile_message("js-loop"), message_index=0
                )
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_default_budget_leaves_corpus_records_identical(self, small_corpus,
                                                            analyzed_records):
        # The default 8M budget must be invisible on the calibrated
        # corpus: same records as an unlimited run, no stage errors.
        box = CrawlerBox.for_world(
            small_corpus.world, config=PipelineConfig(budget_work_units=None)
        )
        unlimited = box.analyze_corpus(small_corpus.messages)
        assert [record_to_dict(r) for r in unlimited] == [
            record_to_dict(r) for r in analyzed_records
        ]
        assert all(not record.stage_errors for record in analyzed_records)

    def test_runaway_script_default_budget_degrades_gracefully(self, crawlerbox):
        # Under the *default* budget the JS interpreter's own step limit
        # catches the loop first: the stage completes, the script error
        # is recorded, the worker never sees an exception.
        record = crawlerbox.analyze(hostile_message("js-loop"), message_index=0)
        assert record.quarantine is None
        assert record.stage_status["dynamic-html"] == StageStatus.OK
