"""PDF documents: text, URI annotations, embedded images, rasterisation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.imaging.image import Image
from repro.imaging.render import render_lines

#: Leading bytes used for magic-number sniffing of octet-stream blobs.
PDF_MAGIC = b"%PDF-"


@dataclass
class PdfPage:
    """One page: visible text lines, link annotations, embedded images."""

    text_lines: list[str] = field(default_factory=list)
    uri_annotations: list[str] = field(default_factory=list)
    images: list[Image] = field(default_factory=list)

    def rasterize(self, scale: int = 2) -> Image:
        """Screenshot the page: rendered text with images pasted below."""
        lines = [line for line in self.text_lines if line.strip()] or [" "]
        base = render_lines(lines, scale=scale, margin=8)
        if not self.images:
            return base
        total_height = base.height + sum(image.height + 8 for image in self.images)
        total_width = max([base.width] + [image.width + 16 for image in self.images])
        canvas = Image.new(total_width, total_height, (255, 255, 255))
        canvas.paste(base, 0, 0)
        cursor = base.height
        for image in self.images:
            canvas.paste(image, 8, cursor)
            cursor += image.height + 8
        return canvas


@dataclass
class PdfDocument:
    """A multi-page document."""

    pages: list[PdfPage] = field(default_factory=list)
    title: str = ""

    def add_page(self, page: PdfPage) -> "PdfDocument":
        self.pages.append(page)
        return self

    # ------------------------------------------------------------------
    # Extraction strategy 1: embedded and text-based URLs.
    # ------------------------------------------------------------------
    def all_text(self) -> str:
        return "\n".join(line for page in self.pages for line in page.text_lines)

    def all_uri_annotations(self) -> list[str]:
        return [uri for page in self.pages for uri in page.uri_annotations]

    # ------------------------------------------------------------------
    # Extraction strategy 2: page screenshots.
    # ------------------------------------------------------------------
    def rasterize_pages(self, scale: int = 2) -> list[Image]:
        return [page.rasterize(scale=scale) for page in self.pages]

    @property
    def magic_bytes(self) -> bytes:
        return PDF_MAGIC
