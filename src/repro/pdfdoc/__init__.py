"""A minimal PDF-shaped document substrate.

Section IV-B describes two extraction strategies for PDF attachments:
"(1) extracting embedded and text-based URLs, and (2) taking a
screenshot of each page, which is then analyzed like the images"
(OCR + QR scanning).  :class:`~repro.pdfdoc.document.PdfDocument`
supports both: pages carry text lines, URI annotations, and embedded
images, and rasterise deterministically.
"""

from repro.pdfdoc.document import PdfDocument, PdfPage

__all__ = ["PdfDocument", "PdfPage"]
