"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``     generate the calibrated world, analyse the corpus, print
              the headline statistics (optionally export the artifacts).
- ``report``  recompute the statistics from a previously exported run.
- ``table1``  the crawler-vs-detector assessment, computed live.
"""

from __future__ import annotations

import argparse
import sys
import time


def _print_study_report(records, world=None) -> None:
    from repro.analysis import figures
    from repro.core.outcomes import MessageCategory

    breakdown = figures.outcome_breakdown(records)
    print(f"\nMessages analysed: {breakdown.total}")
    print("Outcome breakdown:")
    for label, category in (
        ("no web resources", MessageCategory.NO_RESOURCES),
        ("error pages", MessageCategory.ERROR),
        ("interaction required", MessageCategory.INTERACTION),
        ("downloads", MessageCategory.DOWNLOAD),
        ("active phishing", MessageCategory.ACTIVE_PHISHING),
    ):
        print(f"  {label:<22s} {breakdown.count(category):>6d} "
              f"({100 * breakdown.fraction(category):5.1f}%)")

    spear = sum(1 for record in records if record.spear_brand is not None)
    active = breakdown.count(MessageCategory.ACTIVE_PHISHING)
    if active:
        print(f"Spear phishing: {spear}/{active} ({100 * spear / active:.1f}% of active)")

    evasion = figures.section5c_evasion(records)
    print(f"Turnstile prevalence: {100 * evasion.turnstile_fraction:.1f}% | "
          f"reCAPTCHA: {100 * evasion.recaptcha_fraction:.1f}% | "
          f"faulty QR: {evasion.faulty_qr} | console hijack: {evasion.console_hijack}")
    clusters = [c for c in evasion.shared_script_clusters if c.kind == "victim-check"]
    for cluster in clusters:
        print(f"Shared victim-check script: {cluster.n_domains} domains / "
              f"{cluster.n_messages} messages")

    if world is not None:
        summary = figures.figure3(records, world.network)
        print(f"Timelines: median registration->delivery {summary.median_timedelta_a:.0f} h, "
              f"TLS->delivery {summary.median_timedelta_b:.0f} h "
              f"({summary.over_90d_a} domains registered >90 d ahead)")

    from repro.analysis.infrastructure import summarize_infrastructure

    infrastructure = summarize_infrastructure(records)
    print(f"Infrastructure: {infrastructure.n_domains} landing domains in "
          f"{infrastructure.n_campaigns} campaigns "
          f"({infrastructure.singleton_campaigns} singletons, largest "
          f"{infrastructure.largest_campaign_domains} domains)")


def cmd_run(args) -> int:
    from repro import CorpusGenerator, CrawlerBox

    print(f"Generating world and corpus (seed={args.seed}, scale={args.scale}) ...")
    started = time.time()
    corpus = CorpusGenerator(seed=args.seed, scale=args.scale).generate()
    print(f"  {len(corpus.messages)} messages, {len(corpus.domain_plans)} landing domains "
          f"({time.time() - started:.1f}s)")

    print("Running CrawlerBox over the corpus ...")
    started = time.time()
    box = CrawlerBox.for_world(corpus.world)
    records = box.analyze_corpus(corpus.messages)
    print(f"  analysed in {time.time() - started:.1f}s")

    _print_study_report(records, corpus.world)

    if args.export:
        from repro.core.export import save_records

        save_records(records, args.export)
        print(f"\nArtifacts exported to {args.export}")
    return 0


def cmd_report(args) -> int:
    from repro.core.export import load_records

    records = load_records(args.artifacts)
    print(f"Loaded {len(records)} records from {args.artifacts}")
    _print_study_report(records)
    return 0


def cmd_table1(args) -> int:
    from repro.crawlers.assessment import assess_all_crawlers

    header = f"{'crawler':<26s}|{'BotD':^8s}|{'Turnstile':^11s}|{'AnonWAF':^9s}|"
    print(header)
    print("-" * len(header))
    for row in assess_all_crawlers(seed=args.seed):
        def mark(passed: bool) -> str:
            return "pass" if passed else "FAIL"

        print(f"{row.crawler:<26s}|{mark(row.passes_botd):^8s}|"
              f"{mark(row.passes_turnstile):^11s}|{mark(row.passes_anonwaf):^9s}|")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Closer Look At Modern Evasive Phishing Emails' (DSN 2025)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="generate + analyse the study corpus")
    run_parser.add_argument("--scale", type=float, default=0.15,
                            help="corpus scale in (0,1]; 1.0 = the full 5,181 messages")
    run_parser.add_argument("--seed", type=int, default=2024)
    run_parser.add_argument("--export", metavar="PATH", default=None,
                            help="write the analysis artifacts to a JSON file")
    run_parser.set_defaults(handler=cmd_run)

    report_parser = subparsers.add_parser("report", help="re-derive statistics from exported artifacts")
    report_parser.add_argument("artifacts", help="path produced by 'run --export'")
    report_parser.set_defaults(handler=cmd_report)

    table1_parser = subparsers.add_parser("table1", help="crawler-vs-detector assessment (Table I)")
    table1_parser.add_argument("--seed", type=int, default=7)
    table1_parser.set_defaults(handler=cmd_table1)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
