"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``     generate the calibrated world, analyse the corpus — with
              ``--jobs N`` across a sharded worker pool (``--executor
              thread|process``; process scales past the GIL), with
              ``--checkpoint DIR`` durably, and with ``--profile``
              timing every pipeline stage — print the headline
              statistics (optionally export the artifacts).
- ``resume``  continue an interrupted checkpointed run, skipping the
              message indices that already have durable records.
- ``report``  recompute the statistics from a previously exported run.
- ``table1``  the crawler-vs-detector assessment, computed live.
- ``fsck``    validate a checkpoint's records.jsonl (per-line CRC) and
              manifest; optionally salvage the intact records to a
              repaired checkpoint directory.
- ``serve``   run the always-on analysis daemon: line-delimited JSON
              ingestion over a socket (raw RFC-822 bytes + reporter id
              in, verdict records out), per-reporter fair scheduling,
              deterministic load-shedding, rolling checkpoint
              compaction, SIGTERM drain (see :mod:`repro.serve`).
- ``submit``  send .eml files to a running daemon and print (or
              export) the verdicts.
- ``compact`` rewrite a checkpoint's records.jsonl keeping the last
              record per message index (fsck-clean, CRC-v2 output).

Graceful shutdown: during ``run``/``resume`` the first SIGINT/SIGTERM
requests a drain — workers finish the message they are on, the
checkpoint flushes, and the manifest records ``status: interrupted`` so
a bare ``resume`` continues byte-identically.  A second signal
force-exits; the checkpoint is consistent at every line boundary.
"""

from __future__ import annotations

import argparse
import sys
import time


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return jobs


def _budget_arg(value: str) -> int:
    units = int(value)
    if units < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = unlimited)")
    return units


def _guard_limit_arg(value: str) -> tuple[str, int]:
    """One ``--guard-limit key=value`` override, validated at parse time
    (unknown keys list the full vocabulary instead of failing mid-run)."""
    from repro.mail.guard import GuardLimitError, parse_guard_limit

    try:
        return parse_guard_limit(value)
    except GuardLimitError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _hostile_spec(value: str) -> str:
    seed, _, copies = value.partition(":")
    try:
        int(seed)
        if copies:
            if int(copies) < 1:
                raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected '<seed>' or '<seed>:<copies>' with copies >= 1"
        ) from None
    return value


def _stage_list(value: str) -> tuple[str, ...]:
    """Validate a ``--stages auth,parse,...`` selection against the
    registry, including the requires/provides closure, so a bad subset
    fails at argument parsing instead of mid-run."""
    from repro.core.stages import StagePlanError, build_plan

    names = tuple(name.strip() for name in value.split(",") if name.strip())
    if not names:
        raise argparse.ArgumentTypeError("expected a comma-separated list of stages")
    try:
        build_plan(names)
    except StagePlanError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return names


def _print_study_report(records, world=None) -> None:
    from repro.analysis import figures
    from repro.core.outcomes import MessageCategory

    breakdown = figures.outcome_breakdown(records)
    print(f"\nMessages analysed: {breakdown.total}")
    print("Outcome breakdown:")
    for label, category in (
        ("no web resources", MessageCategory.NO_RESOURCES),
        ("error pages", MessageCategory.ERROR),
        ("interaction required", MessageCategory.INTERACTION),
        ("downloads", MessageCategory.DOWNLOAD),
        ("active phishing", MessageCategory.ACTIVE_PHISHING),
    ):
        print(f"  {label:<22s} {breakdown.count(category):>6d} "
              f"({100 * breakdown.fraction(category):5.1f}%)")

    spear = sum(1 for record in records if record.spear_brand is not None)
    active = breakdown.count(MessageCategory.ACTIVE_PHISHING)
    if active:
        print(f"Spear phishing: {spear}/{active} ({100 * spear / active:.1f}% of active)")

    evasion = figures.section5c_evasion(records)
    print(f"Turnstile prevalence: {100 * evasion.turnstile_fraction:.1f}% | "
          f"reCAPTCHA: {100 * evasion.recaptcha_fraction:.1f}% | "
          f"faulty QR: {evasion.faulty_qr} | console hijack: {evasion.console_hijack}")
    clusters = [c for c in evasion.shared_script_clusters if c.kind == "victim-check"]
    for cluster in clusters:
        print(f"Shared victim-check script: {cluster.n_domains} domains / "
              f"{cluster.n_messages} messages")

    # Timelines need enrichment data; a triage run (--stages without
    # enrich) or a fully degraded enrich stage has none to summarize.
    if world is not None and any(record.enrichments for record in records):
        summary = figures.figure3(records, world.network)
        print(f"Timelines: median registration->delivery {summary.median_timedelta_a:.0f} h, "
              f"TLS->delivery {summary.median_timedelta_b:.0f} h "
              f"({summary.over_90d_a} domains registered >90 d ahead)")

    from repro.analysis.infrastructure import summarize_infrastructure

    infrastructure = summarize_infrastructure(records)
    print(f"Infrastructure: {infrastructure.n_domains} landing domains in "
          f"{infrastructure.n_campaigns} campaigns "
          f"({infrastructure.singleton_campaigns} singletons, largest "
          f"{infrastructure.largest_campaign_domains} domains)")


def _install_drain_handlers(runner) -> None:
    """First SIGINT/SIGTERM drains gracefully; the second force-exits."""
    import os
    import signal

    def handle(signum, frame):
        if runner.request_drain():
            print("\nDrain requested: finishing in-flight messages "
                  "(checkpoint stays consistent); signal again to force-exit.",
                  flush=True)
        else:
            print("\nForce exit (checkpoint consistent at the last completed record).",
                  flush=True)
            os._exit(130)

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, handle)
        except ValueError:
            pass  # not the main thread (embedded use): leave defaults


def _build_runner(corpus, seed: int, scale: float, jobs: int, checkpoint_dir,
                  executor: str = "auto", profile: bool = False,
                  stages: tuple[str, ...] | None = None,
                  faults: str = "off", fault_seed: int = 0,
                  budget: int | None = None, hostile: str = "",
                  guard_limits: tuple[tuple[str, int], ...] | None = None,
                  batch_size: int | None = None,
                  durability: str = "batch",
                  storage_faults: str = "off", storage_fault_seed: int = 0):
    """A CorpusRunner over ``corpus`` with per-worker CrawlerBoxes.

    ``stages`` (a validated ``--stages`` selection) reaches both
    backends: the thread backend's box factory and the process
    backend's :class:`RunnerConfig`, so every worker builds the same
    plan.  ``faults``/``fault_seed`` likewise reach both backends: the
    engine installed here serves the thread backend's shared network,
    and the same parameters travel in the RunnerConfig so each process
    worker rebuilds an identical engine.

    ``budget`` (the CLI's ``--budget``; None = pipeline default, 0 =
    unlimited), ``guard_limits`` (parsed ``--guard-limit`` pairs) and
    ``hostile`` (a ``"<seed>:<copies>"`` hostile-corpus spec) likewise
    reach both backends via PipelineConfig/RunnerConfig.

    ``storage_faults``/``storage_fault_seed`` stay in the *parent*: only
    this process writes durable state (checkpoint, manifest, export), so
    the :class:`~repro.storage.faults.StorageFaultEngine` is installed
    process-wide here and never travels in the RunnerConfig.
    """
    from repro import CrawlerBox
    from repro.core.pipeline import build_pipeline_config
    from repro.runner import CheckpointStore, CorpusRunner, RunnerConfig, StageProfiler
    from repro.storage.durable import install_storage_faults

    if faults != "off":
        from repro.web.faults import FaultEngine, fault_profile

        corpus.world.network.install_faults(
            FaultEngine(fault_profile(faults), seed=fault_seed)
        )
    if storage_faults != "off":
        from repro.storage.faults import StorageFaultEngine, storage_fault_profile

        install_storage_faults(
            StorageFaultEngine(
                storage_fault_profile(storage_faults), seed=storage_fault_seed
            )
        )
    else:
        install_storage_faults(None)
    checkpoint = (
        CheckpointStore(checkpoint_dir, durability=durability)
        if checkpoint_dir else None
    )
    profiler = StageProfiler() if profile else None
    pipeline_config = build_pipeline_config(budget, guard_limits)

    def progress(stats, completed, total):
        print(f"  ... {completed}/{total} analysed "
              f"(active {stats.active}, spear {stats.spear}, "
              f"retried {stats.retried}, dead-lettered {stats.dead_lettered})")

    run_info = {"seed": seed, "scale": scale, "stages": list(stages or ()),
                "faults": faults, "fault_seed": fault_seed,
                "storage_faults": storage_faults,
                "storage_fault_seed": storage_fault_seed}
    if budget is not None:
        run_info["budget"] = budget
    if guard_limits:
        run_info["guard_limits"] = [[key, value] for key, value in guard_limits]
    return CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(
            corpus.world, profiler=profiler, stages=stages, config=pipeline_config
        ),
        jobs=jobs,
        executor=executor,
        config=RunnerConfig(seed=seed, scale=scale, stages=stages,
                            faults=faults, fault_seed=fault_seed,
                            budget=budget, hostile=hostile,
                            guard_limits=tuple(guard_limits) if guard_limits else None),
        checkpoint=checkpoint,
        progress=progress,
        progress_every=200,
        run_info=run_info,
        profiler=profiler,
        batch_size=batch_size,
    )


def _finish_run(result, corpus, export_path) -> int:
    if result.stats.stage_seconds:
        from repro.runner import format_stage_report

        print("\nPer-stage timing:")
        print(format_stage_report(result.stats.stage_calls, result.stats.stage_seconds))
    _print_study_report(result.records, corpus.world)
    if result.stats.quarantined:
        from repro.runner import format_quarantine_report

        print()
        print(format_quarantine_report(result.records))
    if result.stats.budget_stage_failures:
        print(f"Budget-exhausted stages: {result.stats.budget_stage_failures} "
              f"(degraded to 'failed', see stage_errors)")
    if result.stats.has_fault_activity:
        from repro.runner import format_fault_report

        print()
        print(format_fault_report(result.stats))
    degraded = sum(1 for record in result.records if record.degraded_stages)
    if degraded:
        print(f"\nDegraded records (failed or skipped stages): {degraded}")
    for letter in result.dead_letters:
        print(f"DEAD LETTER: message {letter.index} after {letter.attempts} attempts: "
              f"{letter.error}")
        for attempt, error in enumerate(letter.history, start=1):
            print(f"  attempt {attempt}: {error}")
        if letter.backoff_seconds:
            print(f"  total backoff slept: {letter.backoff_seconds:.3f}s")
    if export_path:
        from repro.core.export import save_records

        save_records(result.records, export_path)
        print(f"\nArtifacts exported to {export_path}")
    return 0


def _hostile_messages(spec: str) -> list:
    from repro.dataset.hostile import hostile_corpus

    hostile_seed, _, copies = spec.partition(":")
    return hostile_corpus(seed=int(hostile_seed), copies=int(copies or 1))


def _interrupted_exit(result, total: int, checkpoint_dir) -> int:
    durable = len(result.records) + len(result.dead_letters)
    print(f"\nInterrupted: {durable}/{total} messages durable "
          f"({len(result.stats.categories)} categories so far); "
          f"checkpoint is consistent.")
    if checkpoint_dir:
        print(f"Continue with: python -m repro resume {checkpoint_dir}")
    return 130


def cmd_run(args) -> int:
    from repro import CorpusGenerator

    print(f"Generating world and corpus (seed={args.seed}, scale={args.scale}) ...")
    started = time.time()
    corpus = CorpusGenerator(seed=args.seed, scale=args.scale).generate()
    print(f"  {len(corpus.messages)} messages, {len(corpus.domain_plans)} landing domains "
          f"({time.time() - started:.1f}s)")
    messages = corpus.messages
    if args.hostile:
        hostile = _hostile_messages(args.hostile)
        messages = messages + hostile
        print(f"  + {len(hostile)} hostile messages (spec {args.hostile!r})")

    fault_seed = args.fault_seed if args.fault_seed is not None else args.seed
    storage_fault_seed = (args.storage_fault_seed
                          if args.storage_fault_seed is not None else args.seed)
    runner = _build_runner(corpus, args.seed, args.scale, args.jobs, args.checkpoint,
                           executor=args.executor, profile=args.profile,
                           stages=args.stages,
                           faults=args.faults, fault_seed=fault_seed,
                           budget=args.budget, hostile=args.hostile or "",
                           guard_limits=tuple(args.guard_limit or ()),
                           batch_size=args.batch_size,
                           durability=args.durability,
                           storage_faults=args.storage_faults,
                           storage_fault_seed=storage_fault_seed)
    if args.faults != "off":
        print(f"Fault injection: profile={args.faults}, fault-seed={fault_seed}")
    if args.storage_faults != "off":
        print(f"Storage-fault injection: profile={args.storage_faults}, "
              f"storage-fault-seed={storage_fault_seed}, "
              f"durability={args.durability}")
    if args.budget is not None:
        print(f"Per-message budget: "
              f"{'unlimited' if args.budget == 0 else f'{args.budget} work units'}")
    if args.guard_limit:
        print("Guard limits: " + ", ".join(
            f"{key}={value}" for key, value in args.guard_limit))
    print(f"Running CrawlerBox over the corpus "
          f"(jobs={args.jobs}, executor={runner.resolve_executor()}) ...")
    _install_drain_handlers(runner)
    started = time.time()
    result = runner.run(messages)
    print(f"  analysed in {time.time() - started:.1f}s")

    if result.interrupted:
        return _interrupted_exit(result, len(messages), args.checkpoint)
    return _finish_run(result, corpus, args.export)


def cmd_resume(args) -> int:
    from repro import CorpusGenerator
    from repro.runner import CheckpointStore

    store = CheckpointStore(args.checkpoint)
    try:
        manifest = store.read_manifest()
    except ValueError as exc:
        print(f"Cannot resume from {args.checkpoint}: {exc}")
        return 1
    if manifest is None:
        print(f"No manifest under {args.checkpoint}; nothing to resume")
        return 1
    if manifest.is_service:
        print(f"{args.checkpoint} belongs to a `repro serve` daemon "
              f"(status {manifest.status!r}), not an interrupted batch run.\n"
              f"Restart the daemon instead:\n"
              f"  python -m repro serve --checkpoint {args.checkpoint}\n"
              f"(it restores its admission state and message indices from "
              f"the manifest; clients resubmit anything that was rejected "
              f"while it drained)")
        return 1
    jobs = args.jobs if args.jobs is not None else manifest.jobs
    # Fault settings default to what the interrupted run used, so a
    # plain `resume` reproduces the same weather; --faults overrides.
    faults = args.faults if args.faults is not None else manifest.faults
    fault_seed = (args.fault_seed if args.fault_seed is not None
                  else (manifest.fault_seed if manifest.faults != "off"
                        else manifest.seed))
    # Disk weather likewise: a bare resume replays the interrupted
    # run's storage-fault schedule (the manifest persists it only when
    # it was on); --storage-faults overrides.
    storage_faults = (args.storage_faults if args.storage_faults is not None
                      else manifest.storage_faults)
    storage_fault_seed = (
        args.storage_fault_seed if args.storage_fault_seed is not None
        else (manifest.storage_fault_seed if manifest.storage_faults != "off"
              else manifest.seed))
    # The budget (and guard limits) likewise default to the interrupted
    # run's, so a bare `resume` reproduces its limits exactly.
    budget = args.budget if args.budget is not None else manifest.budget
    guard_limits = (
        tuple(args.guard_limit)
        if args.guard_limit
        else tuple((key, int(value)) for key, value in manifest.guard_limits or ())
    )
    scan = store.scan()
    if scan.corruption:
        print(f"WARNING: {len(scan.corruption)} corrupt line(s) in "
              f"{store.records_path} — their records will be re-analysed; "
              f"run `repro fsck {args.checkpoint}` for details")
    durable = len(scan.indices)
    print(f"Resuming run (seed={manifest.seed}, scale={manifest.scale}, "
          f"{durable}/{manifest.total_messages} already analysed, jobs={jobs}) ...")
    if faults != "off":
        print(f"Fault injection: profile={faults}, fault-seed={fault_seed}")
    if storage_faults != "off":
        print(f"Storage-fault injection: profile={storage_faults}, "
              f"storage-fault-seed={storage_fault_seed}, "
              f"durability={args.durability}")
    for letter in manifest.dead_letters:
        print(f"  prior dead letter: message {letter['index']} after "
              f"{letter['attempts']} attempts: {letter['error']}")
        for attempt, error in enumerate(letter.get("history") or (), start=1):
            print(f"    attempt {attempt}: {error}")
        if letter.get("backoff_seconds"):
            print(f"    total backoff slept: {letter['backoff_seconds']:.3f}s")

    corpus = CorpusGenerator(seed=manifest.seed, scale=manifest.scale).generate()
    messages = corpus.messages
    if args.hostile:
        messages = messages + _hostile_messages(args.hostile)
    if len(messages) != manifest.total_messages:
        print(f"Corpus mismatch: regenerated {len(messages)} messages, "
              f"manifest expects {manifest.total_messages}"
              + ("" if args.hostile else
                 " (a hostile-ingest run needs its --hostile spec again)"))
        return 1

    started = time.time()
    runner = _build_runner(corpus, manifest.seed, manifest.scale, jobs, args.checkpoint,
                           executor=args.executor, profile=args.profile,
                           stages=args.stages,
                           faults=faults, fault_seed=fault_seed,
                           budget=budget, hostile=args.hostile or "",
                           guard_limits=guard_limits,
                           batch_size=args.batch_size,
                           durability=args.durability,
                           storage_faults=storage_faults,
                           storage_fault_seed=storage_fault_seed)
    _install_drain_handlers(runner)
    result = runner.run(messages)
    print(f"  {len(result.resumed_indices)} records reused, "
          f"{len(result.records) - len(result.resumed_indices)} analysed "
          f"in {time.time() - started:.1f}s")

    if result.interrupted:
        return _interrupted_exit(result, len(messages), args.checkpoint)
    return _finish_run(result, corpus, args.export)


def cmd_report(args) -> int:
    from repro.core.export import load_records

    records = load_records(args.artifacts)
    print(f"Loaded {len(records)} records from {args.artifacts}")
    _print_study_report(records)
    return 0


def cmd_fsck(args) -> int:
    """Validate a checkpoint: per-line CRC scan, manifest consistency,
    ``endpoint.json`` sanity (serve checkpoints), leftover temp files.

    Exit codes: 0 = intact (a torn final line is tolerated and
    reported), 1 = interior corruption, an unreadable manifest or
    endpoint file, or a missing checkpoint.
    """
    import json
    import pathlib

    from repro.runner import CheckpointStore
    from repro.runner.checkpoint import ManifestCorrupt

    directory = pathlib.Path(args.checkpoint)
    if not directory.is_dir():
        print(f"No checkpoint directory at {directory}")
        return 1
    store = CheckpointStore(directory)
    scan = store.scan()
    print(f"{store.records_path}: {scan.total_lines} line(s), "
          f"{len(scan.entries)} intact record(s), "
          f"{len(set(scan.indices))} distinct message indices")

    for issue in scan.issues:
        label = "torn tail (tolerated)" if issue.torn_tail else "CORRUPT"
        print(f"  line {issue.line_number}: {label} [{issue.kind}] {issue.detail}")

    manifest = None
    manifest_broken = False
    try:
        manifest = store.read_manifest()
    except ManifestCorrupt as exc:
        # Torn write or bit rot, not a version skew: the records are
        # independent of the manifest, so repair can still salvage.
        manifest_broken = True
        print(f"{store.manifest_path}: UNREADABLE ({exc.reason})")
        print(f"  hint: the records are independent of the manifest — "
              f"`repro fsck {directory} --repair <dest>` salvages every "
              f"intact record; then `repro run --checkpoint <dest> "
              f"--seed/--scale` re-creates the manifest and resumes")
    except (ValueError, KeyError) as exc:
        manifest_broken = True
        print(f"{store.manifest_path}: UNREADABLE ({exc})")
    if manifest is None and not manifest_broken:
        print(f"{store.manifest_path}: missing (records-only checkpoint)")
    elif manifest is not None:
        print(f"{store.manifest_path}: status={manifest.status}, "
              f"completed={manifest.completed}/{manifest.total_messages}, "
              f"dead letters={len(manifest.dead_letters)}")
        dead = {letter.get("index") for letter in manifest.dead_letters}
        unaccounted = sorted(
            set(range(manifest.total_messages)) - scan.indices - dead
        )
        if unaccounted:
            preview = ", ".join(str(index) for index in unaccounted[:10])
            if len(unaccounted) > 10:
                preview += ", ..."
            print(f"  {len(unaccounted)} message(s) without a durable record "
                  f"(lost to corruption or never analysed): {preview}")
        if manifest.drained:
            print(f"  drained in-flight indices: "
                  f"{', '.join(str(index) for index in manifest.drained)}")

    # Serve checkpoints carry an endpoint.json; a torn one sends every
    # `repro submit --checkpoint` to a parse error, so diagnose it here.
    endpoint_broken = False
    endpoint_path = directory / "endpoint.json"
    if endpoint_path.exists():
        try:
            endpoint = json.loads(endpoint_path.read_text(encoding="utf-8"))
            if not isinstance(endpoint, dict) or not {"host", "port"} <= set(endpoint):
                raise ValueError("missing host/port keys")
        except (ValueError, OSError) as exc:
            endpoint_broken = True
            reason = getattr(exc, "msg", None) or str(exc)
            print(f"{endpoint_path}: UNREADABLE ({reason})")
            print("  hint: stale or torn endpoint file — delete it; the "
                  "daemon rewrites it on startup (submit can use --port "
                  "meanwhile)")
        else:
            print(f"{endpoint_path}: daemon endpoint "
                  f"{endpoint['host']}:{endpoint['port']}")

    # Leftover temp files mark a crash (or torn-rename fault) between
    # temp write and atomic rename; the live files are intact.
    for leftover in sorted(path for path in directory.iterdir()
                           if path.name.endswith(".tmp")):
        print(f"{leftover}: leftover temp file ({leftover.stat().st_size} "
              f"byte(s)) — a rewrite crashed between write and rename; "
              f"the live file is intact; safe to delete")

    corrupt = scan.corruption
    if corrupt:
        print(f"RESULT: {len(corrupt)} corrupt line(s) — "
              f"records on those lines are lost")
    else:
        print("RESULT: checkpoint intact"
              + (" (torn tail will re-analyse on resume)"
                 if any(issue.torn_tail for issue in scan.issues) else ""))

    if args.repair:
        repaired = store.salvage_to(args.repair)
        salvaged = len(repaired.completed_indices())
        if manifest_broken or manifest is None:
            print(f"Salvaged {salvaged} record(s) to {repaired.directory} "
                  f"(no readable source manifest: run `repro run "
                  f"--checkpoint {repaired.directory} --seed S --scale C` "
                  f"to re-create one — the salvaged records are reused, "
                  f"the rest re-analyse)")
        else:
            print(f"Salvaged {salvaged} record(s) to {repaired.directory} "
                  f"(manifest marked 'interrupted'; resume it to re-analyse "
                  f"the rest)")
    return 1 if (corrupt or manifest_broken or endpoint_broken) else 0


def cmd_serve(args) -> int:
    """Run the always-on analysis daemon (see :mod:`repro.serve`)."""
    import signal

    from repro._budget import DEFAULT_WORK_LIMIT
    from repro.serve import ServeConfig, ServeDaemon
    from repro.serve.admission import AdmissionConfig

    # Admission budgets are denominated in the per-message work budget:
    # the operator thinks in messages per arrival, the buckets in the
    # work units those messages may consume.
    cost = args.budget if args.budget else DEFAULT_WORK_LIMIT

    def units(messages: float | None) -> int | None:
        return None if messages is None else int(messages * cost)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        seed=args.seed,
        scale=args.scale,
        jobs=args.jobs,
        executor=args.executor,
        batch_size=args.batch_size,
        admission=AdmissionConfig(
            cost=cost,
            global_rate=units(args.admit_rate),
            global_burst=units(args.admit_burst),
            reporter_rate=units(args.reporter_rate),
            reporter_burst=units(args.reporter_burst),
        ),
        backlog_high_water=args.backlog,
        backlog_low_water=max(1, args.backlog // 4),
        compact_lines=args.compact_lines,
        retain=args.retain,
        budget=args.budget,
        guard_limits=tuple(args.guard_limit or ()) or None,
        durability=args.durability,
        storage_faults=args.storage_faults,
        storage_fault_seed=(args.storage_fault_seed
                            if args.storage_fault_seed is not None
                            else args.seed),
        max_sessions=args.max_sessions,
        line_deadline=args.line_deadline,
        idle_timeout=args.idle_timeout,
        send_deadline=args.send_deadline,
        strike_budget=args.strikes,
        listen_backlog=args.listen_backlog,
        flush_timeout=args.flush_timeout,
    )
    daemon = ServeDaemon(config, args.checkpoint)
    if config.storage_faults != "off":
        print(f"Storage-fault injection: profile={config.storage_faults}, "
              f"storage-fault-seed={config.storage_fault_seed}, "
              f"durability={config.durability}", flush=True)

    def handle(signum, frame):
        daemon.request_shutdown()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, handle)
        except ValueError:
            pass
    try:
        daemon.start()
    except RuntimeError as exc:
        print(f"Cannot serve: {exc}")
        return 1
    print(f"repro serve: listening on {config.host}:{daemon.port} "
          f"(seed={config.seed}, scale={config.scale}, jobs={config.jobs}); "
          f"endpoint written to {daemon.directory}/endpoint.json; "
          f"SIGTERM drains.", flush=True)
    if args.admit_rate is not None:
        print(f"  admission: {args.admit_rate:g} msg/arrival global"
              + (f", {args.reporter_rate:g} msg/arrival per reporter"
                 if args.reporter_rate is not None else ""), flush=True)
    code = daemon.wait()
    print(f"repro serve: drained ({daemon.completed} completed, "
          f"{daemon.shed} shed, {daemon.rejected} rejected); "
          f"manifest status 'stopped'.", flush=True)
    # The drain parks the process engine's workers in the warm registry
    # for in-process reuse; this process is exiting, so tear them down
    # now — multiprocessing's own atexit join can run before the
    # registry's, leaving the drained daemon blocked on parked workers
    # that were never told to stop.
    from repro.runner.pool import drop_warm_pool

    drop_warm_pool()
    return code


def cmd_submit(args) -> int:
    """Send .eml files to a running daemon; print/export the verdicts."""
    import json
    import pathlib

    from repro.serve.client import ServeClient
    from repro.serve.server import ENDPOINT_NAME

    host, port = args.host, args.port
    if port is None:
        if not args.checkpoint:
            print("submit needs --port or --checkpoint DIR "
                  "(to read the daemon's endpoint.json)")
            return 1
        endpoint_path = pathlib.Path(args.checkpoint) / ENDPOINT_NAME
        if not endpoint_path.exists():
            print(f"No {endpoint_path}; is the daemon running?")
            return 1
        endpoint = json.loads(endpoint_path.read_text(encoding="utf-8"))
        host, port = endpoint["host"], endpoint["port"]

    paths: list[pathlib.Path] = []
    for spec in args.paths:
        path = pathlib.Path(spec)
        if path.is_dir():
            paths.extend(sorted(path.glob("*.eml")))
        else:
            paths.append(path)
    if not paths:
        print("Nothing to submit (no .eml files found)")
        return 1

    problems = 0
    exported: list[dict] = []
    try:
        with ServeClient(host, port, timeout=args.timeout) as client:
            by_id: dict[str, pathlib.Path] = {}
            for path in paths:
                outcome = client.submit_with_retry(
                    path.read_bytes(),
                    reporter=args.reporter,
                    max_retries=max(0, args.retry),
                )
                by_id[outcome.client_id] = path
                if outcome.status == "accepted":
                    retried = f" after {outcome.retries} retries" if outcome.retries else ""
                    print(f"{path}: accepted (message index {outcome.message_index})"
                          f"{retried}")
                else:
                    problems += 1
                    extra = (f"; retry after {outcome.retry_after_submissions} "
                             f"submission(s)"
                             if outcome.retry_after_submissions is not None else "")
                    print(f"{path}: {outcome.status} ({outcome.reason}){extra}")
            outcomes = client.wait_verdicts(timeout=args.timeout)
            for outcome in outcomes:
                path = by_id.get(outcome.client_id)
                if outcome.status == "verdict":
                    record = outcome.record or {}
                    print(f"{path}: verdict index={outcome.message_index} "
                          f"category={record.get('category')}")
                    exported.append(record)
                elif outcome.status == "failed":
                    problems += 1
                    print(f"{path}: FAILED after retries: {outcome.error}")
    except (OSError, EOFError, TimeoutError) as exc:
        print(f"submit failed: {exc}")
        return 1
    if args.export and exported:
        from repro.storage.durable import durable_write_text, retrying

        payload = json.dumps(exported, indent=2, sort_keys=True)
        retrying(lambda: durable_write_text(pathlib.Path(args.export), payload))
        print(f"{len(exported)} verdict record(s) exported to {args.export}")
    return 1 if problems else 0


def cmd_compact(args) -> int:
    """Rewrite records.jsonl keeping the last record per message index."""
    from repro.runner import CheckpointStore

    store = CheckpointStore(args.checkpoint)
    if not store.records_path.exists():
        print(f"No records at {store.records_path}")
        return 1
    try:
        manifest = store.read_manifest()
    except ValueError as exc:
        print(f"Unreadable manifest under {args.checkpoint}: {exc}; "
              f"run `repro fsck` first")
        return 1
    if manifest is not None and manifest.status in ("running", "serving"):
        print(f"{args.checkpoint} is live (manifest status {manifest.status!r}): "
              f"its owner holds the records file open and compacting under it "
              f"would race the writer.\n"
              f"Stop it first (SIGTERM drains cleanly), or — for a daemon — "
              f"let `repro serve --compact-lines` compact in place.")
        return 1
    result = store.compact(retain=args.retain)
    print(f"{store.records_path}: {result.lines_before} -> {result.lines_after} "
          f"line(s)")
    print(f"  superseded duplicates dropped: {result.duplicates_dropped}")
    print(f"  defective lines dropped:       {result.corrupt_dropped}")
    if result.retired:
        print(f"  retired by --retain cap:       {result.retired}")
    print(f"  bytes: {result.bytes_before} -> {result.bytes_after} "
          f"({result.reclaimed_bytes} reclaimed); output is fsck-clean "
          f"(CRC v2, ascending index order)")
    return 0


def cmd_table1(args) -> int:
    from repro.crawlers.assessment import assess_all_crawlers

    header = f"{'crawler':<26s}|{'BotD':^8s}|{'Turnstile':^11s}|{'AnonWAF':^9s}|"
    print(header)
    print("-" * len(header))
    for row in assess_all_crawlers(seed=args.seed):
        def mark(passed: bool) -> str:
            return "pass" if passed else "FAIL"

        print(f"{row.crawler:<26s}|{mark(row.passes_botd):^8s}|"
              f"{mark(row.passes_turnstile):^11s}|{mark(row.passes_anonwaf):^9s}|")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Closer Look At Modern Evasive Phishing Emails' (DSN 2025)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="generate + analyse the study corpus")
    run_parser.add_argument("--scale", type=float, default=0.15,
                            help="corpus scale in (0,1]; 1.0 = the full 5,181 messages")
    run_parser.add_argument("--seed", type=int, default=2024)
    run_parser.add_argument("--jobs", type=_positive_int, default=1,
                            help="workers, each with a private CrawlerBox "
                                 "(records are identical for any jobs count); "
                                 "throughput scales with physical cores under "
                                 "--executor process — asking for more jobs than "
                                 "cores just adds scheduling overhead")
    run_parser.add_argument("--executor", choices=("auto", "thread", "process"),
                            default="auto",
                            help="worker backend: 'process' scales past the GIL "
                                 "(workers serialize their own records and ship "
                                 "batched frames; expect near-linear speedup up to "
                                 "the core count, amortized further by the warm "
                                 "pool across resumes); 'thread' starts instantly "
                                 "but tops out near one core of analysis; 'auto' "
                                 "picks process when --jobs > 1")
    run_parser.add_argument("--batch-size", type=_positive_int, default=None,
                            metavar="N",
                            help="messages per dispatch to a process worker "
                                 "(default: adaptive from corpus size and --jobs); "
                                 "results travel back in batched frames either way, "
                                 "so this mainly tunes tail-end load balance")
    run_parser.add_argument("--profile", action="store_true",
                            help="collect per-stage timings and print the breakdown")
    run_parser.add_argument("--stages", type=_stage_list, default=None,
                            metavar="NAME,NAME,...",
                            help="run only these pipeline stages (e.g. 'auth,parse' "
                                 "for crawl-free triage); unselected stages are "
                                 "recorded as skipped on each record's stage_status; "
                                 "a stage's upstream providers must be included")
    run_parser.add_argument("--faults", choices=("off", "light", "heavy", "hostile"),
                            default="off",
                            help="inject deterministic network faults (DNS flaps, "
                                 "timeouts, TLS failures, 5xx/429, stalls, redirect "
                                 "loops) into the simulated internet; the resilient "
                                 "crawl path retries/degrades instead of dying")
    run_parser.add_argument("--fault-seed", type=int, default=None, metavar="N",
                            help="seed for the fault schedule (default: --seed); a "
                                 "fixed fault-seed gives byte-identical records for "
                                 "any --jobs count or executor")
    run_parser.add_argument("--budget", type=_budget_arg, default=None, metavar="UNITS",
                            help="per-message work budget in abstract units "
                                 "(JS steps, crawl hops, OCR tiles); a message that "
                                 "exhausts it has that stage degraded to 'failed' "
                                 "instead of wedging a worker; 0 = unlimited "
                                 "(default: the pipeline's built-in 2,000,000)")
    run_parser.add_argument("--guard-limit", type=_guard_limit_arg, action="append",
                            default=None, metavar="KEY=VALUE",
                            help="override one ingestion-guard structural cap "
                                 "(repeatable), e.g. --guard-limit max_parts=64 "
                                 "--guard-limit max_depth=10; unknown keys list "
                                 "the vocabulary; reaches thread and process "
                                 "workers identically")
    run_parser.add_argument("--hostile", type=_hostile_spec, default=None,
                            metavar="SEED[:COPIES]",
                            help="append the seeded hostile corpus "
                                 "(repro.dataset.hostile) after the calibrated "
                                 "messages — pathological MIME/header/payload shapes "
                                 "that must quarantine, never crash")
    run_parser.add_argument("--checkpoint", metavar="DIR", default=None,
                            help="append finished records to DIR/records.jsonl so the "
                                 "run can be resumed after an interruption; each line "
                                 "carries a CRC32 suffix (see 'repro fsck')")
    run_parser.add_argument("--durability", choices=("none", "batch", "always"),
                            default="batch",
                            help="fsync policy for durable writes: 'none' never "
                                 "fsyncs (page cache only), 'batch' fsyncs the "
                                 "records file every 256 appends + on close and "
                                 "all whole-file replacements (default), 'always' "
                                 "additionally fsyncs every append (lose at most "
                                 "one record to power failure)")
    run_parser.add_argument("--storage-faults",
                            choices=("off", "light", "heavy", "hostile"),
                            default="off",
                            help="inject deterministic storage faults (short "
                                 "writes, ENOSPC episodes, EIO, fsync failures, "
                                 "torn renames) into every durable write; the "
                                 "crash-consistent write path retries/degrades "
                                 "instead of corrupting the checkpoint")
    run_parser.add_argument("--storage-fault-seed", type=int, default=None,
                            metavar="N",
                            help="seed for the storage-fault schedule (default: "
                                 "--seed); decisions key on file basenames, so "
                                 "the same seed reproduces the same disk weather "
                                 "in any checkpoint directory")
    run_parser.add_argument("--export", metavar="PATH", default=None,
                            help="write the analysis artifacts to a JSON file")
    run_parser.set_defaults(handler=cmd_run)

    resume_parser = subparsers.add_parser(
        "resume", help="continue an interrupted checkpointed run")
    resume_parser.add_argument("checkpoint", help="checkpoint directory of the interrupted run")
    resume_parser.add_argument("--jobs", type=_positive_int, default=None,
                               help="override the manifest's worker count")
    resume_parser.add_argument("--executor", choices=("auto", "thread", "process"),
                               default="auto", help="worker backend (see 'run --executor')")
    resume_parser.add_argument("--batch-size", type=_positive_int, default=None,
                               metavar="N",
                               help="messages per process-worker dispatch "
                                    "(see 'run --batch-size')")
    resume_parser.add_argument("--profile", action="store_true",
                               help="collect per-stage timings and print the breakdown")
    resume_parser.add_argument("--stages", type=_stage_list, default=None,
                               metavar="NAME,NAME,...",
                               help="run only these pipeline stages (see 'run --stages')")
    resume_parser.add_argument("--faults", choices=("off", "light", "heavy", "hostile"),
                               default=None,
                               help="fault-injection profile (see 'run --faults'); "
                                    "defaults to the interrupted run's profile from "
                                    "the manifest")
    resume_parser.add_argument("--fault-seed", type=int, default=None, metavar="N",
                               help="fault schedule seed (default: the manifest's)")
    resume_parser.add_argument("--budget", type=_budget_arg, default=None,
                               metavar="UNITS",
                               help="per-message work budget (see 'run --budget'); "
                                    "defaults to the interrupted run's budget from "
                                    "the manifest")
    resume_parser.add_argument("--guard-limit", type=_guard_limit_arg, action="append",
                               default=None, metavar="KEY=VALUE",
                               help="override one ingestion-guard cap (repeatable; "
                                    "see 'run --guard-limit'); defaults to the "
                                    "interrupted run's overrides from the manifest")
    resume_parser.add_argument("--hostile", type=_hostile_spec, default=None,
                               metavar="SEED[:COPIES]",
                               help="re-specify the hostile-corpus spec of the "
                                    "interrupted run (hostile messages are appended "
                                    "by regeneration, not stored)")
    resume_parser.add_argument("--durability", choices=("none", "batch", "always"),
                               default="batch",
                               help="fsync policy (see 'run --durability'); "
                                    "per-invocation, not persisted in the manifest")
    resume_parser.add_argument("--storage-faults",
                               choices=("off", "light", "heavy", "hostile"),
                               default=None,
                               help="storage-fault profile (see 'run "
                                    "--storage-faults'); defaults to the "
                                    "interrupted run's profile from the manifest")
    resume_parser.add_argument("--storage-fault-seed", type=int, default=None,
                               metavar="N",
                               help="storage-fault schedule seed (default: the "
                                    "manifest's)")
    resume_parser.add_argument("--export", metavar="PATH", default=None,
                               help="write the completed artifacts to a JSON file")
    resume_parser.set_defaults(handler=cmd_resume)

    report_parser = subparsers.add_parser("report", help="re-derive statistics from exported artifacts")
    report_parser.add_argument("artifacts", help="path produced by 'run --export'")
    report_parser.set_defaults(handler=cmd_report)

    table1_parser = subparsers.add_parser("table1", help="crawler-vs-detector assessment (Table I)")
    table1_parser.add_argument("--seed", type=int, default=7)
    table1_parser.set_defaults(handler=cmd_table1)

    fsck_parser = subparsers.add_parser(
        "fsck", help="validate a checkpoint's records and manifest")
    fsck_parser.add_argument("checkpoint", help="checkpoint directory to validate")
    fsck_parser.add_argument("--repair", metavar="DIR", default=None,
                             help="salvage every intact record (last append wins) "
                                  "into a fresh checkpoint at DIR whose manifest is "
                                  "marked 'interrupted' so lost records re-analyse "
                                  "on resume")
    fsck_parser.set_defaults(handler=cmd_fsck)

    serve_parser = subparsers.add_parser(
        "serve", help="run the always-on analysis daemon (socket ingestion API)")
    serve_parser.add_argument("--checkpoint", metavar="DIR", required=True,
                              help="daemon state directory: records.jsonl, manifest "
                                   "(status 'serving'/'stopped'), and endpoint.json "
                                   "with the bound port; restart with the same DIR "
                                   "to resume byte-identically")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="listening port (default 0 = ephemeral; the "
                                   "bound port lands in DIR/endpoint.json)")
    serve_parser.add_argument("--seed", type=int, default=2024,
                              help="world seed; verdicts are byte-identical to a "
                                   "batch run with the same seed")
    serve_parser.add_argument("--scale", type=float, default=0.15,
                              help="world scale (see 'run --scale')")
    serve_parser.add_argument("--jobs", type=_positive_int, default=1)
    serve_parser.add_argument("--executor", choices=("auto", "thread", "process"),
                              default="auto",
                              help="worker backend (see 'run --executor')")
    serve_parser.add_argument("--batch-size", type=_positive_int, default=8,
                              help="submissions per micro-batch handed to a worker")
    serve_parser.add_argument("--admit-rate", type=float, default=None,
                              metavar="MSGS",
                              help="global admission rate in messages per arriving "
                                   "submission (e.g. 0.5 = admit at most half the "
                                   "sustained stream); excess is shed with an "
                                   "explicit 'overloaded' response; default: no "
                                   "global limit")
    serve_parser.add_argument("--admit-burst", type=float, default=None,
                              metavar="MSGS",
                              help="global admission burst capacity in messages "
                                   "(default 64)")
    serve_parser.add_argument("--reporter-rate", type=float, default=None,
                              metavar="MSGS",
                              help="per-reporter admission rate in messages per "
                                   "arriving submission (default: no per-reporter "
                                   "limit)")
    serve_parser.add_argument("--reporter-burst", type=float, default=None,
                              metavar="MSGS",
                              help="per-reporter burst capacity in messages "
                                   "(default 16)")
    serve_parser.add_argument("--backlog", type=_positive_int, default=256,
                              help="accepted-but-unfinished submissions above which "
                                   "sessions stop reading (lossless backpressure, "
                                   "distinct from admission shedding)")
    serve_parser.add_argument("--budget", type=_budget_arg, default=None,
                              metavar="UNITS",
                              help="per-message work budget (see 'run --budget'); "
                                   "also denominates the admission buckets")
    serve_parser.add_argument("--guard-limit", type=_guard_limit_arg, action="append",
                              default=None, metavar="KEY=VALUE",
                              help="override one ingestion-guard cap (repeatable; "
                                   "see 'run --guard-limit')")
    serve_parser.add_argument("--compact-lines", type=int, default=100_000,
                              metavar="N",
                              help="compact records.jsonl in place once it exceeds "
                                   "N lines (0 = never)")
    serve_parser.add_argument("--retain", type=_positive_int, default=None,
                              metavar="N",
                              help="when compacting, keep only the N newest message "
                                   "indices (verdicts were already streamed to "
                                   "submitters; default: keep all)")
    serve_parser.add_argument("--durability", choices=("none", "batch", "always"),
                              default="batch",
                              help="fsync policy for the daemon's durable writes "
                                   "(see 'run --durability')")
    serve_parser.add_argument("--storage-faults",
                              choices=("off", "light", "heavy", "hostile"),
                              default="off",
                              help="inject deterministic storage faults into the "
                                   "daemon's durable writes (see 'run "
                                   "--storage-faults'); the daemon degrades to "
                                   "read-only under a persistent episode instead "
                                   "of losing accepted records, and recovers when "
                                   "the disk does (watch /healthz and /stats)")
    serve_parser.add_argument("--storage-fault-seed", type=int, default=None,
                              metavar="N",
                              help="storage-fault schedule seed (default: --seed)")
    serve_parser.add_argument("--max-sessions", type=_positive_int, default=64,
                              metavar="N",
                              help="concurrent-session cap; excess connections are "
                                   "refused with an explicit 'busy' response (never "
                                   "ticking the admission clock), which bounds the "
                                   "daemon's thread count")
    serve_parser.add_argument("--line-deadline", type=float, default=30.0,
                              metavar="SECONDS",
                              help="wall-clock budget to finish one protocol line "
                                   "once its first byte arrives (slowloris guard; "
                                   "0 disables)")
    serve_parser.add_argument("--idle-timeout", type=float, default=300.0,
                              metavar="SECONDS",
                              help="quiet seconds between lines before an idle "
                                   "session is reaped; sessions still owed verdicts "
                                   "are never reaped (0 disables)")
    serve_parser.add_argument("--send-deadline", type=float, default=30.0,
                              metavar="SECONDS",
                              help="budget to stream one response to a slow peer "
                                   "before declaring it dead (the verdict stays "
                                   "durable; only the socket write is abandoned)")
    serve_parser.add_argument("--strikes", type=_positive_int, default=8,
                              metavar="N",
                              help="malformed protocol lines one session may send "
                                   "before a clean close")
    serve_parser.add_argument("--listen-backlog", type=_positive_int, default=64,
                              metavar="N",
                              help="listen(2) backlog for the ingress socket")
    serve_parser.add_argument("--flush-timeout", type=float, default=300.0,
                              metavar="SECONDS",
                              help="seconds a 'bye' waits for outstanding verdicts "
                                   "before closing anyway")
    serve_parser.set_defaults(handler=cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit", help="send .eml files to a running daemon")
    submit_parser.add_argument("paths", nargs="+",
                               help=".eml files and/or directories of *.eml")
    submit_parser.add_argument("--host", default="127.0.0.1")
    submit_parser.add_argument("--port", type=int, default=None,
                               help="daemon port (default: read from "
                                    "--checkpoint DIR/endpoint.json)")
    submit_parser.add_argument("--checkpoint", metavar="DIR", default=None,
                               help="the daemon's state directory, used to "
                                    "discover its endpoint when --port is absent")
    submit_parser.add_argument("--reporter", default="anonymous",
                               help="reporter identity for fair scheduling and "
                                    "per-reporter admission budgets")
    submit_parser.add_argument("--timeout", type=float, default=120.0,
                               help="seconds to wait for admission and verdicts")
    submit_parser.add_argument("--retry", type=int, default=2, metavar="N",
                               help="automatic resubmissions per file when the "
                                    "daemon answers 'overloaded' with a "
                                    "retry_after_submissions hint (0 disables)")
    submit_parser.add_argument("--export", metavar="PATH", default=None,
                               help="write the verdict records to a JSON file")
    submit_parser.set_defaults(handler=cmd_submit)

    compact_parser = subparsers.add_parser(
        "compact", help="rewrite a checkpoint keeping the last record per index")
    compact_parser.add_argument("checkpoint", help="checkpoint directory to compact")
    compact_parser.add_argument("--retain", type=_positive_int, default=None,
                                metavar="N",
                                help="keep only the N newest message indices "
                                     "(default: keep all, dedupe only)")
    compact_parser.set_defaults(handler=cmd_compact)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
