"""CrawlerBox: the paper's analysis infrastructure (Figure 1).

The pipeline's three phases map onto this subpackage:

1. **Fetching/pruning** — :mod:`~repro.core.triage` models the funnel of
   Section IV-A (60 M inbound emails/month, gateway filtering, user
   reports, expert tagging); the pipeline itself consumes only the
   expert-confirmed malicious messages.
2. **Parsing + crawling** — :mod:`~repro.core.pipeline` drives the
   recursive parser of :mod:`repro.mail.parser`, dynamically loads
   HTML/JS attachments, and crawls every extracted URL with NotABot.
3. **Logging** — :mod:`~repro.core.artifacts` records URLs, certificates,
   IPs, requests, screenshots (as fuzzy hashes), and evasion signals;
   :mod:`~repro.core.outcomes` classifies each message into the Section V
   buckets; :mod:`~repro.core.spearphish` is the pHash+dHash lookalike
   classifier; :mod:`~repro.core.report` aggregates the key findings.
"""

from repro.core.pipeline import CrawlerBox, PipelineConfig
from repro.core.outcomes import MessageCategory, PageClass
from repro.core.spearphish import SpearPhishClassifier
from repro.core.artifacts import MessageRecord, UrlCrawl
from repro.core.triage import TriageFunnel, simulate_triage_funnel

__all__ = [
    "CrawlerBox",
    "PipelineConfig",
    "MessageCategory",
    "PageClass",
    "SpearPhishClassifier",
    "MessageRecord",
    "UrlCrawl",
    "TriageFunnel",
    "simulate_triage_funnel",
]
