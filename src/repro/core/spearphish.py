"""The pHash+dHash lookalike-login classifier (Section V-A).

Reference screenshots come from *visiting the five legitimate portals*
with the crawler; candidate screenshots are compared with both fuzzy
hashes and matched when **both** Hamming distances fall under the
threshold — "the combination of both hashes proved to result in better
performance in identifying fake lookalike login pages".  Both hashes
work on grayscale data, which is why the hue-rotate(4deg) evasion fails
against this classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.imaging.image import Image
from repro.imaging.phash import dhash, hamming_distance, phash

#: Default per-hash Hamming-distance threshold (out of 64 bits), chosen
#: "manually ... tailored to our needs" per the paper.
DEFAULT_THRESHOLD = 10


@dataclass(frozen=True)
class ReferencePage:
    """One known-legitimate login page."""

    brand: str
    phash: int
    dhash: int


@dataclass(frozen=True)
class SpearMatch:
    brand: str
    phash_distance: int
    dhash_distance: int

    @property
    def combined_distance(self) -> int:
        return self.phash_distance + self.dhash_distance


class SpearPhishClassifier:
    """Matches screenshots against the studied companies' login pages."""

    def __init__(self, threshold: int = DEFAULT_THRESHOLD):
        self.threshold = threshold
        self.references: list[ReferencePage] = []

    # ------------------------------------------------------------------
    def add_reference(self, brand: str, screenshot: Image) -> None:
        self.references.append(
            ReferencePage(brand=brand, phash=phash(screenshot), dhash=dhash(screenshot))
        )

    @classmethod
    def from_portals(cls, network, brands, threshold: int = DEFAULT_THRESHOLD) -> "SpearPhishClassifier":
        """Build references by crawling the legitimate portals.

        The reference crawl is deterministic (fixed RNG, fixed brand
        list), so its pHash/dHash results are memoized on the network
        object: every worker's CrawlerBox shares one portal crawl per
        world instead of re-rendering and re-hashing the five portals
        per worker.
        """
        key = tuple((brand.name, brand.login_domain) for brand in brands)
        cache = network.__dict__.setdefault("_spear_reference_cache", {})
        references = cache.get(key)
        if references is None:
            references = cls._crawl_references(network, brands)
            cache.setdefault(key, references)
        classifier = cls(threshold=threshold)
        classifier.references = list(references)
        return classifier

    @staticmethod
    def _crawl_references(network, brands) -> tuple[ReferencePage, ...]:
        import random

        from repro.crawlers.notabot import NotABot

        crawler = NotABot(network, rng=random.Random(99))
        references = []
        for brand in brands:
            result = crawler.crawl_url(f"https://{brand.login_domain}/")
            screenshot = result.screenshot()
            if screenshot is not None:
                references.append(
                    ReferencePage(
                        brand=brand.name, phash=phash(screenshot), dhash=dhash(screenshot)
                    )
                )
        return tuple(references)

    # ------------------------------------------------------------------
    def match(self, screenshot: Image) -> SpearMatch | None:
        """The closest reference within threshold on *both* hashes."""
        candidate_phash = phash(screenshot)
        candidate_dhash = dhash(screenshot)
        best: SpearMatch | None = None
        for reference in self.references:
            p_distance = hamming_distance(candidate_phash, reference.phash)
            d_distance = hamming_distance(candidate_dhash, reference.dhash)
            if p_distance <= self.threshold and d_distance <= self.threshold:
                match = SpearMatch(reference.brand, p_distance, d_distance)
                if best is None or match.combined_distance < best.combined_distance:
                    best = match
        return best

    def match_with_single_hash(self, screenshot: Image, which: str) -> SpearMatch | None:
        """Ablation helper: classify using only pHash or only dHash."""
        candidate_phash = phash(screenshot)
        candidate_dhash = dhash(screenshot)
        best: SpearMatch | None = None
        for reference in self.references:
            p_distance = hamming_distance(candidate_phash, reference.phash)
            d_distance = hamming_distance(candidate_dhash, reference.dhash)
            distance = p_distance if which == "phash" else d_distance
            if distance <= self.threshold:
                match = SpearMatch(reference.brand, p_distance, d_distance)
                key = match.phash_distance if which == "phash" else match.dhash_distance
                best_key = None if best is None else (
                    best.phash_distance if which == "phash" else best.dhash_distance
                )
                if best is None or key < best_key:
                    best = match
        return best
