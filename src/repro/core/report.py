"""Key-findings aggregation over a set of analysis records.

Produces the headline numbers the paper's "Key Findings" boxes report,
computed from :class:`~repro.core.artifacts.MessageRecord` fields only
(never from generator ground truth).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory


@dataclass
class KeyFindings:
    """Aggregate statistics over an analyzed corpus."""

    total_messages: int = 0
    category_counts: Counter = field(default_factory=Counter)
    spear_messages: int = 0
    distinct_landing_urls: int = 0
    distinct_landing_domains: int = 0
    hotlink_spear_messages: int = 0
    auth_all_pass: int = 0
    noise_padded: int = 0
    faulty_qr_messages: int = 0
    qr_messages: int = 0
    local_login_form_messages: int = 0

    def category_fraction(self, category: str) -> float:
        if not self.total_messages:
            return 0.0
        return self.category_counts[category] / self.total_messages

    @property
    def spear_fraction_of_active(self) -> float:
        active = self.category_counts[MessageCategory.ACTIVE_PHISHING]
        return self.spear_messages / active if active else 0.0


def summarize(records: list[MessageRecord]) -> KeyFindings:
    """Compute the key findings from analyzed records."""
    from repro.qr.scanner import extract_url_strict

    findings = KeyFindings(total_messages=len(records))
    urls: set[str] = set()
    domains: set[str] = set()
    for record in records:
        findings.category_counts[record.category] += 1
        if record.spear_brand is not None:
            findings.spear_messages += 1
            if _loads_brand_resources(record):
                findings.hotlink_spear_messages += 1
        for url in record.landing_urls:
            urls.add(url)
        for domain in record.landing_domains:
            domains.add(domain)
        if record.auth is not None and record.auth.all_pass:
            findings.auth_all_pass += 1
        if record.noise_padded:
            findings.noise_padded += 1
        if record.qr_payloads:
            findings.qr_messages += 1
            if any(extract_url_strict(payload) is None for _, payload in record.qr_payloads):
                findings.faulty_qr_messages += 1
        if record.local_login_form:
            findings.local_login_form_messages += 1
    findings.distinct_landing_urls = len(urls)
    findings.distinct_landing_domains = len(domains)
    return findings


def _loads_brand_resources(record: MessageRecord) -> bool:
    """Did the phishing page pull resources from the impersonated org?

    Section V-A's referral-monitoring finding: the page requests the
    brand's logo/background from the brand's own domain.
    """
    if record.spear_brand is None:
        return False
    brand_token = record.spear_brand.lower().replace(" ", "")
    for crawl in record.crawls:
        for url, kind, _referrer in crawl.resource_requests:
            if kind == "resource" and brand_token in url:
                return True
    return False
