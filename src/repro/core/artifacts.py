"""Per-message analysis records — the pipeline's logged artifacts.

Section IV-C: "The crawling phase is thoroughly logged, capturing the
visited domains, their associated TLS certificates, corresponding IP
addresses, as well as the requests and responses exchanged with the
browser [...] The collected data is enriched with WHOIS information,
Shodan service banners and Cisco Umbrella details.  Moreover, once the
page is fully loaded, a screenshot is taken."

Records keep *derived* data (hashes, signals, statuses) rather than the
live sessions so a full-corpus run stays memory-bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.session import SessionSignals
from repro.enrichment.enricher import EnrichmentRecord
from repro.mail.auth import AuthResults
from repro.mail.guard import QuarantineReport
from repro.mail.parser import ExtractionReport
from repro.web.resilient import FaultTelemetry


@dataclass
class UrlCrawl:
    """One crawled URL and everything observed."""

    url: str
    outcome: str  # VisitOutcome constant
    page_class: str  # PageClass constant
    final_url: str = ""
    url_chain: tuple[str, ...] = ()
    landing_domain: str = ""
    server_ip: str = ""
    certificate_fingerprint: str = ""
    certificate_not_before: float | None = None
    signals: SessionSignals | None = None
    #: Resource requests (url, kind, referrer) the page triggered.
    resource_requests: tuple[tuple[str, str, str], ...] = ()
    ajax_urls: tuple[str, ...] = ()
    screenshot_phash: int | None = None
    screenshot_dhash: int | None = None
    executed_scripts: tuple[str, ...] = ()
    http_statuses: tuple[int, ...] = ()
    #: True when this URL came out of dynamic (in-browser) analysis
    #: rather than static extraction.
    discovered_dynamically: bool = False
    extraction_method: str = ""
    final_title: str = ""
    final_text_snippet: str = ""


@dataclass
class MessageRecord:
    """The complete analysis artifact for one reported message."""

    message_index: int
    delivered_at: float
    recipient: str
    sender_domain: str
    auth: AuthResults | None = None
    extraction: ExtractionReport | None = None
    crawls: list[UrlCrawl] = field(default_factory=list)
    category: str = ""
    #: Spear-phishing classification (None = not a lookalike).
    spear_brand: str | None = None
    spear_distances: tuple[int, int] | None = None
    #: Local HTML attachments that rendered a credential form in place.
    local_login_form: bool = False
    local_session_signals: list[SessionSignals] = field(default_factory=list)
    enrichments: dict[str, EnrichmentRecord] = field(default_factory=dict)
    #: Convenience copy of parse-level evasion observations.
    qr_payloads: tuple[tuple[str, str], ...] = ()
    noise_padded: bool = False
    #: Per-stage outcome (``ok | failed | skipped``) for every registry
    #: stage; empty only for records predating the stage graph.  Healthy
    #: full-plan records (all ``ok``) serialize without the map so their
    #: exported bytes match the pre-stage-graph format.
    stage_status: dict[str, str] = field(default_factory=dict)
    #: Machine-readable failure reason per ``failed`` stage
    #: (``"ExceptionType: message"``); empty on healthy records so the
    #: serialized form is unchanged for them.
    stage_errors: dict[str, str] = field(default_factory=dict)
    #: Structural-limits report when the ingestion guard rejected this
    #: message before analysis (category ``quarantined``, every stage
    #: ``skipped``); None on every analyzed record.
    quarantine: QuarantineReport | None = None
    #: URLs the crawl stage skipped as benign infrastructure (media
    #: CDNs, IP echo services) — counted, never crawled.
    benign_url_skips: tuple[str, ...] = ()
    #: Resilience ledger (retries, breaker trips, deadline hits, fault
    #: kinds seen); attached only when a fault engine is active, so
    #: fault-free runs serialize byte-identically to earlier formats.
    fault_telemetry: FaultTelemetry | None = None
    #: Ground truth passed through for calibration tests only.
    ground_truth: dict = field(default_factory=dict)

    @property
    def degraded_stages(self) -> list[str]:
        """Stages that did not complete (``failed`` or ``skipped``)."""
        return [name for name, status in self.stage_status.items() if status != "ok"]

    def _phishing_crawls(self) -> list[UrlCrawl]:
        """Crawls that actually reached phishing content.

        A message may also touch benign infrastructure (media CDNs, form
        collectors); only pages serving a (possibly gated) login flow
        count as *landing* pages in the paper's Section V-A analysis.
        """
        return [
            crawl
            for crawl in self.crawls
            if crawl.page_class in ("login_form", "gated_login")
        ]

    @property
    def landing_domains(self) -> list[str]:
        seen: set[str] = set()
        ordered: list[str] = []
        for crawl in self._phishing_crawls():
            if crawl.landing_domain and crawl.landing_domain not in seen:
                seen.add(crawl.landing_domain)
                ordered.append(crawl.landing_domain)
        return ordered

    @property
    def landing_urls(self) -> list[str]:
        seen: set[str] = set()
        ordered: list[str] = []
        for crawl in self._phishing_crawls():
            target = crawl.final_url or crawl.url
            if target and target not in seen:
                seen.add(target)
                ordered.append(target)
        return ordered

    @property
    def attempted_domains(self) -> list[str]:
        """Every domain a crawl targeted (including dead/benign ones)."""
        seen: set[str] = set()
        ordered: list[str] = []
        for crawl in self.crawls:
            domain = crawl.landing_domain
            if not domain and crawl.url:
                from repro.web.urls import UrlError, parse_url

                try:
                    domain = parse_url(crawl.url).host
                except UrlError:
                    domain = ""
            if domain and domain not in seen:
                seen.add(domain)
                ordered.append(domain)
        return ordered
