"""StagePlan: registry, topological ordering, and failure isolation.

A :class:`StagePlan` is an immutable, validated execution order over a
set of stages.  Construction performs all graph checks up front:

- names must be unique and requires/provides must form a DAG;
- every ``requires`` token must be provided by some (earlier) stage in
  the plan, so a subset selection that would run against missing inputs
  is rejected before any message is analyzed;
- ordering is topological and *stable*: independent stages keep their
  registration order, which for the built-ins reproduces Figure 1's
  auth -> parse -> dynamic-html -> crawl -> classify -> spear -> enrich.

Execution (:meth:`StagePlan.run`) isolates failures per stage: an
exception marks the stage ``failed`` in ``record.stage_status`` and
withholds its ``provides``, degrading dependent stages to ``skipped``
instead of aborting the whole message.  Only
:class:`~repro.runner.retry.TransientFault` (flaky infrastructure, not
a pipeline bug) propagates, so the runner's retry/dead-letter machinery
still sees genuinely retryable faults — and its dead-letter list
shrinks to messages that cannot even enter the pipeline.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.stages.base import AnalysisContext, Stage, StageStatus
from repro.runner.retry import TransientFault


class StagePlanError(ValueError):
    """An invalid stage graph or stage selection."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Stage] = {}


def register_stage(stage: Stage) -> Stage:
    """Add a stage to the global registry (name must be unused)."""
    if stage.name in _REGISTRY:
        raise StagePlanError(f"stage {stage.name!r} is already registered")
    _REGISTRY[stage.name] = stage
    return stage


def registered_stages() -> tuple[Stage, ...]:
    """Every registered stage, in registration order."""
    return tuple(_REGISTRY.values())


def registered_stage_names() -> tuple[str, ...]:
    """Registered stage names, in registration order."""
    return tuple(_REGISTRY)


def get_stage(name: str) -> Stage:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "<none>"
        raise StagePlanError(f"unknown stage {name!r} (known: {known})") from None


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
class StagePlan:
    """A validated, topologically ordered set of stages."""

    def __init__(self, stages: Sequence[Stage], all_stage_names: Iterable[str] | None = None):
        names = [stage.name for stage in stages]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise StagePlanError(f"duplicate stage name(s): {sorted(duplicates)}")
        self.stages: tuple[Stage, ...] = self._toposort(tuple(stages))
        #: The full universe of stage names for ``stage_status`` — a
        #: subset plan still reports unselected registry stages as
        #: ``skipped`` so records are self-describing.
        self.all_stage_names: tuple[str, ...] = tuple(
            all_stage_names if all_stage_names is not None else (s.name for s in self.stages)
        )
        self._validate_requires()

    # ------------------------------------------------------------------
    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def __contains__(self, name: str) -> bool:
        return any(stage.name == name for stage in self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    # ------------------------------------------------------------------
    @staticmethod
    def _toposort(stages: tuple[Stage, ...]) -> tuple[Stage, ...]:
        """Stable Kahn's algorithm over the provides->requires edges."""
        providers: dict[str, list[int]] = {}
        for position, stage in enumerate(stages):
            for token in stage.provides:
                providers.setdefault(token, []).append(position)
        # edges[i] = stages that must run before stage i.
        blockers: list[set[int]] = []
        for position, stage in enumerate(stages):
            before: set[int] = set()
            for token in stage.requires:
                before.update(p for p in providers.get(token, ()) if p != position)
            blockers.append(before)
        ordered: list[Stage] = []
        emitted: set[int] = set()
        while len(ordered) < len(stages):
            progressed = False
            for position, stage in enumerate(stages):
                if position in emitted or not blockers[position] <= emitted:
                    continue
                ordered.append(stage)
                emitted.add(position)
                progressed = True
            if not progressed:
                stuck = [stages[p].name for p in range(len(stages)) if p not in emitted]
                raise StagePlanError(f"stage dependency cycle involving: {stuck}")
        return tuple(ordered)

    def _validate_requires(self) -> None:
        available: set[str] = set()
        for stage in self.stages:
            missing = [token for token in stage.requires if token not in available]
            if missing:
                raise StagePlanError(
                    f"stage {stage.name!r} requires {missing} but no selected "
                    f"stage provides them; add the providing stage(s) to the plan"
                )
            available.update(stage.provides)

    # ------------------------------------------------------------------
    def run(self, ctx: AnalysisContext, profiler=None) -> float:
        """Execute the plan over one message with failure isolation.

        Returns the summed per-stage wall-clock seconds (0.0 when no
        profiler is attached) so the caller can attribute the remainder
        of the analysis to the ``unattributed`` profiler bucket.
        """
        status = {name: StageStatus.SKIPPED for name in self.all_stage_names}
        ctx.record.stage_status = status
        profiling = profiler is not None and profiler.enabled
        attributed = 0.0
        available: set[str] = set()
        for stage in self.stages:
            if any(token not in available for token in stage.requires):
                continue  # upstream failed or was skipped: degrade
            started = time.perf_counter() if profiling else 0.0
            try:
                stage.run(ctx)
            except TransientFault:
                # Infrastructure flakiness: let the runner retry the
                # whole message rather than baking a degraded record.
                raise
            except Exception as error:  # noqa: BLE001 - isolation boundary
                status[stage.name] = StageStatus.FAILED
                ctx.errors[stage.name] = error
                # Machine-readable reason, deterministic across backends
                # (exception type + message only, never a traceback).
                ctx.record.stage_errors[stage.name] = f"{type(error).__name__}: {error}"
            else:
                status[stage.name] = StageStatus.OK
                available.update(stage.provides)
            finally:
                if profiling:
                    elapsed = time.perf_counter() - started
                    profiler.record(stage.name, elapsed)
                    attributed += elapsed
        return attributed
