"""Stage-graph primitives: the Stage protocol and the shared context.

Figure 1 presents CrawlerBox as a fetch -> parse -> crawl -> log
pipeline.  This package makes those boundaries explicit: each unit of
per-message work is a :class:`Stage` with a ``name``, declared
``requires``/``provides`` data tokens, and a ``run(ctx)`` body that
reads and writes one :class:`AnalysisContext`.

Tokens are the currency of the graph.  A stage's ``provides`` become
available only when it finishes without raising; a stage whose
``requires`` are not all available is *degraded* (marked ``skipped`` in
the record's ``stage_status`` map) instead of running against missing
inputs.  See :mod:`repro.core.stages.plan` for ordering, validation,
and the failure-isolation driver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.artifacts import MessageRecord
    from repro.core.pipeline import CrawlerBox, PipelineConfig
    from repro.mail.message import EmailMessage
    from repro.mail.parser import ExtractionReport


class StageStatus:
    """Per-stage outcome recorded on ``MessageRecord.stage_status``."""

    #: The stage ran to completion (its ``provides`` are available).
    OK = "ok"
    #: The stage raised; downstream dependents degrade to ``skipped``.
    FAILED = "failed"
    #: The stage did not run: a required input was missing (upstream
    #: failure) or the stage was not part of the selected plan.
    SKIPPED = "skipped"


#: Data tokens flowing between the built-in stages.
class Token:
    AUTH = "auth"
    EXTRACTION = "extraction"
    DYNAMIC_URLS = "dynamic_urls"
    CRAWLS = "crawls"
    CATEGORY = "category"
    SPEAR = "spear"
    ENRICHMENTS = "enrichments"


@runtime_checkable
class Stage(Protocol):
    """One unit of per-message analysis work.

    Implementations must be stateless (all mutable state lives on the
    :class:`AnalysisContext` or the CrawlerBox), so a single stage
    instance is safely shared across workers, threads, and plans.
    """

    #: Registry name; also the profiler row for this stage.
    name: str
    #: Tokens that must be available before the stage may run.
    requires: tuple[str, ...]
    #: Tokens made available when the stage completes.
    provides: tuple[str, ...]

    def run(self, ctx: "AnalysisContext") -> None:  # pragma: no cover - protocol
        ...


@dataclass
class AnalysisContext:
    """Everything a stage may read or write while analyzing one message.

    The context is built once per message by ``CrawlerBox.analyze`` and
    threaded through every stage of the plan; the accumulating
    :class:`~repro.core.artifacts.MessageRecord` is the durable output,
    the remaining fields are inter-stage scratch.
    """

    #: The reported message under analysis.
    message: "EmailMessage"
    #: Corpus position; the sole input (with the seed material) to the
    #: per-message RNG stream, so records are order-independent.
    message_index: int
    #: The owning CrawlerBox (crawler, parser, enricher, classifier).
    box: "CrawlerBox"
    #: Tunable pipeline behaviour (``box.config``, aliased for stages).
    config: "PipelineConfig"
    #: The per-message seeded RNG driving crawler behaviour.
    rng: random.Random
    #: The accumulating analysis artifact.
    record: "MessageRecord"
    #: Simulated analysis timestamp (delivery + expert-tagging delay).
    analysis_time: float

    # -- inter-stage data products ------------------------------------
    #: Parse-stage output (also mirrored on ``record.extraction``).
    report: "ExtractionReport | None" = None
    #: Navigation targets discovered by dynamically loading HTML parts.
    dynamic_urls: list[str] = field(default_factory=list)
    #: The deduplicated, filtered, capped URL list the crawl stage used.
    crawl_urls: list[str] = field(default_factory=list)
    #: Exception per failed stage (for logging/inspection; reprs of
    #: these land nowhere on the record beyond ``stage_status``).
    errors: dict[str, BaseException] = field(default_factory=dict)
