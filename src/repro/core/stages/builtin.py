"""The built-in CrawlerBox stages (Figure 1, decomposed).

Each stage carries the logic that used to live inline in the monolithic
``CrawlerBox.analyze``; the bodies are unchanged so a default full plan
produces byte-identical records.  Stages are stateless singletons — all
per-message state lives on the :class:`~repro.core.stages.base.AnalysisContext`
and the mutable components (crawler, parser, enricher, classifier) on
the owning CrawlerBox.
"""

from __future__ import annotations

import random
import re

from repro._budget import CRAWL_HOP_UNITS, current_budget
from repro.browser.browser import VisitOutcome, VisitResult
from repro.browser.session import SessionSignals
from repro.core.artifacts import UrlCrawl
from repro.core.outcomes import (
    MessageCategory,
    PageClass,
    aggregate_message_category,
    classify_visit,
    password_form_visible,
)
from repro.core.stages.base import AnalysisContext, Token
from repro.core.stages.plan import register_stage
from repro.imaging.phash import dhash, hamming_distance, phash
from repro.mail.auth import evaluate_authentication
from repro.web.dns import NxDomainError
from repro.web.faults import FaultError
from repro.web.network import ConnectionFailed, TLSValidationError
from repro.web.resilient import ResilientFetcher
from repro.web.urls import UrlError, parse_url

_NOISE_RE = re.compile(r"\n{25,}")


class AuthStage:
    """SPF/DKIM/DMARC evaluation against the simulated DNS."""

    name = "auth"
    requires: tuple[str, ...] = ()
    provides = (Token.AUTH,)

    def run(self, ctx: AnalysisContext) -> None:
        ctx.record.auth = evaluate_authentication(ctx.message, ctx.box.mail_dns)


class ParseStage:
    """Recursive part walking + static URL/QR/OCR extraction."""

    name = "parse"
    requires: tuple[str, ...] = ()
    provides = (Token.EXTRACTION,)

    def run(self, ctx: AnalysisContext) -> None:
        report = ctx.box.parser.parse(ctx.message)
        ctx.report = report
        ctx.record.extraction = report
        ctx.record.qr_payloads = tuple(report.qr_payloads)
        ctx.record.noise_padded = bool(_NOISE_RE.search(ctx.message.body_text()))


class DynamicHtmlStage:
    """Dynamic loading of HTML documents (attachments and bodies)."""

    name = "dynamic-html"
    requires = (Token.EXTRACTION,)
    provides = (Token.DYNAMIC_URLS,)

    def run(self, ctx: AnalysisContext) -> None:
        record = ctx.record
        budget = current_budget()
        for part_path, markup in ctx.report.html_documents:
            if budget is not None:
                budget.charge(CRAWL_HOP_UNITS, "crawl-hops")
            session = ctx.box.crawler.crawl_html(markup, timestamp=ctx.analysis_time)
            record.local_session_signals.append(session.signals())
            is_attachment = part_path in ctx.report.html_attachment_paths
            if is_attachment and password_form_visible(session):
                record.local_login_form = True
            target = session.navigation_target
            if target:
                resolved = session.resolve_url(target)
                if resolved is not None:
                    ctx.dynamic_urls.append(resolved.raw)


class CrawlStage:
    """Crawl every discovered URL with the configured crawler."""

    name = "crawl"
    requires = (Token.EXTRACTION, Token.DYNAMIC_URLS)
    provides = (Token.CRAWLS,)

    def run(self, ctx: AnalysisContext) -> None:
        urls: list[str] = []
        seen: set[str] = set()
        for extracted in ctx.report.urls:
            if extracted.url not in seen:
                seen.add(extracted.url)
                urls.append(extracted.url)
        for url in ctx.dynamic_urls:
            if url not in seen:
                seen.add(url)
                urls.append(url)
        urls = [url for url in urls if ctx.box._crawlable(url, ctx.record)]
        urls = urls[: ctx.config.max_urls_per_message]
        ctx.crawl_urls = urls

        method_by_url = {item.url: item.method for item in ctx.report.urls}
        fetcher = self._fetcher(ctx)
        budget = current_budget()
        for url in urls:
            if budget is not None:
                # One hop = one full browser visit (redirect chain,
                # scripts, screenshot); charged up front so a message
                # that already burned its budget elsewhere stops here.
                budget.charge(CRAWL_HOP_UNITS, "crawl-hops")
            discovered_dynamically = url in ctx.dynamic_urls
            extraction_method = method_by_url.get(url, "dynamic")
            result = self._fetch(ctx, fetcher, url)
            if result is None:
                # Circuit breaker open before any attempt got data: a
                # partial record instead of a dead-lettered message.
                ctx.record.crawls.append(
                    self._unreachable_crawl(url, discovered_dynamically, extraction_method)
                )
                continue
            ctx.record.crawls.append(
                self._build_crawl(ctx, url, result, discovered_dynamically, extraction_method)
            )

    # ------------------------------------------------------------------
    def _fetcher(self, ctx: AnalysisContext) -> ResilientFetcher | None:
        """The resilient fetch wrapper, when a fault engine is active.

        Fault-free runs keep the direct crawl path (and its exact RNG
        consumption), preserving byte-identical records.  The wrapper's
        breaker/budget/jitter state is scoped to this message: both the
        telemetry ledger and the jitter RNG derive from the per-message
        seed, so records stay order-independent.
        """
        engine = getattr(ctx.box.network, "faults", None)
        if engine is None or not engine.active or ctx.record.fault_telemetry is None:
            return None
        return ResilientFetcher(
            fetch=lambda url, timestamp, attempt: ctx.box.crawler.crawl_url(
                url, timestamp=timestamp, fault_attempt=attempt
            ),
            policy=ctx.box.resilience_policy,
            rng=random.Random(ctx.box.message_seed(ctx.message_index) ^ 0x5E51_71E7),
            telemetry=ctx.record.fault_telemetry,
        )

    def _fetch(
        self, ctx: AnalysisContext, fetcher: ResilientFetcher | None, url: str
    ) -> VisitResult | None:
        if fetcher is None:
            return ctx.box.crawler.crawl_url(url, timestamp=ctx.analysis_time)
        try:
            host = parse_url(url).host
        except UrlError:
            host = ""
        return fetcher.fetch(url, host, ctx.analysis_time)

    @staticmethod
    def _unreachable_crawl(
        url: str, discovered_dynamically: bool, extraction_method: str
    ) -> UrlCrawl:
        return UrlCrawl(
            url=url,
            outcome=VisitOutcome.UNREACHABLE,
            page_class=PageClass.ERROR,
            final_url=url,
            discovered_dynamically=discovered_dynamically,
            extraction_method=extraction_method,
        )

    # ------------------------------------------------------------------
    def _build_crawl(
        self,
        ctx: AnalysisContext,
        url: str,
        result: VisitResult,
        discovered_dynamically: bool,
        extraction_method: str,
    ) -> UrlCrawl:
        page_class = classify_visit(result)
        session = result.final_session

        landing_domain = ""
        final_url = result.final_url
        try:
            landing_domain = parse_url(final_url).host
        except UrlError:
            pass

        certificate = result.certificates[-1] if result.certificates else None
        signals = (
            SessionSignals.merge([s.signals() for s in result.sessions])
            if result.sessions
            else None
        )
        screenshot_phash = screenshot_dhash = None
        if (
            ctx.config.take_screenshots
            and session is not None
            and page_class
            in (PageClass.LOGIN_FORM, PageClass.GATED_LOGIN, PageClass.INTERACTION, PageClass.BENIGN)
        ):
            screenshot = session.screenshot()
            screenshot_phash = phash(screenshot)
            screenshot_dhash = dhash(screenshot)

        resource_requests = tuple(
            (request.url, request.kind, request.referrer)
            for request in result.requests
            if request.kind in ("resource", "script")
        )
        # Aggregate network/script observations across the whole chain:
        # challenge interstitials run (and call home) before the final
        # page ever loads.
        ajax_urls = tuple(
            call.url for chain_session in result.sessions for call in chain_session.ajax_log
        )
        executed_scripts = tuple(
            script for chain_session in result.sessions for script in chain_session.executed_scripts
        )
        final_title = ""
        final_text = ""
        if session is not None:
            final_title = session.parsed.title
            final_text = (session.parsed.text or "")[:200]

        return UrlCrawl(
            url=url,
            outcome=result.outcome,
            page_class=page_class,
            final_url=final_url,
            url_chain=tuple(result.url_chain),
            landing_domain=landing_domain,
            server_ip=result.server_ips.get(landing_domain, ""),
            certificate_fingerprint=certificate.fingerprint if certificate else "",
            certificate_not_before=certificate.not_before if certificate else None,
            signals=signals,
            resource_requests=resource_requests,
            ajax_urls=ajax_urls,
            screenshot_phash=screenshot_phash,
            screenshot_dhash=screenshot_dhash,
            executed_scripts=executed_scripts,
            http_statuses=tuple(response.status for response in result.responses),
            discovered_dynamically=discovered_dynamically,
            extraction_method=extraction_method,
            final_title=final_title,
            final_text_snippet=final_text,
        )


class ClassifyStage:
    """Aggregate per-URL page classes into the Section V message bucket."""

    name = "classify"
    requires = (Token.EXTRACTION, Token.CRAWLS)
    provides = (Token.CATEGORY,)

    def run(self, ctx: AnalysisContext) -> None:
        ctx.record.category = aggregate_message_category(
            had_urls=bool(ctx.crawl_urls) or bool(ctx.report.urls),
            page_classes=[crawl.page_class for crawl in ctx.record.crawls],
            local_login_form=ctx.record.local_login_form,
        )


class SpearStage:
    """pHash+dHash lookalike classification of login-form screenshots."""

    name = "spear"
    requires = (Token.CRAWLS, Token.CATEGORY)
    provides = (Token.SPEAR,)

    def run(self, ctx: AnalysisContext) -> None:
        record = ctx.record
        if record.category != MessageCategory.ACTIVE_PHISHING:
            return
        classifier = ctx.box.spear_classifier
        best = None
        for crawl in record.crawls:
            if crawl.page_class != PageClass.LOGIN_FORM or crawl.screenshot_phash is None:
                continue
            for reference in classifier.references:
                p_distance = hamming_distance(crawl.screenshot_phash, reference.phash)
                d_distance = hamming_distance(crawl.screenshot_dhash, reference.dhash)
                threshold = classifier.threshold
                if p_distance <= threshold and d_distance <= threshold:
                    candidate = (p_distance + d_distance, reference.brand, p_distance, d_distance)
                    if best is None or candidate < best:
                        best = candidate
        if best is not None:
            record.spear_brand = best[1]
            record.spear_distances = (best[2], best[3])


class EnrichStage:
    """WHOIS / passive-DNS / Shodan enrichment of landing domains.

    Honours ``PipelineConfig.enrich``: when the config disables
    enrichment the stage is a successful no-op (``ok``), not
    ``skipped`` — skipped is reserved for dependency degradation and
    plan subsetting.
    """

    name = "enrich"
    requires = (Token.CRAWLS,)
    provides = (Token.ENRICHMENTS,)

    def run(self, ctx: AnalysisContext) -> None:
        if not ctx.config.enrich:
            return
        record = ctx.record
        failures: set[str] = set()
        for crawl in record.crawls:
            domain = crawl.landing_domain
            if not domain or domain in record.enrichments or domain in failures:
                continue
            try:
                record.enrichments[domain] = ctx.box.enricher.enrich(
                    domain, at_time=record.delivered_at, server_ip=crawl.server_ip
                )
            except (NxDomainError, ConnectionFailed, TLSValidationError) as exc:
                # A host taken down between crawl and enrichment (or an
                # injected lookup fault) costs this domain's enrichment,
                # not the whole message: partial enrichments are kept
                # and the stage is marked failed at the end.
                failures.add(domain)
                telemetry = record.fault_telemetry
                if telemetry is not None:
                    telemetry.enrich_failures += 1
                    if isinstance(exc, FaultError):
                        telemetry.note_kind(exc.kind)
        if failures:
            raise ConnectionFailed(
                f"enrichment unreachable for {len(failures)} domain(s): "
                + ", ".join(sorted(failures))
            )


#: Figure 1 order; registration order is the stable topological tiebreak.
BUILTIN_STAGES = (
    register_stage(AuthStage()),
    register_stage(ParseStage()),
    register_stage(DynamicHtmlStage()),
    register_stage(CrawlStage()),
    register_stage(ClassifyStage()),
    register_stage(SpearStage()),
    register_stage(EnrichStage()),
)
