"""The CrawlerBox stage graph: typed stages, validated plans.

Public surface:

- :class:`~repro.core.stages.base.Stage` — the stage protocol
  (``name``, ``requires``, ``provides``, ``run(ctx)``).
- :class:`~repro.core.stages.base.AnalysisContext` — the typed
  per-message context threaded through a plan.
- :class:`~repro.core.stages.plan.StagePlan` — a validated,
  topologically ordered execution plan with per-stage failure
  isolation.
- :func:`build_plan` — plan construction from registry names (the
  ``--stages`` CLI surface).
- :data:`~repro.core.stages.builtin.BUILTIN_STAGES` /
  :data:`STAGE_NAMES` — the Figure 1 stages.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.stages.base import AnalysisContext, Stage, StageStatus, Token
from repro.core.stages.builtin import BUILTIN_STAGES
from repro.core.stages.plan import (
    StagePlan,
    StagePlanError,
    get_stage,
    register_stage,
    registered_stage_names,
    registered_stages,
)

#: The built-in stage names, in Figure 1 / default plan order.
STAGE_NAMES: tuple[str, ...] = tuple(stage.name for stage in BUILTIN_STAGES)


def build_plan(names: Sequence[str] | None = None) -> StagePlan:
    """A validated plan over ``names`` (default: every built-in stage).

    Selection keeps the registry's canonical ordering regardless of the
    order names are given in; unknown names and selections with
    unsatisfiable ``requires`` raise :class:`StagePlanError`.
    """
    if names is None:
        selected = registered_stages()
    else:
        wanted = set(names)
        unknown = wanted - set(registered_stage_names())
        if unknown:
            raise StagePlanError(
                f"unknown stage(s) {sorted(unknown)}; "
                f"known: {', '.join(registered_stage_names())}"
            )
        selected = tuple(s for s in registered_stages() if s.name in wanted)
    return StagePlan(selected, all_stage_names=registered_stage_names())


__all__ = [
    "AnalysisContext",
    "BUILTIN_STAGES",
    "STAGE_NAMES",
    "Stage",
    "StagePlan",
    "StagePlanError",
    "StageStatus",
    "Token",
    "build_plan",
    "get_stage",
    "register_stage",
    "registered_stage_names",
    "registered_stages",
]
