"""Crawl-outcome classification into the Section V buckets.

The classifier works from observable page behaviour only — form
structure, revealed/hidden state after script execution, textual
markers — never from generator ground truth.
"""

from __future__ import annotations

from repro.browser.browser import VisitOutcome, VisitResult
from repro.browser.session import PageSession
from repro.js.interp import JSObject
from repro.js.stdlib import js_to_python


class MessageCategory:
    """The five Section V buckets (plus 'other' for anything unmatched)."""

    NO_RESOURCES = "no_web_resources"
    ERROR = "error_page"
    INTERACTION = "interaction_required"
    DOWNLOAD = "download"
    ACTIVE_PHISHING = "active_phishing"
    OTHER = "other"
    #: Not a Section V bucket: the ingestion guard rejected the message
    #: before analysis (see :mod:`repro.mail.guard`).
    QUARANTINED = "quarantined"


class PageClass:
    """Per-URL crawl classifications."""

    ERROR = "error"
    DOWNLOAD = "download"
    LOGIN_FORM = "login_form"  # credential form visible after execution
    GATED_LOGIN = "gated_login"  # OTP / challenge in front of a login flow
    INTERACTION = "interaction"  # file-share or classic-CAPTCHA wall
    BENIGN = "benign"


_INTERACTION_MARKERS = (
    "dropbox",
    "google drive",
    "you need access",
    "ask for access",
    "request access",
    "select all images",
    "shared document",
    "shared \"",
)

_GATE_MARKERS = (
    "one-time password",
    "solve to continue",
    "enter the code",
    "security check",
)

_CHALLENGE_MARKERS = (
    "checking your browser",
    "just a moment",
    "verifying",
)


def password_form_visible(session: PageSession) -> bool:
    """A credential form exists and is visible after script execution."""
    has_password_form = any(form.has_password_field for form in session.parsed.forms)
    if not has_password_form:
        return False
    container = session.elements.get("content")
    if container is None:
        return True  # not hidden behind a reveal gate
    style = container.get("style")
    if isinstance(style, JSObject):
        display = js_to_python(style.get("display"))
        return display == "block"
    return False


#: Backwards-compatible alias for the pre-public name.
_password_form_visible = password_form_visible


def classify_page(session: PageSession) -> str:
    """Classify one loaded page."""
    text = (session.parsed.text or "").lower()
    title = (session.parsed.title or "").lower()
    combined = f"{title} {text}"

    if password_form_visible(session):
        return PageClass.LOGIN_FORM
    if any(marker in combined for marker in _INTERACTION_MARKERS):
        return PageClass.INTERACTION
    if any(marker in combined for marker in _GATE_MARKERS) and session.parsed.forms:
        return PageClass.GATED_LOGIN
    if any(marker in combined for marker in _CHALLENGE_MARKERS):
        # Stuck on an unpassed bot-detection interstitial.
        return PageClass.ERROR
    return PageClass.BENIGN


def classify_visit(result: VisitResult) -> str:
    """Classify one crawl (URL -> final state)."""
    final = result.final_response
    if final is not None and final.status == 200:
        content_type = final.content_type or ""
        if not content_type.startswith("text/html"):
            return PageClass.DOWNLOAD
    if result.outcome in (
        VisitOutcome.NXDOMAIN,
        VisitOutcome.CONNECTION_FAILED,
        VisitOutcome.TLS_ERROR,
        VisitOutcome.BAD_URL,
        VisitOutcome.REDIRECT_LOOP,
        VisitOutcome.UNREACHABLE,
    ):
        return PageClass.ERROR
    session = result.final_session
    if session is None:
        return PageClass.ERROR
    page_class = classify_page(session)
    if page_class == PageClass.BENIGN and result.outcome == VisitOutcome.HTTP_ERROR:
        return PageClass.ERROR
    return page_class


#: Priority when a message yields several crawls: the most malicious
#: observation wins.
_PAGE_PRIORITY = (
    PageClass.LOGIN_FORM,
    PageClass.GATED_LOGIN,
    PageClass.DOWNLOAD,
    PageClass.INTERACTION,
    PageClass.ERROR,
    PageClass.BENIGN,
)


def aggregate_message_category(
    had_urls: bool, page_classes: list[str], local_login_form: bool = False
) -> str:
    """Combine per-URL classes into the message-level bucket."""
    if local_login_form:
        # An HTML attachment rendered a credential form locally.
        return MessageCategory.ACTIVE_PHISHING
    if not had_urls and not page_classes:
        return MessageCategory.NO_RESOURCES
    for page_class in _PAGE_PRIORITY:
        if page_class in page_classes:
            if page_class in (PageClass.LOGIN_FORM, PageClass.GATED_LOGIN):
                return MessageCategory.ACTIVE_PHISHING
            if page_class == PageClass.DOWNLOAD:
                return MessageCategory.DOWNLOAD
            if page_class == PageClass.INTERACTION:
                return MessageCategory.INTERACTION
            if page_class == PageClass.ERROR:
                return MessageCategory.ERROR
            return MessageCategory.OTHER
    return MessageCategory.OTHER
