"""Artifact persistence: analysis records to/from JSON.

CrawlerBox's third phase "logs the results"; this module makes a study
run durable.  Exported records keep everything the analysis layer
consumes (categories, crawls with signals and network activity,
screenshot hashes, extraction provenance, enrichment summaries), so a
saved run can be reloaded later and every Section V statistic
recomputed without re-crawling.
"""

from __future__ import annotations

import json
import pathlib
import zlib

from repro.browser.session import SessionSignals
from repro.core.artifacts import MessageRecord, UrlCrawl
from repro.mail.auth import AuthResults
from repro.mail.guard import QuarantineReport
from repro.mail.parser import ExtractedUrl, ExtractionReport
from repro.web.resilient import FaultTelemetry

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def signals_to_dict(signals: SessionSignals | None) -> dict | None:
    if signals is None:
        return None
    return {
        "console_hijacked": signals.console_hijacked,
        "debugger_hits": signals.debugger_hits,
        "uses_debugger_timer": signals.uses_debugger_timer,
        "context_menu_blocked": signals.context_menu_blocked,
        "devtools_keys_blocked": signals.devtools_keys_blocked,
        "hue_rotation_deg": signals.hue_rotation_deg,
        "navigator_reads": list(signals.navigator_reads),
        "intl_timezone_read": signals.intl_timezone_read,
        "screen_reads": list(signals.screen_reads),
        "script_errors": list(signals.script_errors),
        "popups": list(signals.popups),
    }


def crawl_to_dict(crawl: UrlCrawl) -> dict:
    return {
        "url": crawl.url,
        "outcome": crawl.outcome,
        "page_class": crawl.page_class,
        "final_url": crawl.final_url,
        "url_chain": list(crawl.url_chain),
        "landing_domain": crawl.landing_domain,
        "server_ip": crawl.server_ip,
        "certificate_fingerprint": crawl.certificate_fingerprint,
        "certificate_not_before": crawl.certificate_not_before,
        "signals": signals_to_dict(crawl.signals),
        "resource_requests": [list(item) for item in crawl.resource_requests],
        "ajax_urls": list(crawl.ajax_urls),
        "screenshot_phash": crawl.screenshot_phash,
        "screenshot_dhash": crawl.screenshot_dhash,
        "executed_scripts": list(crawl.executed_scripts),
        "http_statuses": list(crawl.http_statuses),
        "discovered_dynamically": crawl.discovered_dynamically,
        "extraction_method": crawl.extraction_method,
        "final_title": crawl.final_title,
        "final_text_snippet": crawl.final_text_snippet,
    }


def record_to_dict(record: MessageRecord) -> dict:
    extraction = record.extraction
    data = {
        "message_index": record.message_index,
        "delivered_at": record.delivered_at,
        "recipient": record.recipient,
        "sender_domain": record.sender_domain,
        "auth": None
        if record.auth is None
        else {"spf": record.auth.spf, "dkim": record.auth.dkim, "dmarc": record.auth.dmarc},
        "category": record.category,
        "spear_brand": record.spear_brand,
        "spear_distances": list(record.spear_distances) if record.spear_distances else None,
        "local_login_form": record.local_login_form,
        "noise_padded": record.noise_padded,
        "qr_payloads": [list(item) for item in record.qr_payloads],
        "crawls": [crawl_to_dict(crawl) for crawl in record.crawls],
        "local_session_signals": [signals_to_dict(s) for s in record.local_session_signals],
        "extraction": None
        if extraction is None
        else {
            "urls": [
                {"url": item.url, "method": item.method, "part_path": item.part_path}
                for item in extraction.urls
            ],
            "qr_payloads": [list(item) for item in extraction.qr_payloads],
            "html_attachment_paths": sorted(extraction.html_attachment_paths),
            "content_types": list(extraction.content_types),
        },
    }
    # Degradation fields are emitted only when they carry information:
    # a healthy full-plan record (every stage ``ok``, nothing skipped)
    # serializes byte-identically to the pre-stage-graph format.
    if record.stage_status and any(
        status != "ok" for status in record.stage_status.values()
    ):
        data["stage_status"] = dict(record.stage_status)
    if record.stage_errors:
        data["stage_errors"] = dict(record.stage_errors)
    if record.quarantine is not None:
        data["quarantine"] = record.quarantine.as_dict()
    if record.benign_url_skips:
        data["benign_url_skips"] = list(record.benign_url_skips)
    if record.fault_telemetry is not None:
        data["fault_telemetry"] = record.fault_telemetry.as_dict()
    return data


def export_records(records: list[MessageRecord]) -> dict:
    """The full study run as one JSON-serializable document."""
    return {
        "format_version": FORMAT_VERSION,
        "n_records": len(records),
        "records": [record_to_dict(record) for record in records],
    }


def save_records(records: list[MessageRecord], path: str | pathlib.Path) -> None:
    # Exports go through the durable layer like every other persistent
    # artifact: temp write + fsync + atomic rename, never a half-written
    # export (and the storage fault engine exercises this path too).
    from repro.storage.durable import durable_write_text, retrying

    document = export_records(records)
    payload = json.dumps(document, separators=(",", ":"))
    retrying(lambda: durable_write_text(pathlib.Path(path), payload))


def record_to_line(record: MessageRecord) -> str:
    """One record as a single compact JSON line (the JSONL checkpoint
    format of :mod:`repro.runner.checkpoint`); same field layout as the
    monolithic document, so the two formats stay byte-compatible."""
    return json.dumps(record_to_dict(record), separators=(",", ":"))


def record_from_line(line: str) -> MessageRecord:
    """Inverse of :func:`record_to_line`."""
    return record_from_dict(json.loads(line))


# ----------------------------------------------------------------------
# Checkpoint wire format (v2)
# ----------------------------------------------------------------------
# The JSONL checkpoint's framed line format lives here, next to the
# serialization it frames, so *workers* can render a record all the way
# to its final on-disk bytes: compact JSON + a literal TAB + a CRC32
# suffix.  The TAB is impossible inside the payload (``json.dumps``
# escapes control characters), so the suffix is unambiguous.
# :mod:`repro.runner.checkpoint` builds its scan/compact machinery on
# these primitives.

CRC_SEPARATOR = "\t#crc32="
CRC_SEPARATOR_BYTES = CRC_SEPARATOR.encode("utf-8")


def crc_suffix(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_record_line(payload: str) -> str:
    """``payload`` (one compact JSON document) with its CRC32 suffix."""
    return payload + CRC_SEPARATOR + crc_suffix(payload)


def record_to_wire(record: MessageRecord) -> bytes:
    """One record as its final checkpoint wire form (no newline).

    This is *the* record→bytes function of the data plane: process
    workers render results with it so the parent's hot loop is
    append-bytes-and-ack, and the thread/serial backends render with
    the same function, which is what keeps every backend's checkpoint
    byte-identical.
    """
    return encode_record_line(record_to_line(record)).encode("utf-8")


def wire_payload(wire: bytes) -> str:
    """The compact JSON document inside one wire line (suffix stripped)."""
    text = wire.decode("utf-8")
    payload, separator, _ = text.rpartition(CRC_SEPARATOR)
    return payload if separator else text


def record_from_wire(wire: bytes) -> MessageRecord:
    """Inverse of :func:`record_to_wire` (the CRC is not re-verified —
    use :func:`repro.runner.checkpoint.parse_record_line` to validate)."""
    return record_from_dict(json.loads(wire_payload(wire)))


class WireRecord:
    """A worker-serialized record: wire bytes first, object on demand.

    The serve data plane hands these to the daemon so its hot path —
    checkpoint append plus verdict splice — reuses the bytes the worker
    already rendered instead of re-parsing and re-serializing JSON.
    """

    __slots__ = ("wire", "_record")

    def __init__(self, wire: bytes, record: MessageRecord | None = None):
        self.wire = wire
        self._record = record

    @property
    def payload(self) -> str:
        """The compact JSON document (CRC suffix stripped)."""
        return wire_payload(self.wire)

    @property
    def record(self) -> MessageRecord:
        if self._record is None:
            self._record = record_from_dict(json.loads(self.payload))
        return self._record


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------
def _signals_from_dict(data: dict | None) -> SessionSignals | None:
    if data is None:
        return None
    return SessionSignals(
        console_hijacked=data["console_hijacked"],
        debugger_hits=data["debugger_hits"],
        uses_debugger_timer=data["uses_debugger_timer"],
        context_menu_blocked=data["context_menu_blocked"],
        devtools_keys_blocked=data["devtools_keys_blocked"],
        hue_rotation_deg=data["hue_rotation_deg"],
        navigator_reads=tuple(data["navigator_reads"]),
        intl_timezone_read=data["intl_timezone_read"],
        screen_reads=tuple(data["screen_reads"]),
        script_errors=tuple(data["script_errors"]),
        popups=tuple(data["popups"]),
    )


def _crawl_from_dict(data: dict) -> UrlCrawl:
    return UrlCrawl(
        url=data["url"],
        outcome=data["outcome"],
        page_class=data["page_class"],
        final_url=data["final_url"],
        url_chain=tuple(data["url_chain"]),
        landing_domain=data["landing_domain"],
        server_ip=data["server_ip"],
        certificate_fingerprint=data["certificate_fingerprint"],
        certificate_not_before=data["certificate_not_before"],
        signals=_signals_from_dict(data["signals"]),
        resource_requests=tuple(tuple(item) for item in data["resource_requests"]),
        ajax_urls=tuple(data["ajax_urls"]),
        screenshot_phash=data["screenshot_phash"],
        screenshot_dhash=data["screenshot_dhash"],
        executed_scripts=tuple(data["executed_scripts"]),
        http_statuses=tuple(data["http_statuses"]),
        discovered_dynamically=data["discovered_dynamically"],
        extraction_method=data["extraction_method"],
        final_title=data["final_title"],
        final_text_snippet=data["final_text_snippet"],
    )


def record_from_dict(data: dict) -> MessageRecord:
    record = MessageRecord(
        message_index=data["message_index"],
        delivered_at=data["delivered_at"],
        recipient=data["recipient"],
        sender_domain=data["sender_domain"],
    )
    if data["auth"] is not None:
        record.auth = AuthResults(**data["auth"])
    record.category = data["category"]
    record.spear_brand = data["spear_brand"]
    if data["spear_distances"] is not None:
        record.spear_distances = tuple(data["spear_distances"])
    record.local_login_form = data["local_login_form"]
    record.noise_padded = data["noise_padded"]
    record.stage_status = dict(data.get("stage_status") or {})
    record.stage_errors = dict(data.get("stage_errors") or {})
    if data.get("quarantine") is not None:
        record.quarantine = QuarantineReport.from_dict(data["quarantine"])
    record.benign_url_skips = tuple(data.get("benign_url_skips") or ())
    if data.get("fault_telemetry") is not None:
        record.fault_telemetry = FaultTelemetry.from_dict(data["fault_telemetry"])
    record.qr_payloads = tuple(tuple(item) for item in data["qr_payloads"])
    record.crawls = [_crawl_from_dict(item) for item in data["crawls"]]
    record.local_session_signals = [
        s for s in (_signals_from_dict(item) for item in data["local_session_signals"]) if s
    ]
    if data["extraction"] is not None:
        report = ExtractionReport()
        report.urls = [
            ExtractedUrl(url=item["url"], method=item["method"], part_path=item["part_path"])
            for item in data["extraction"]["urls"]
        ]
        report.qr_payloads = [tuple(item) for item in data["extraction"]["qr_payloads"]]
        report.html_attachment_paths = set(data["extraction"]["html_attachment_paths"])
        report.content_types = list(data["extraction"]["content_types"])
        record.extraction = report
    return record


def load_records(path: str | pathlib.Path) -> list[MessageRecord]:
    """Reload a saved study run for offline re-analysis."""
    document = json.loads(pathlib.Path(path).read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported artifact format version {version!r}")
    return [record_from_dict(item) for item in document["records"]]
