"""The CrawlerBox pipeline: fetch -> parse -> crawl -> log (Figure 1).

``CrawlerBox.analyze(message)`` drives a validated
:class:`~repro.core.stages.StagePlan` over one reported message: SPF/
DKIM/DMARC evaluation, recursive part parsing, dynamic loading of
HTML/JavaScript attachments, crawling of every discovered URL with the
configured crawler (NotABot by default), screenshot hashing,
spear-phishing classification, outcome bucketing, and enrichment —
producing one :class:`~repro.core.artifacts.MessageRecord`.

The stage bodies live in :mod:`repro.core.stages.builtin`; this module
owns the components they share (crawler, parser, enricher, classifier),
the per-message RNG seeding, and the URL admission policy.  Each stage
runs under failure isolation (see :mod:`repro.core.stages.plan`): an
exception degrades the record's ``stage_status`` map instead of
aborting the message, so the runner's dead-letter machinery only sees
infrastructure faults.  A subset plan (``repro run --stages
auth,parse``) performs cheap triage without ever invoking the crawler.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import Sequence

from repro._budget import DEFAULT_WORK_LIMIT, MessageBudget, activate
from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory
from repro.core.stages.base import StageStatus
from repro.mail.guard import GuardLimits, MessageGuard
from repro.web.resilient import FaultTelemetry, ResiliencePolicy
from repro.core.spearphish import SpearPhishClassifier
from repro.core.stages import AnalysisContext, build_plan
from repro.crawlers.base import Crawler
from repro.crawlers.notabot import notabot_profile
from repro.enrichment.enricher import Enricher
from repro.kits.attachment import LEGIT_MEDIA_HOSTS
from repro.kits.brands import COMPANY_BRANDS
from repro.mail.auth import MailAuthDns
from repro.mail.message import EmailMessage
from repro.mail.parser import EmailParser
from repro.runner.profile import NULL_PROFILER
from repro.web.network import Network, UTILITY_HOSTS
from repro.web.urls import UrlError, parse_url

#: Well-known benign infrastructure the crawler skips: the media CDNs
#: the attachment kits hotlink page furniture from, and the IP echo /
#: geolocation utilities the kits' server-side filtering calls.  The
#: paper crawls phishing resources, not utilities.
BENIGN_INFRASTRUCTURE_HOSTS: frozenset[str] = frozenset(LEGIT_MEDIA_HOSTS) | frozenset(
    UTILITY_HOSTS
)


@dataclass
class PipelineConfig:
    """Tunable pipeline behaviour."""

    lenient_qr: bool = True
    spear_threshold: int = 10
    timer_rounds: int = 3
    max_urls_per_message: int = 6
    #: Hours between expert tagging and analysis ("CrawlerBox analyzes
    #: the reported emails as soon as they are tagged by experts").
    analysis_delay_hours: float = 1.0
    #: Screenshot + hash pages (needed for spear classification).
    take_screenshots: bool = True
    enrich: bool = True
    #: Skip crawling :data:`BENIGN_INFRASTRUCTURE_HOSTS` (skips are
    #: counted on ``MessageRecord.benign_url_skips``).  Disable to
    #: reproduce pre-skip-list crawl sets.
    skip_benign_hosts: bool = True
    #: Run the structural-limits guard (:mod:`repro.mail.guard`) before
    #: the stage plan; violating messages become ``quarantined`` records
    #: instead of entering the pipeline.
    guard_enabled: bool = True
    #: Structural caps (None = :class:`~repro.mail.guard.GuardLimits`
    #: defaults, generous enough that no calibrated-corpus message
    #: trips them).
    guard_limits: GuardLimits | None = None
    #: Per-message cooperative work-unit budget (None = unlimited); see
    #: :mod:`repro._budget`.  Exhaustion degrades the running stage to
    #: ``failed``, never the worker.  Deterministic: work units depend
    #: only on the message.
    budget_work_units: int | None = DEFAULT_WORK_LIMIT
    #: Optional wall-clock backstop per message, in seconds.  Off by
    #: default: a deadline trades byte-identical records for liveness.
    budget_deadline_seconds: float | None = None


def build_pipeline_config(
    budget: int | None = None,
    guard_limits: tuple[tuple[str, int], ...] | None = None,
) -> PipelineConfig | None:
    """The pipeline config the CLI's ``--budget`` / ``--guard-limit``
    overrides resolve to, or None when neither is set (so callers keep
    passing ``config=None`` and stay byte-identical to default runs).

    ``budget`` uses the CLI convention: None = pipeline default, 0 =
    unlimited.  ``guard_limits`` takes the picklable ``(key, value)``
    pair form of :func:`~repro.mail.guard.parse_guard_limit`.  Shared by
    ``repro run``, the process workers' ``RunnerConfig.build``, and the
    ``repro serve`` daemon, so every backend resolves overrides the same
    way.
    """
    if budget is None and not guard_limits:
        return None
    overrides: dict = {}
    if budget is not None:
        overrides["budget_work_units"] = budget or None
    if guard_limits:
        from repro.mail.guard import guard_limits_from_overrides

        overrides["guard_limits"] = guard_limits_from_overrides(guard_limits)
    return PipelineConfig(**overrides)


class CrawlerBox:
    """The analysis infrastructure."""

    def __init__(
        self,
        network: Network,
        mail_dns: MailAuthDns | None = None,
        crawler: Crawler | None = None,
        enricher: Enricher | None = None,
        spear_classifier: SpearPhishClassifier | None = None,
        config: PipelineConfig | None = None,
        rng: random.Random | None = None,
        profiler=None,
        stages: Sequence[str] | None = None,
    ):
        self.network = network
        #: Per-stage timing sink (``repro run --profile``); the null
        #: profiler makes the instrumentation free when disabled.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.mail_dns = mail_dns or MailAuthDns()
        self.config = config or PipelineConfig()
        self.rng = rng or random.Random(7)
        #: Stable per-run seed material, drawn once: every message's
        #: crawler stream is derived from (material, message_index), so
        #: analyzing messages out of order — or a single message in
        #: isolation — yields the same record as a full serial run.
        self._seed_material = self.rng.getrandbits(64)
        #: The validated stage plan (``stages=None`` selects every
        #: built-in stage in Figure 1 order); invalid selections raise
        #: :class:`~repro.core.stages.StagePlanError` here, before any
        #: message is analyzed.
        self.plan = build_plan(stages)
        #: Structural-limits pass applied before the plan (see
        #: :mod:`repro.mail.guard`); None when disabled.
        self.guard = (
            MessageGuard(self.config.guard_limits) if self.config.guard_enabled else None
        )
        self.crawler = crawler or Crawler(
            network, notabot_profile(), rng=self.rng, retain_results=False
        )
        self.enricher = enricher or Enricher(network)
        #: Retry/breaker/deadline knobs for the resilient crawl path;
        #: only consulted when the network carries an active fault
        #: engine (``Network.install_faults``).
        self.resilience_policy = ResiliencePolicy()
        self.parser = EmailParser(lenient_qr=self.config.lenient_qr)
        if spear_classifier is None:
            spear_classifier = SpearPhishClassifier.from_portals(
                network, COMPANY_BRANDS, threshold=self.config.spear_threshold
            )
        self.spear_classifier = spear_classifier
        self.records: list[MessageRecord] = []

    # ------------------------------------------------------------------
    @classmethod
    def for_world(cls, world, **kwargs) -> "CrawlerBox":
        """Wire a CrawlerBox against a generated world."""
        enricher = Enricher(world.network, world.passive_dns, world.shodan)
        return cls(world.network, mail_dns=world.mail_dns, enricher=enricher, **kwargs)

    # ------------------------------------------------------------------
    def message_seed(self, message_index: int) -> int:
        """The crawler RNG seed for one message.

        Mixed through BLAKE2 so neighbouring indices produce unrelated
        streams; depends only on the seed material and the index, never
        on how many messages were analyzed before this one.
        """
        digest = hashlib.blake2b(
            f"{self._seed_material}:{message_index}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    # ------------------------------------------------------------------
    def analyze(self, message: EmailMessage, message_index: int = 0) -> MessageRecord:
        """Run the stage plan over one reported message.

        Thin driver: build the record and context, seed the per-message
        crawler RNG, and hand off to :meth:`StagePlan.run`.  Profiler
        stage rows derive from the plan's registry names; whatever wall
        clock the stages themselves do not account for (record/context
        construction, plan bookkeeping) lands in the ``unattributed``
        bucket so the ``--profile`` table sums to the total.
        """
        profiling = self.profiler.enabled
        started = time.perf_counter() if profiling else 0.0
        record = MessageRecord(
            message_index=message_index,
            delivered_at=message.delivered_at,
            recipient=message.recipient,
            sender_domain=message.sender_domain,
            ground_truth=dict(message.ground_truth),
        )
        if self.guard is not None:
            report = self.guard.inspect(message)
            if report is not None:
                # Structurally hostile: quarantine instead of analyzing.
                # A pure function of the message, so the decision — and
                # the record — is identical on every backend.
                record.quarantine = report
                record.category = MessageCategory.QUARANTINED
                record.stage_status = {
                    name: StageStatus.SKIPPED for name in self.plan.all_stage_names
                }
                if profiling:
                    self.profiler.record("unattributed", time.perf_counter() - started)
                return record
        engine = getattr(self.network, "faults", None)
        if engine is not None and engine.active:
            record.fault_telemetry = FaultTelemetry()
        self.crawler.rng = random.Random(self.message_seed(message_index))
        ctx = AnalysisContext(
            message=message,
            message_index=message_index,
            box=self,
            config=self.config,
            rng=self.crawler.rng,
            record=record,
            analysis_time=message.delivered_at + self.config.analysis_delay_hours,
        )
        budget = None
        if (
            self.config.budget_work_units is not None
            or self.config.budget_deadline_seconds is not None
        ):
            budget = MessageBudget(
                work_limit=self.config.budget_work_units,
                deadline_seconds=self.config.budget_deadline_seconds,
            )
        with activate(budget):
            attributed = self.plan.run(ctx, profiler=self.profiler)
        if profiling:
            self.profiler.record(
                "unattributed", (time.perf_counter() - started) - attributed
            )
        return record

    def analyze_to_wire(
        self, message: EmailMessage, message_index: int = 0
    ) -> tuple[MessageRecord, bytes]:
        """``(record, wire)``: the record plus its checkpoint wire form.

        The record→bytes rendering of the data plane lives behind this
        one method: process workers call it so checkpoint lines ship
        fully serialized (compact JSON + CRC32 suffix) and the parent
        appends bytes without re-rendering; the thread backend calls the
        same method, which is what keeps every backend byte-identical.
        """
        from repro.core.export import record_to_wire

        record = self.analyze(message, message_index=message_index)
        return record, record_to_wire(record)

    def analyze_corpus(self, messages: list[EmailMessage]) -> list[MessageRecord]:
        """Analyze a whole corpus, keeping the records.

        Delegates to a single-worker :class:`~repro.runner.runner.CorpusRunner`
        — the same engine the ``--jobs N`` CLI path uses — so serial
        callers and sharded runs share one code path (and, because each
        message's RNG stream depends only on its index, one output).
        """
        from repro.runner.runner import CorpusRunner

        runner = CorpusRunner(box_factory=lambda worker_id: self, jobs=1)
        self.records = runner.run(messages).records
        return self.records

    # ------------------------------------------------------------------
    def _crawlable(self, url: str, record: MessageRecord | None = None) -> bool:
        """URL admission policy for the crawl stage.

        Rejects unparsable URLs and reserved ``.invalid`` hosts, and —
        unless ``config.skip_benign_hosts`` is off — skips well-known
        benign infrastructure (media CDNs, IP echo services), counting
        each skip on ``record.benign_url_skips``.
        """
        try:
            host = parse_url(url).host
        except UrlError:
            return False
        if host.endswith((".invalid",)):
            return False
        if self.config.skip_benign_hosts and self._is_benign_infrastructure(host):
            if record is not None:
                record.benign_url_skips = record.benign_url_skips + (url,)
            return False
        return True

    @staticmethod
    def _is_benign_infrastructure(host: str) -> bool:
        """``host`` is (a subdomain of) a known benign utility host."""
        return any(
            host == benign or host.endswith(f".{benign}")
            for benign in BENIGN_INFRASTRUCTURE_HOSTS
        )
