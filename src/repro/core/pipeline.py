"""The CrawlerBox pipeline: fetch -> parse -> crawl -> log (Figure 1).

``CrawlerBox.analyze(message)`` performs the full per-message analysis:
SPF/DKIM/DMARC evaluation, recursive part parsing, dynamic loading of
HTML/JavaScript attachments, crawling of every discovered URL with the
configured crawler (NotABot by default), screenshot hashing,
spear-phishing classification, outcome bucketing, and enrichment —
producing one :class:`~repro.core.artifacts.MessageRecord`.
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass

from repro.browser.browser import VisitResult
from repro.core.artifacts import MessageRecord, UrlCrawl
from repro.core.outcomes import (
    MessageCategory,
    PageClass,
    aggregate_message_category,
    classify_visit,
)
from repro.core.spearphish import SpearPhishClassifier
from repro.crawlers.base import Crawler
from repro.crawlers.notabot import notabot_profile
from repro.enrichment.enricher import Enricher
from repro.imaging.phash import dhash, phash
from repro.kits.brands import COMPANY_BRANDS
from repro.mail.auth import MailAuthDns, evaluate_authentication
from repro.mail.message import EmailMessage
from repro.mail.parser import EmailParser
from repro.runner.profile import NULL_PROFILER
from repro.web.network import Network
from repro.web.urls import UrlError, parse_url

_NOISE_RE = re.compile(r"\n{25,}")


def _merge_signals(all_signals: list):
    """Union the evasion signals observed across a navigation chain."""
    from repro.browser.session import SessionSignals

    if not all_signals:
        return None
    if len(all_signals) == 1:
        return all_signals[0]
    merged = SessionSignals(
        console_hijacked=any(s.console_hijacked for s in all_signals),
        debugger_hits=sum(s.debugger_hits for s in all_signals),
        uses_debugger_timer=any(s.uses_debugger_timer for s in all_signals),
        context_menu_blocked=any(s.context_menu_blocked for s in all_signals),
        devtools_keys_blocked=any(s.devtools_keys_blocked for s in all_signals),
        hue_rotation_deg=next(
            (s.hue_rotation_deg for s in all_signals if s.hue_rotation_deg), 0.0
        ),
        navigator_reads=tuple(
            read for s in all_signals for read in s.navigator_reads
        ),
        intl_timezone_read=any(s.intl_timezone_read for s in all_signals),
        screen_reads=tuple(read for s in all_signals for read in s.screen_reads),
        script_errors=tuple(err for s in all_signals for err in s.script_errors),
        popups=tuple(p for s in all_signals for p in s.popups),
    )
    return merged


@dataclass
class PipelineConfig:
    """Tunable pipeline behaviour."""

    lenient_qr: bool = True
    spear_threshold: int = 10
    timer_rounds: int = 3
    max_urls_per_message: int = 6
    #: Hours between expert tagging and analysis ("CrawlerBox analyzes
    #: the reported emails as soon as they are tagged by experts").
    analysis_delay_hours: float = 1.0
    #: Screenshot + hash pages (needed for spear classification).
    take_screenshots: bool = True
    enrich: bool = True


class CrawlerBox:
    """The analysis infrastructure."""

    def __init__(
        self,
        network: Network,
        mail_dns: MailAuthDns | None = None,
        crawler: Crawler | None = None,
        enricher: Enricher | None = None,
        spear_classifier: SpearPhishClassifier | None = None,
        config: PipelineConfig | None = None,
        rng: random.Random | None = None,
        profiler=None,
    ):
        self.network = network
        #: Per-stage timing sink (``repro run --profile``); the null
        #: profiler makes the instrumentation free when disabled.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.mail_dns = mail_dns or MailAuthDns()
        self.config = config or PipelineConfig()
        self.rng = rng or random.Random(7)
        #: Stable per-run seed material, drawn once: every message's
        #: crawler stream is derived from (material, message_index), so
        #: analyzing messages out of order — or a single message in
        #: isolation — yields the same record as a full serial run.
        self._seed_material = self.rng.getrandbits(64)
        self.crawler = crawler or Crawler(
            network, notabot_profile(), rng=self.rng, retain_results=False
        )
        self.enricher = enricher or Enricher(network)
        self.parser = EmailParser(lenient_qr=self.config.lenient_qr)
        if spear_classifier is None:
            spear_classifier = SpearPhishClassifier.from_portals(
                network, COMPANY_BRANDS, threshold=self.config.spear_threshold
            )
        self.spear_classifier = spear_classifier
        self.records: list[MessageRecord] = []

    # ------------------------------------------------------------------
    @classmethod
    def for_world(cls, world, **kwargs) -> "CrawlerBox":
        """Wire a CrawlerBox against a generated world."""
        enricher = Enricher(world.network, world.passive_dns, world.shodan)
        return cls(world.network, mail_dns=world.mail_dns, enricher=enricher, **kwargs)

    # ------------------------------------------------------------------
    def message_seed(self, message_index: int) -> int:
        """The crawler RNG seed for one message.

        Mixed through BLAKE2 so neighbouring indices produce unrelated
        streams; depends only on the seed material and the index, never
        on how many messages were analyzed before this one.
        """
        digest = hashlib.blake2b(
            f"{self._seed_material}:{message_index}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    # ------------------------------------------------------------------
    def analyze(self, message: EmailMessage, message_index: int = 0) -> MessageRecord:
        """Run the full pipeline over one reported message."""
        record = MessageRecord(
            message_index=message_index,
            delivered_at=message.delivered_at,
            recipient=message.recipient,
            sender_domain=message.sender_domain,
            ground_truth=dict(message.ground_truth),
        )
        with self.profiler.stage("auth"):
            record.auth = evaluate_authentication(message, self.mail_dns)

        with self.profiler.stage("parse"):
            report = self.parser.parse(message)
        record.extraction = report
        record.qr_payloads = tuple(report.qr_payloads)
        record.noise_padded = bool(_NOISE_RE.search(message.body_text()))

        analysis_time = message.delivered_at + self.config.analysis_delay_hours
        self.crawler.rng = random.Random(self.message_seed(message_index))

        # Dynamic loading of HTML documents (attachments and bodies).
        from repro.core.outcomes import _password_form_visible

        dynamic_urls: list[str] = []
        with self.profiler.stage("dynamic-html"):
            for part_path, markup in report.html_documents:
                session = self.crawler.crawl_html(markup, timestamp=analysis_time)
                record.local_session_signals.append(session.signals())
                is_attachment = part_path in report.html_attachment_paths
                if is_attachment and _password_form_visible(session):
                    record.local_login_form = True
                target = session.navigation_target
                if target:
                    resolved = session.resolve_url(target)
                    if resolved is not None:
                        dynamic_urls.append(resolved.raw)

        urls: list[str] = []
        seen: set[str] = set()
        for extracted in report.urls:
            if extracted.url not in seen:
                seen.add(extracted.url)
                urls.append(extracted.url)
        for url in dynamic_urls:
            if url not in seen:
                seen.add(url)
                urls.append(url)
        urls = [url for url in urls if self._crawlable(url)]
        urls = urls[: self.config.max_urls_per_message]

        method_by_url = {item.url: item.method for item in report.urls}
        for url in urls:
            crawl = self._crawl_one(
                url,
                analysis_time,
                discovered_dynamically=url in dynamic_urls,
                extraction_method=method_by_url.get(url, "dynamic"),
            )
            record.crawls.append(crawl)

        record.category = aggregate_message_category(
            had_urls=bool(urls) or bool(report.urls),
            page_classes=[crawl.page_class for crawl in record.crawls],
            local_login_form=record.local_login_form,
        )

        with self.profiler.stage("spear"):
            self._classify_spear(record)
        if self.config.enrich:
            with self.profiler.stage("enrich"):
                self._enrich(record, analysis_time)
        return record

    def analyze_corpus(self, messages: list[EmailMessage]) -> list[MessageRecord]:
        """Analyze a whole corpus, keeping the records.

        Delegates to a single-worker :class:`~repro.runner.runner.CorpusRunner`
        — the same engine the ``--jobs N`` CLI path uses — so serial
        callers and sharded runs share one code path (and, because each
        message's RNG stream depends only on its index, one output).
        """
        from repro.runner.runner import CorpusRunner

        runner = CorpusRunner(box_factory=lambda worker_id: self, jobs=1)
        self.records = runner.run(messages).records
        return self.records

    # ------------------------------------------------------------------
    def _crawlable(self, url: str) -> bool:
        try:
            host = parse_url(url).host
        except UrlError:
            return False
        # Skip well-known benign infrastructure (media CDNs, IP echo
        # services); the paper crawls phishing resources, not utilities.
        return not host.endswith((".invalid",))

    def _crawl_one(
        self,
        url: str,
        analysis_time: float,
        discovered_dynamically: bool,
        extraction_method: str,
    ) -> UrlCrawl:
        with self.profiler.stage("crawl"):
            result: VisitResult = self.crawler.crawl_url(url, timestamp=analysis_time)
        page_class = classify_visit(result)
        session = result.final_session

        landing_domain = ""
        final_url = result.final_url
        try:
            landing_domain = parse_url(final_url).host
        except UrlError:
            pass

        certificate = result.certificates[-1] if result.certificates else None
        signals = _merge_signals([s.signals() for s in result.sessions]) if result.sessions else None
        screenshot_phash = screenshot_dhash = None
        if (
            self.config.take_screenshots
            and session is not None
            and page_class in (PageClass.LOGIN_FORM, PageClass.GATED_LOGIN, PageClass.INTERACTION, PageClass.BENIGN)
        ):
            with self.profiler.stage("screenshot-hash"):
                screenshot = session.screenshot()
                screenshot_phash = phash(screenshot)
                screenshot_dhash = dhash(screenshot)

        resource_requests = tuple(
            (request.url, request.kind, request.referrer)
            for request in result.requests
            if request.kind in ("resource", "script")
        )
        # Aggregate network/script observations across the whole chain:
        # challenge interstitials run (and call home) before the final
        # page ever loads.
        ajax_urls = tuple(
            call.url for chain_session in result.sessions for call in chain_session.ajax_log
        )
        executed_scripts = tuple(
            script for chain_session in result.sessions for script in chain_session.executed_scripts
        )
        final_title = ""
        final_text = ""
        if session is not None:
            final_title = session.parsed.title
            final_text = (session.parsed.text or "")[:200]

        return UrlCrawl(
            url=url,
            outcome=result.outcome,
            page_class=page_class,
            final_url=final_url,
            url_chain=tuple(result.url_chain),
            landing_domain=landing_domain,
            server_ip=result.server_ips.get(landing_domain, ""),
            certificate_fingerprint=certificate.fingerprint if certificate else "",
            certificate_not_before=certificate.not_before if certificate else None,
            signals=signals,
            resource_requests=resource_requests,
            ajax_urls=ajax_urls,
            screenshot_phash=screenshot_phash,
            screenshot_dhash=screenshot_dhash,
            executed_scripts=executed_scripts,
            http_statuses=tuple(response.status for response in result.responses),
            discovered_dynamically=discovered_dynamically,
            extraction_method=extraction_method,
            final_title=final_title,
            final_text_snippet=final_text,
        )

    def _classify_spear(self, record: MessageRecord) -> None:
        if record.category != MessageCategory.ACTIVE_PHISHING:
            return
        from repro.imaging.phash import hamming_distance

        best = None
        for crawl in record.crawls:
            if crawl.page_class != PageClass.LOGIN_FORM or crawl.screenshot_phash is None:
                continue
            for reference in self.spear_classifier.references:
                p_distance = hamming_distance(crawl.screenshot_phash, reference.phash)
                d_distance = hamming_distance(crawl.screenshot_dhash, reference.dhash)
                threshold = self.spear_classifier.threshold
                if p_distance <= threshold and d_distance <= threshold:
                    candidate = (p_distance + d_distance, reference.brand, p_distance, d_distance)
                    if best is None or candidate < best:
                        best = candidate
        if best is not None:
            record.spear_brand = best[1]
            record.spear_distances = (best[2], best[3])

    def _enrich(self, record: MessageRecord, analysis_time: float) -> None:
        for crawl in record.crawls:
            domain = crawl.landing_domain
            if domain and domain not in record.enrichments:
                record.enrichments[domain] = self.enricher.enrich(
                    domain, at_time=record.delivered_at, server_ip=crawl.server_ip
                )
