"""The Section IV-A triage funnel.

"These companies handle over 60 million inbound emails monthly [...]
17% of all messages are filtered out [...] about 14,000 are monthly
reported as suspicious by end-users (corresponding to 0.03% of the
total delivered messages) [...] among the reported emails, about 3.7%
are found to be malicious, while the rest are flagged as either
legitimate (35.0%) or spam (61.3%)."

The simulation draws per-message expert tags from the reported stream
so the funnel's output is *computed*, not copied.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dataset.calibration import CALIBRATION, Calibration

TAG_MALICIOUS = "malicious"
TAG_SPAM = "spam"
TAG_LEGITIMATE = "legitimate"


@dataclass(frozen=True)
class TriageFunnel:
    """One month of the funnel, as measured."""

    inbound: int
    gateway_filtered: int
    delivered: int
    reported: int
    tagged_malicious: int
    tagged_spam: int
    tagged_legitimate: int

    @property
    def reported_fraction_of_delivered(self) -> float:
        return self.reported / self.delivered if self.delivered else 0.0

    @property
    def malicious_fraction_of_reported(self) -> float:
        return self.tagged_malicious / self.reported if self.reported else 0.0


def expert_tag(rng: random.Random, calibration: Calibration = CALIBRATION) -> str:
    """Draw one expert verdict for a user-reported message."""
    roll = rng.random()
    if roll < calibration.reported_split_malicious:
        return TAG_MALICIOUS
    if roll < calibration.reported_split_malicious + calibration.reported_split_spam:
        return TAG_SPAM
    return TAG_LEGITIMATE


def simulate_triage_funnel(
    rng: random.Random,
    calibration: Calibration = CALIBRATION,
    reported_sample: int | None = None,
) -> TriageFunnel:
    """Simulate one month of triage.

    ``reported_sample`` caps how many reported messages are individually
    tagged (the full 14,000 is cheap but tests may shrink it).
    """
    inbound = calibration.monthly_inbound_emails
    gateway_filtered = int(inbound * calibration.gateway_filtered_fraction)
    delivered = inbound - gateway_filtered
    reported = calibration.monthly_user_reports

    sample = reported if reported_sample is None else min(reported, reported_sample)
    tags = [expert_tag(rng, calibration) for _ in range(sample)]
    scale = reported / sample if sample else 0.0
    malicious = int(round(tags.count(TAG_MALICIOUS) * scale))
    spam = int(round(tags.count(TAG_SPAM) * scale))
    legitimate = reported - malicious - spam
    return TriageFunnel(
        inbound=inbound,
        gateway_filtered=gateway_filtered,
        delivered=delivered,
        reported=reported,
        tagged_malicious=malicious,
        tagged_spam=spam,
        tagged_legitimate=legitimate,
    )
