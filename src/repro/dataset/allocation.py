"""Deterministic allocation helpers for the corpus generator.

These functions turn the paper's aggregate targets into concrete,
seeded assignments: messages-per-domain tiers, TLD labels, deceptive
techniques, monthly quotas, and the Figure 3 timeline samples.
"""

from __future__ import annotations

import math
import random

from repro.dataset.calibration import Calibration

# ----------------------------------------------------------------------
# Messages-per-domain tiers (median 1, max 58, heavy tail).
# ----------------------------------------------------------------------
#: (domain_count, messages_each) for the 411 spear domains -> 1,137 msgs.
SPEAR_TIERS: tuple[tuple[int, int], ...] = (
    (240, 1),
    (99, 2),
    (1, 5),
    (40, 5),
    (15, 9),
    (10, 15),
    (4, 30),
    (1, 31),
    (1, 58),
)

#: (domain_count, messages_each) for the 96 commodity credential domains
#: -> 130 unique-page messages (extras are layered on separately).
COMMODITY_TIERS: tuple[tuple[int, int], ...] = (
    (62, 1),
    (34, 2),
)


def expand_tiers(tiers: tuple[tuple[int, int], ...], scale: float = 1.0) -> list[int]:
    """Per-domain message counts, largest campaigns first."""
    counts: list[int] = []
    for domain_count, messages_each in tiers:
        scaled_domains = domain_count if scale >= 1.0 else max(1, round(domain_count * scale))
        counts.extend([messages_each] * scaled_domains)
    counts.sort(reverse=True)
    return counts


def distribute_extras(total_extra: int, n_domains: int, rng: random.Random) -> list[int]:
    """Spread follow-up messages over domains (front-loaded, seeded)."""
    extras = [0] * n_domains
    remaining = total_extra
    index = 0
    while remaining > 0:
        step = min(remaining, 1 + rng.randrange(3))
        extras[index % n_domains] += step
        remaining -= step
        index += 1
    return extras


# ----------------------------------------------------------------------
# TLD assignment (Table II).
# ----------------------------------------------------------------------
def tld_labels(calibration: Calibration, total_domains: int, rng: random.Random) -> list[str]:
    """One TLD per landing domain, matching Table II's histogram."""
    labels: list[str] = []
    for tld, count in calibration.tld_distribution:
        labels.extend([tld] * count)
    other = calibration.other_tld_count
    for index in range(other):
        labels.append(calibration.other_tlds[index % len(calibration.other_tlds)])
    if total_domains < len(labels):
        # Scaled-down corpora: subsample proportionally, preserving order
        # (so .com stays dominant).
        stride = len(labels) / total_domains
        labels = [labels[int(index * stride)] for index in range(total_domains)]
    elif total_domains > len(labels):
        labels.extend([".com"] * (total_domains - len(labels)))
    rng.shuffle(labels)
    return labels


# ----------------------------------------------------------------------
# Monthly quotas.
# ----------------------------------------------------------------------
def monthly_quota(total: int, month_weights: tuple[int, ...]) -> list[int]:
    """Apportion ``total`` across months by weight (largest remainder)."""
    weight_sum = sum(month_weights)
    raw = [total * weight / weight_sum for weight in month_weights]
    floors = [math.floor(value) for value in raw]
    shortfall = total - sum(floors)
    remainders = sorted(
        range(len(raw)), key=lambda index: raw[index] - floors[index], reverse=True
    )
    for index in remainders[:shortfall]:
        floors[index] += 1
    return floors


class MonthAllocator:
    """Hands out delivery months against a per-month quota."""

    def __init__(self, quota: list[int], hours_per_month: float, rng: random.Random):
        self.remaining = list(quota)
        self.hours_per_month = hours_per_month
        self.rng = rng

    def take(self, count: int) -> int:
        """Pick the month with the most remaining room for a campaign."""
        month = max(range(len(self.remaining)), key=lambda index: self.remaining[index])
        self.remaining[month] -= count
        return month

    def delivery_hour(self, month: int) -> float:
        """A concrete delivery timestamp inside the month."""
        return month * self.hours_per_month + self.rng.uniform(1.0, self.hours_per_month - 1.0)


# ----------------------------------------------------------------------
# Figure 3 timelines.
# ----------------------------------------------------------------------
def lognormal_hours(median: float, sigma: float, rng: random.Random) -> float:
    """A lognormal sample parameterised by its median."""
    return median * math.exp(rng.gauss(0.0, sigma))


def sample_bulk_timedeltas(
    n_domains: int,
    n_forced_tail: int,
    rng: random.Random,
) -> list[tuple[float, float]]:
    """(timedeltaA, timedeltaB) for the non-outlier ("fresh") domains.

    Constants tuned so the *overall* 522-domain medians land near the
    paper's 575 h / 185 h once the outlier classes are merged in.
    """
    samples: list[tuple[float, float]] = []
    for index in range(n_domains):
        if index < n_forced_tail:
            # The 90-273 day tail that is over-90d but not an "outlier".
            delta_a = rng.uniform(2200.0, 6400.0)
        else:
            delta_a = min(lognormal_hours(400.0, 0.95, rng), 2100.0)
            delta_a = max(delta_a, 24.0)
        delta_b = min(lognormal_hours(150.0, 0.85, rng), 1050.0)
        delta_b = max(min(delta_b, delta_a - 1.0), 4.0)
        samples.append((delta_a, delta_b))
    rng.shuffle(samples)
    return samples


def sample_outlier_timedeltas(
    klass: str, index: int, rng: random.Random
) -> tuple[float, float]:
    """(timedeltaA, timedeltaB) for one outlier domain of a given class."""
    if klass == "fresh-outlier":
        delta_a = rng.uniform(6600.0, 15000.0)
        delta_b = max(4.0, min(lognormal_hours(150.0, 0.8, rng), 1050.0))
    elif klass == "compromised":
        delta_a = rng.uniform(8760.0, 26280.0)
        if index < 4:  # the four compromised domains with certs > 90 d old
            delta_b = rng.uniform(2200.0, 3600.0)
        else:
            delta_b = rng.uniform(1100.0, 2100.0)
    elif klass == "abused-service":
        delta_a = rng.uniform(17520.0, 35040.0)
        if index == 0:  # the one non-compromised timedeltaB > 90 d domain
            delta_b = rng.uniform(2200.0, 3000.0)
        else:
            delta_b = rng.uniform(1100.0, 2100.0)
    else:
        raise ValueError(f"unknown outlier class {klass!r}")
    return delta_a, delta_b
