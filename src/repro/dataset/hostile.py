"""Seeded hostile-message generator: pathological inputs by construction.

The calibrated corpus (:mod:`repro.dataset.generator`) models what the
paper *measured*; this module models what a production CrawlerBox also
receives — user-reported messages that are malformed or deliberately
pathological.  Every shape here targets one specific defense:

==================  ==================================================
shape               expected outcome
==================  ==================================================
``deep-nesting``    quarantined: ``mime-depth`` (nested archive chain)
``part-bomb``       quarantined: ``part-count`` (hundreds of leaves)
``base64-bomb``     quarantined: ``decoded-bytes`` (one huge payload,
                    estimated without decoding)
``total-bomb``      quarantined: ``total-decoded-bytes`` (many parts
                    each under the per-part cap)
``archive-bomb``    quarantined: ``archive-entries`` (zip bomb)
``rfc822-chain``    quarantined: ``rfc822-depth`` (message/rfc822
                    recursion)
``header-bomb``     quarantined: ``header-count``
``header-giant``    quarantined: ``header-bytes``
``js-loop``         *passes* the structural guard; the runaway script
                    is stopped by the JS step limit (default budget) or
                    by the work budget when ``--budget`` is tighter —
                    degrading stage ``dynamic-html`` to ``failed``.
==================  ==================================================

:data:`EXPECTED_VIOLATIONS` records the mapping so tests (and the CI
hostile-ingest job) can assert not just "nothing crashed" but that each
shape tripped the *intended* limit.

Determinism: :func:`hostile_corpus` is a pure function of ``(seed,
copies)`` — both backends regenerate identical hostile messages, so
hostile-ingest runs stay byte-identical across thread/process executors
and worker counts.
"""

from __future__ import annotations

import random

from repro.mail.attachments import ArchiveFile
from repro.mail.message import ContentType, EmailMessage, MessagePart

#: shape name -> the guard limit its quarantine report must lead with
#: (None = the shape passes the guard and is handled downstream).
EXPECTED_VIOLATIONS: dict[str, str | None] = {
    "deep-nesting": "mime-depth",
    "part-bomb": "part-count",
    "base64-bomb": "decoded-bytes",
    "total-bomb": "total-decoded-bytes",
    "archive-bomb": "archive-entries",
    "rfc822-chain": "rfc822-depth",
    "header-bomb": "header-count",
    "header-giant": "header-bytes",
    "js-loop": None,
}

#: Shape emission order (fixed, so message indices are stable).
SHAPES: tuple[str, ...] = tuple(EXPECTED_VIOLATIONS)


def _base(shape: str, rng: random.Random) -> EmailMessage:
    return EmailMessage(
        sender=f"attacker{rng.randrange(1000)}@hostile.example",
        recipient="employee@corp.example",
        subject=f"hostile sample: {shape} #{rng.randrange(10_000)}",
        delivered_at=float(rng.randrange(0, 7000)),
        dkim_signed=False,
        ground_truth={"source": "hostile", "shape": shape},
    )


def _deep_nesting(rng: random.Random) -> EmailMessage:
    # 24 nested archives: each level adds one mime-depth (default cap 16).
    inner: object = "payload.txt contents"
    for level in range(24):
        inner = ArchiveFile().add(f"layer{level}.zip", inner)
    message = _base("deep-nesting", rng)
    return message.add_part(
        MessagePart(ContentType.ZIP, inner, filename="matryoshka.zip", inline=False)
    )


def _part_bomb(rng: random.Random) -> EmailMessage:
    message = _base("part-bomb", rng)
    for index in range(600):  # default part cap 512
        message.add_part(MessagePart.text(f"fragment {index}"))
    return message


def _base64_bomb(rng: random.Random) -> EmailMessage:
    # 6M encoded chars estimate to ~4.5 MiB decoded (cap 4 MiB); the
    # guard sizes it arithmetically and never materializes the decode.
    message = _base("base64-bomb", rng)
    message.add_part(
        MessagePart(
            ContentType.TEXT,
            "QUJD" * 1_500_000,
            transfer_encoding="base64",
            filename="invoice.txt",
        )
    )
    return message


def _total_bomb(rng: random.Random) -> EmailMessage:
    # 9 parts x 2 MiB: each under the 4 MiB per-part cap, 18 MiB total
    # over the 16 MiB whole-message cap.
    message = _base("total-bomb", rng)
    for index in range(9):
        message.add_part(MessagePart.text(("x%d" % index) * (1 << 20)))
    return message


def _archive_bomb(rng: random.Random) -> EmailMessage:
    archive = ArchiveFile()
    for index in range(600):  # default entry cap 512
        archive.add(f"entry{index:04d}.txt", "decompresses forever")
    message = _base("archive-bomb", rng)
    return message.add_part(
        MessagePart(ContentType.ZIP, archive, filename="bomb.zip", inline=False)
    )


def _rfc822_chain(rng: random.Random) -> EmailMessage:
    inner = _base("rfc822-chain", rng)
    inner.add_part(MessagePart.text("the innermost message"))
    for level in range(12):  # default rfc822 cap 8
        wrapper = _base("rfc822-chain", rng)
        wrapper.add_part(
            MessagePart(
                ContentType.EML, inner, filename=f"fwd{level}.eml", inline=False
            )
        )
        inner = wrapper
    return inner


def _header_bomb(rng: random.Random) -> EmailMessage:
    message = _base("header-bomb", rng)
    for index in range(300):  # default header cap 256
        message.headers[f"X-Hostile-{index:04d}"] = f"value {index}"
    message.add_part(MessagePart.text("see headers"))
    return message


def _header_giant(rng: random.Random) -> EmailMessage:
    message = _base("header-giant", rng)
    message.headers["X-Giant"] = "A" * 20_000  # default cap 16 KiB
    message.add_part(MessagePart.text("one very long header"))
    return message


def _js_loop(rng: random.Random) -> EmailMessage:
    # Structurally clean: the guard admits it, and the runaway loop is
    # the work budget's problem (or the JS step limit's, if unlimited).
    message = _base("js-loop", rng)
    markup = (
        "<html><body><p>Loading your document...</p>"
        "<script>var i = 0; while (i < 900000000) { i = i + 1; }</script>"
        "</body></html>"
    )
    message.add_part(MessagePart.html(markup, filename="loader.html", inline=False))
    return message


_BUILDERS = {
    "deep-nesting": _deep_nesting,
    "part-bomb": _part_bomb,
    "base64-bomb": _base64_bomb,
    "total-bomb": _total_bomb,
    "archive-bomb": _archive_bomb,
    "rfc822-chain": _rfc822_chain,
    "header-bomb": _header_bomb,
    "header-giant": _header_giant,
    "js-loop": _js_loop,
}


def hostile_message(shape: str, seed: int = 0) -> EmailMessage:
    """One hostile message of ``shape`` — equal to the corresponding
    entry of ``hostile_corpus(seed, copies=1)``."""
    return _BUILDERS[shape](random.Random(f"{seed}:0:{shape}"))


def hostile_corpus(seed: int = 0, copies: int = 1) -> list[EmailMessage]:
    """``copies`` of every shape, in fixed shape order per copy.

    Index layout is ``copy * len(SHAPES) + shape_position``, identical
    on every regeneration with the same arguments.
    """
    messages: list[EmailMessage] = []
    for copy in range(copies):
        for shape in SHAPES:
            messages.append(_BUILDERS[shape](random.Random(f"{seed}:{copy}:{shape}")))
    return messages
