"""Domain-name generation: neutral names and the deceptive techniques.

Section V-A: only 15.7 % of the 522 landing domains used combosquatting,
target embedding, homoglyphs, keyword stuffing, or typosquatting — "most
of the observed malicious landing domains do not use any of these
tricks", which keeps them out of CT-log-driven scanners' candidate sets.
The generators here produce both populations; the matching detectors
live in :mod:`repro.analysis.domains`.
"""

from __future__ import annotations

import random

_NEUTRAL_WORDS = (
    "harbor", "meadow", "crystal", "summit", "cedar", "atlas", "nova", "delta",
    "orchid", "falcon", "granite", "willow", "ember", "quartz", "breeze", "aurora",
    "cobalt", "juniper", "latitude", "marina", "onyx", "prairie", "saffron", "tundra",
    "velvet", "zephyr", "beacon", "canyon", "drift", "estuary", "fjord", "glacier",
)

_NEUTRAL_SUFFIXES = (
    "digital", "media", "systems", "consulting", "studio", "labs", "group",
    "solutions", "partners", "holdings", "works", "collective", "agency",
)

PHISHY_KEYWORDS = (
    "secure", "login", "verify", "account", "update", "auth", "signin",
    "portal", "support", "service", "mail", "webmail", "sso", "id",
)

_HOMOGLYPH_SUBSTITUTIONS = (
    ("m", "rn"),
    ("w", "vv"),
    ("l", "1"),
    ("o", "0"),
    ("i", "1"),
)


def neutral_domain(rng: random.Random) -> str:
    """A bland, non-deceptive registrable name (without TLD)."""
    style = rng.randrange(3)
    if style == 0:
        return f"{rng.choice(_NEUTRAL_WORDS)}-{rng.choice(_NEUTRAL_WORDS)}"
    if style == 1:
        return f"{rng.choice(_NEUTRAL_WORDS)}{rng.choice(_NEUTRAL_SUFFIXES)}"
    return f"{rng.choice(_NEUTRAL_WORDS)}-{rng.choice(_NEUTRAL_SUFFIXES)}"


def combosquatting_domain(brand_token: str, rng: random.Random) -> str:
    """Brand + keyword joined by a hyphen: ``amatravel-login``."""
    keyword = rng.choice(PHISHY_KEYWORDS)
    if rng.random() < 0.5:
        return f"{brand_token}-{keyword}"
    return f"{keyword}-{brand_token}"


def target_embedding_host(brand_token: str, rng: random.Random) -> str:
    """Brand as a subdomain label of an unrelated registrable domain."""
    base = neutral_domain(rng)
    return f"{brand_token}.{base}"


def homoglyph_domain(brand_token: str, rng: random.Random) -> str:
    """ASCII-homoglyph substitution (never punycode, per the paper)."""
    candidates = [
        (original, replacement)
        for original, replacement in _HOMOGLYPH_SUBSTITUTIONS
        if original in brand_token
    ]
    if not candidates:
        return brand_token + "0"
    original, replacement = candidates[rng.randrange(len(candidates))]
    return brand_token.replace(original, replacement, 1)


def keyword_stuffing_domain(rng: random.Random) -> str:
    """Three or more phishy keywords strung together."""
    count = rng.randrange(3, 5)
    words = rng.sample(PHISHY_KEYWORDS, count)
    return "-".join(words)


def typosquatting_domain(brand_token: str, rng: random.Random) -> str:
    """One edit away from the brand: drop, double, or swap a letter."""
    if len(brand_token) < 4:
        return brand_token + brand_token[-1]
    index = rng.randrange(1, len(brand_token) - 1)
    style = rng.randrange(3)
    if style == 0:  # drop a letter
        return brand_token[:index] + brand_token[index + 1:]
    if style == 1:  # double a letter
        return brand_token[:index] + brand_token[index] + brand_token[index:]
    # swap adjacent letters (fall back to a drop when they are equal,
    # which would otherwise be a no-op)
    chars = list(brand_token)
    if chars[index] == chars[index - 1]:
        return brand_token[:index] + brand_token[index + 1:]
    chars[index], chars[index - 1] = chars[index - 1], chars[index]
    return "".join(chars)


DECEPTIVE_TECHNIQUES = (
    "combosquatting",
    "target-embedding",
    "homoglyph",
    "keyword-stuffing",
    "typosquatting",
)


def deceptive_host(technique: str, brand_token: str, rng: random.Random, tld: str) -> str:
    """A full host using one named deceptive technique."""
    if technique == "combosquatting":
        return combosquatting_domain(brand_token, rng) + tld
    if technique == "target-embedding":
        return target_embedding_host(brand_token, rng) + tld
    if technique == "homoglyph":
        return homoglyph_domain(brand_token, rng) + tld
    if technique == "keyword-stuffing":
        return keyword_stuffing_domain(rng) + tld
    if technique == "typosquatting":
        return typosquatting_domain(brand_token, rng) + tld
    raise ValueError(f"unknown deceptive technique {technique!r}")


def employee_email(rng: random.Random, company_domain: str) -> str:
    """A victim identity at one of the studied companies."""
    first = rng.choice(
        ("ana", "bruno", "chen", "dina", "elif", "farid", "gita", "hugo", "ines",
         "jonas", "kaori", "lena", "marco", "nadia", "omar", "petra", "quentin",
         "rosa", "stefan", "tala", "ugo", "vera", "wei", "yara", "zane")
    )
    last = rng.choice(
        ("martin", "silva", "kumar", "haddad", "novak", "tanaka", "costa", "meyer",
         "lindqvist", "moreau", "okafor", "petrov", "rossi", "schmidt", "yilmaz")
    )
    return f"{first}.{last}@{company_domain}"
