"""The world: everything that exists before any message is analysed.

Bundles the network fabric, the mail-authentication DNS, the passive-DNS
and Shodan databases, the legitimate login portals, the reCAPTCHA
scoring service, and the attacker-side deployment registry — one object
the generator populates and the pipeline consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.botdetect.recaptcha import RecaptchaService
from repro.enrichment.shodan import ShodanDatabase
from repro.enrichment.umbrella import PassiveDnsDatabase
from repro.kits.brands import host_legitimate_portals
from repro.kits.credential import DeployedSite
from repro.mail.auth import DomainMailPolicy, MailAuthDns
from repro.web.network import Network
from repro.web.site import Page, Website, benign_decoy_page
from repro.web.tls import TLSCertificate


@dataclass
class World:
    """The simulated environment the study runs in."""

    seed: int = 2024
    network: Network = field(default_factory=Network)
    mail_dns: MailAuthDns = field(default_factory=MailAuthDns)
    passive_dns: PassiveDnsDatabase = field(default_factory=PassiveDnsDatabase)
    shodan: ShodanDatabase = field(default_factory=ShodanDatabase)
    recaptcha: RecaptchaService = field(default_factory=RecaptchaService)
    #: Attacker deployments by landing domain.
    deployments: dict[str, DeployedSite] = field(default_factory=dict)
    #: Legitimate portal websites by brand name.
    portals: dict = field(default_factory=dict)

    def __post_init__(self):
        self.rng = random.Random(self.seed)
        self.network.install_ip_services()
        self.recaptcha.install(self.network)
        self.portals = host_legitimate_portals(self.network)
        self._host_decoy_and_media_sites()

    # ------------------------------------------------------------------
    def _host_decoy_and_media_sites(self) -> None:
        """Common benign destinations kits redirect bots to."""
        decoy = Website("decoy-landing.example", ip="203.0.113.200")
        decoy.set_default(benign_decoy_page("Marketing insights blog"))
        self.network.host_website(decoy)
        self.network.issue_certificate(
            TLSCertificate("decoy-landing.example", "LetsEncrypt", float("-inf"), float("inf"))
        )
        for index, host in enumerate(("gyazo-cdn.example", "freeimages-cdn.example")):
            site = Website(host, ip=f"203.0.114.{index + 1}")
            site.set_default(Page(html="<html><body>media</body></html>", content_type="image/png"))
            self.network.host_website(site)
            self.network.issue_certificate(
                TLSCertificate(host, "DigiCert", float("-inf"), float("inf"))
            )

    # ------------------------------------------------------------------
    def publish_sender(self, domain: str, sending_ip: str) -> None:
        """Publish SPF/DKIM/DMARC for a sending domain (so auth passes)."""
        existing = self.mail_dns.lookup(domain)
        if existing is not None:
            ips = set(existing.spf_allowed_ips) | {sending_ip}
            self.mail_dns.publish(
                DomainMailPolicy(domain=domain, spf_allowed_ips=frozenset(ips))
            )
            return
        self.mail_dns.publish(
            DomainMailPolicy(domain=domain, spf_allowed_ips=frozenset({sending_ip}))
        )

    def register_deployment(self, deployment: DeployedSite) -> None:
        self.deployments[deployment.domain] = deployment
