"""The corpus generator: from calibration targets to a live world.

``CorpusGenerator(seed, scale).generate()`` produces a
:class:`GeneratedCorpus`: a fully deployed :class:`~repro.dataset.world.World`
(landing sites with their cloaking stacks, WHOIS/CT/passive-DNS records,
legitimate portals) plus the reported-malicious message corpus.  At
``scale=1.0`` the counts are the paper's; smaller scales shrink
everything proportionally for fast tests.

The generator writes ground truth into ``message.ground_truth`` and the
per-domain ledger — the *pipeline* never reads these; they exist so the
calibration tests can verify that the analysis layer re-derives the
paper's numbers from raw behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dataset import allocation, names
from repro.dataset.calibration import CALIBRATION, Calibration, scaled
from repro.dataset.world import World
from repro.kits.attachment import (
    build_download_lure,
    build_html_attachment_message,
    deploy_download_site,
)
from repro.kits.brands import COMMODITY_BRANDS, COMPANY_BRANDS, Brand
from repro.kits.credential import CredentialKit, CredentialKitOptions, DeployedSite
from repro.kits.fraud import build_fraud_message
from repro.kits.interaction import (
    INTERACTION_KINDS,
    build_interaction_message,
    deploy_interaction_site,
)
from repro.kits.lures import build_credential_lure
from repro.mail.message import EmailMessage
from repro.web.whois import RU_REGISTRARS, WhoisRecord

_GENERIC_REGISTRARS = ("NameCheap", "GoDaddy", "Porkbun", "Gandi", "Tucows")


@dataclass
class DomainPlan:
    """Ground truth for one landing domain."""

    host: str
    tld: str
    klass: str  # 'fresh' | 'fresh-outlier' | 'compromised' | 'abused-service'
    role: str  # 'spear' | 'commodity' | 'otp' | 'math'
    brand: Brand
    message_count: int
    extra_messages: int = 0
    deceptive: str | None = None
    timedelta_a: float = 0.0
    timedelta_b: float = 0.0
    month: int = 0
    options: CredentialKitOptions = field(default_factory=CredentialKitOptions)
    deployment: DeployedSite | None = None
    #: Mean delivery hour of the domain's messages (set during emission).
    delivery_hours: list[float] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return self.message_count + self.extra_messages


@dataclass
class GeneratedCorpus:
    """The generator's output."""

    world: World
    messages: list[EmailMessage]
    domain_plans: list[DomainPlan]
    calibration: Calibration
    scale: float

    def plans_by_role(self, role: str) -> list[DomainPlan]:
        return [plan for plan in self.domain_plans if plan.role == role]


# ----------------------------------------------------------------------
# Exact-sum domain picking for feature budgets
# ----------------------------------------------------------------------
def take_exact(
    pool: list[DomainPlan], n_domains: int, n_messages: int
) -> list[DomainPlan] | None:
    """Pick ``n_domains`` plans whose base counts sum to ``n_messages``.

    Greedy largest-first with a feasibility guard; relies on the pool's
    plentiful 1- and 2-count campaigns to land the sum exactly.  Returns
    None when infeasible (scaled-down corpora fall back to approximate).
    """
    available = sorted(pool, key=lambda plan: plan.message_count, reverse=True)
    chosen: list[DomainPlan] = []
    msgs_left, domains_left = n_messages, n_domains
    for plan in available:
        if domains_left == 0:
            break
        count = plan.message_count
        if count <= msgs_left - (domains_left - 1):
            chosen.append(plan)
            msgs_left -= count
            domains_left -= 1
    if domains_left == 0 and msgs_left == 0:
        return chosen
    return None


def take_until(
    pool: list[DomainPlan], n_messages: int, use_totals: bool = False
) -> list[DomainPlan]:
    """Pick plans until their message counts reach ``n_messages`` exactly
    (or as close as the pool allows).

    ``use_totals`` counts follow-up messages too — used for the features
    whose paper headline is a *fraction* of all credential messages.
    """

    def weight(plan: DomainPlan) -> int:
        return plan.total_messages if use_totals else plan.message_count

    available = sorted(pool, key=weight, reverse=True)
    chosen: list[DomainPlan] = []
    remaining = n_messages
    for plan in available:
        if remaining <= 0:
            break
        if weight(plan) <= remaining:
            chosen.append(plan)
            remaining -= weight(plan)
    return chosen


class CorpusGenerator:
    """Builds the world and the 5,181-message corpus."""

    def __init__(self, seed: int = 2024, scale: float = 1.0, calibration: Calibration = CALIBRATION):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.seed = seed
        self.scale = scale
        self.cal = calibration
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def generate(self) -> GeneratedCorpus:
        world = World(seed=self.seed)
        self._employees = self._make_employees()
        self._ip_counter = 0
        self._used_hosts: set[str] = set()

        plans = self._plan_domains()
        self._assign_features(plans)

        messages: list[EmailMessage] = []
        messages.extend(self._emit_credential_messages(world, plans))
        messages.extend(self._emit_fraud_messages(world))
        messages.extend(self._emit_error_messages(world))
        messages.extend(self._emit_interaction_messages(world))
        messages.extend(self._emit_download_messages(world))
        messages.extend(self._emit_local_html_messages(world, plans))
        self._apply_noise_padding(messages)
        self._seed_passive_dns(world, plans)

        messages.sort(key=lambda message: message.delivered_at)
        return GeneratedCorpus(
            world=world,
            messages=messages,
            domain_plans=plans,
            calibration=self.cal,
            scale=self.scale,
        )

    # ------------------------------------------------------------------
    # Identities and infrastructure helpers
    # ------------------------------------------------------------------
    def _make_employees(self) -> list[str]:
        employees: list[str] = []
        seen = set()
        rng = random.Random(self.seed + 1)
        for company in self.cal.company_domains:
            quota = max(20, scaled(160, self.scale, minimum=20))
            while len([e for e in employees if e.endswith(company)]) < quota:
                email = names.employee_email(rng, company)
                if email not in seen:
                    seen.add(email)
                    employees.append(email)
        return employees

    def _victim(self, brand: Brand | None = None) -> str:
        if brand is not None:
            for index, company_brand in enumerate(COMPANY_BRANDS):
                if company_brand.name == brand.name:
                    company = self.cal.company_domains[index]
                    pool = [email for email in self._employees if email.endswith(company)]
                    return self.rng.choice(pool)
        return self.rng.choice(self._employees)

    def _next_ip(self, prefix: str = "185.20") -> str:
        self._ip_counter += 1
        return f"{prefix}.{(self._ip_counter // 250) % 250}.{self._ip_counter % 250 + 1}"

    def _fresh_host(self, builder) -> str:
        """Generate a not-yet-used host name.

        Low-variety generators (e.g. homoglyphs of one brand) get a
        numeric disambiguator once the natural namespace is exhausted.
        """
        for _ in range(60):
            host = builder()
            if host not in self._used_hosts:
                self._used_hosts.add(host)
                return host
        for _ in range(200):
            host = builder()
            head, _, tail = host.partition(".")
            host = f"{head}{self.rng.randrange(10, 99)}.{tail}"
            if host not in self._used_hosts:
                self._used_hosts.add(host)
                return host
        raise RuntimeError("could not find a fresh host name")

    def _publish_sender(self, world: World, message: EmailMessage) -> None:
        world.publish_sender(message.sending_domain, message.sending_ip)

    # ------------------------------------------------------------------
    # Phase 1: domain planning
    # ------------------------------------------------------------------
    def _plan_domains(self) -> list[DomainPlan]:
        cal, rng = self.cal, self.rng
        spear_counts = allocation.expand_tiers(allocation.SPEAR_TIERS, self.scale)
        commodity_counts = allocation.expand_tiers(allocation.COMMODITY_TIERS, self.scale)

        n_otp_domains = max(1, scaled(12, self.scale, 1))
        n_math_domains = max(1, scaled(3, self.scale, 1))
        total_domains = (
            len(spear_counts) + len(commodity_counts) + n_otp_domains + n_math_domains
        )
        tlds = allocation.tld_labels(cal, total_domains, rng)

        # Outlier classes are carved out of the spear population.
        n_fresh_outlier = scaled(cal.outlier_fresh_domains, self.scale, 1)
        n_compromised = scaled(cal.outlier_compromised_domains, self.scale, 1)
        n_abused = scaled(cal.outlier_abused_service_domains, self.scale, 1)
        n_bulk_tail = scaled(
            cal.domains_timedelta_a_over_90d
            - cal.outlier_fresh_domains
            - cal.outlier_compromised_domains
            - cal.outlier_abused_service_domains,
            self.scale,
            1,
        )

        plans: list[DomainPlan] = []
        tld_pool = list(tlds)

        def next_tld(prefer: tuple[str, ...] = ()) -> str:
            for wanted in prefer:
                if wanted in tld_pool:
                    tld_pool.remove(wanted)
                    return wanted
            if tld_pool:
                return tld_pool.pop(0)
            return ".com"

        # --- spear domains -------------------------------------------------
        brand_cycle = self._spear_brand_sequence(len(spear_counts))
        klasses = (
            ["abused-service"] * n_abused
            + ["compromised"] * n_compromised
            + ["fresh-outlier"] * n_fresh_outlier
        )
        klasses += ["fresh"] * (len(spear_counts) - len(klasses))
        rng.shuffle(klasses)

        deceptive_budget = scaled(
            cal.deceptive_domains_total - cal.deceptive_domains_nontargeted, self.scale, 1
        )
        bulk_samples = allocation.sample_bulk_timedeltas(
            sum(1 for klass in klasses if klass == "fresh"), n_bulk_tail, rng
        )
        bulk_cursor = 0
        outlier_counters = {"fresh-outlier": 0, "compromised": 0, "abused-service": 0}

        for index, count in enumerate(spear_counts):
            brand = brand_cycle[index]
            klass = klasses[index]
            if klass == "abused-service":
                tld = next_tld(prefer=(".dev", ".com", ".net", ".app"))
            else:
                tld = next_tld()
            deceptive = None
            if deceptive_budget > 0 and klass == "fresh" and rng.random() < 0.25:
                deceptive = names.DECEPTIVE_TECHNIQUES[deceptive_budget % 5]
                deceptive_budget -= 1
            host = self._plan_host(klass, brand, deceptive, tld, rng)
            if klass == "fresh":
                delta_a, delta_b = bulk_samples[bulk_cursor]
                bulk_cursor += 1
            else:
                delta_a, delta_b = allocation.sample_outlier_timedeltas(
                    klass, outlier_counters[klass], rng
                )
                outlier_counters[klass] += 1
            plans.append(
                DomainPlan(
                    host=host,
                    tld=tld,
                    klass=klass,
                    role="spear",
                    brand=brand,
                    message_count=count,
                    deceptive=deceptive,
                    timedelta_a=delta_a,
                    timedelta_b=delta_b,
                )
            )

        # --- commodity (non-targeted credential) domains -------------------
        commodity_brand_cycle = self._commodity_brand_sequence(len(commodity_counts))
        nontargeted_deceptive = scaled(cal.deceptive_domains_nontargeted, self.scale, 1)
        # 197 duplicate-page follow-ups, concentrated on a minority of the
        # commodity domains so the per-domain median stays at 1 message.
        extras_pool = max(1, min(len(commodity_counts), scaled(30, self.scale, 1)))
        extras = allocation.distribute_extras(scaled(197, self.scale), extras_pool, rng)
        extras += [0] * (len(commodity_counts) - len(extras))
        for index, count in enumerate(commodity_counts):
            brand = commodity_brand_cycle[index]
            tld = next_tld()
            deceptive = None
            if nontargeted_deceptive > 0 and rng.random() < 0.2:
                deceptive = names.DECEPTIVE_TECHNIQUES[nontargeted_deceptive % 5]
                nontargeted_deceptive -= 1
            host = self._plan_host("fresh", brand, deceptive, tld, rng)
            delta_a = allocation.lognormal_hours(470.0, 0.9, rng)
            delta_b = max(4.0, min(allocation.lognormal_hours(170.0, 0.8, rng), delta_a - 1.0))
            plans.append(
                DomainPlan(
                    host=host,
                    tld=tld,
                    klass="fresh",
                    role="commodity",
                    brand=brand,
                    message_count=count,
                    extra_messages=extras[index],
                    deceptive=deceptive,
                    timedelta_a=min(delta_a, 2100.0),
                    timedelta_b=min(delta_b, 1050.0),
                )
            )

        # --- OTP and math-challenge domains --------------------------------
        otp_messages = scaled(cal.otp_gate_messages, self.scale, 1)
        math_messages = scaled(cal.math_challenge_messages, self.scale, 1)
        for role, n_domains, total in (
            ("otp", n_otp_domains, otp_messages),
            ("math", n_math_domains, math_messages),
        ):
            quotas = allocation.monthly_quota(total, tuple([1] * n_domains))
            for quota in quotas:
                if quota <= 0:
                    continue
                brand = rng.choice([brand for brand, _ in COMMODITY_BRANDS])
                tld = next_tld()
                host = self._plan_host("fresh", brand, None, tld, rng)
                delta_a = min(allocation.lognormal_hours(470.0, 0.9, rng), 2100.0)
                delta_b = max(4.0, min(allocation.lognormal_hours(170.0, 0.8, rng), delta_a - 1.0))
                plans.append(
                    DomainPlan(
                        host=host,
                        tld=tld,
                        klass="fresh",
                        role=role,
                        brand=brand,
                        message_count=quota,
                        timedelta_a=delta_a,
                        timedelta_b=delta_b,
                    )
                )
        return plans

    def _spear_brand_sequence(self, count: int) -> list[Brand]:
        weights = (0.45, 0.17, 0.14, 0.13, 0.11)
        sequence: list[Brand] = []
        for brand, weight in zip(COMPANY_BRANDS, weights):
            sequence.extend([brand] * max(1, int(round(count * weight))))
        rng = random.Random(self.seed + 2)
        rng.shuffle(sequence)
        return (sequence * 2)[:count]

    def _commodity_brand_sequence(self, count: int) -> list[Brand]:
        sequence: list[Brand] = []
        total_messages = sum(n for _, n in COMMODITY_BRANDS)
        for brand, message_count in COMMODITY_BRANDS:
            share = max(1, int(round(count * message_count / total_messages)))
            sequence.extend([brand] * share)
        rng = random.Random(self.seed + 3)
        rng.shuffle(sequence)
        return (sequence * 2)[:count]

    def _plan_host(
        self,
        klass: str,
        brand: Brand,
        deceptive: str | None,
        tld: str,
        rng: random.Random,
    ) -> str:
        if klass == "abused-service":
            # Keep Table II intact: pick a service whose suffix matches the
            # TLD label this domain was assigned, where one exists.
            by_tld = {
                ".dev": ("workers.dev", "r2.dev"),
                ".com": ("cloudflare-ipfs.com", "oraclecloud.com"),
                ".net": ("cloudfront.net",),
                ".app": ("vercel.app",),
            }
            candidates = by_tld.get(tld) or self.cal.abused_services
            service = candidates[rng.randrange(len(candidates))]
            return self._fresh_host(
                lambda: f"{names.neutral_domain(rng).replace('-', '')}-{rng.randrange(100, 999)}.{service}"
            )
        brand_token = brand.name.lower().replace(" ", "")
        if deceptive is not None:
            return self._fresh_host(
                lambda: names.deceptive_host(deceptive, brand_token, rng, tld)
            )
        return self._fresh_host(lambda: names.neutral_domain(rng) + tld)

    # ------------------------------------------------------------------
    # Phase 2: feature assignment
    # ------------------------------------------------------------------
    def _assign_features(self, plans: list[DomainPlan]) -> None:
        cal = self.cal
        credential = [plan for plan in plans if plan.role in ("spear", "commodity")]
        spear = [plan for plan in plans if plan.role == "spear"]

        def budget(value: int) -> int:
            return scaled(value, self.scale, 1)

        features: dict[str, set[str]] = {}

        def mark(selected: list[DomainPlan] | None, flag: str) -> list[DomainPlan]:
            selected = selected or []
            features[flag] = {plan.host for plan in selected}
            return selected

        # Victim-check variants: exact domain/message targets.
        vc_a = take_exact(spear, budget(cal.victim_check_a_domains), budget(cal.victim_check_a_messages))
        if vc_a is None:
            vc_a = take_until(spear, budget(cal.victim_check_a_messages))
        mark(vc_a, "vc_a")
        remaining_spear = [plan for plan in spear if plan not in vc_a]
        vc_b = take_exact(remaining_spear, budget(cal.victim_check_b_domains), budget(cal.victim_check_b_messages))
        if vc_b is None:
            vc_b = take_until(remaining_spear, budget(cal.victim_check_b_messages))
        mark(vc_b, "vc_b")

        vc_hosts = features["vc_a"] | features["vc_b"]
        non_vc = [plan for plan in credential if plan.host not in vc_hosts]

        # The remaining exclusive reveal gates.
        pool = sorted(non_vc, key=lambda plan: plan.message_count, reverse=True)
        ua_cloak = take_until(pool, budget(cal.ua_tz_lang_cloak_messages))
        mark(ua_cloak, "ua_cloak")
        pool = [plan for plan in pool if plan not in ua_cloak]
        fingerprint = take_until(pool, budget(cal.fingerprint_lib_messages))
        mark(fingerprint, "fingerprint")
        pool = [plan for plan in pool if plan not in fingerprint]

        # Console hijack: the victim-check scripts hijack the console by
        # themselves; top up with dedicated domains to reach the target.
        vc_messages = sum(plan.message_count for plan in vc_a + vc_b)
        topup = max(0, budget(cal.console_hijack_messages) - vc_messages)
        console_extra = take_until(pool, topup)
        mark(console_extra, "console_extra")

        # Turnstile stays off the custom-gate campaigns (UA/timezone cloak
        # and fingerprinting-library kits run their own checks instead).
        # The paper's headline for Turnstile/reCAPTCHA is a *fraction* of
        # credential-harvesting messages (74.4% / 24.8%), and duplicate
        # follow-ups land on the same protected pages, so these two are
        # budgeted over total (base + follow-up) message counts.
        turnstile_pool = [
            plan for plan in credential if plan not in ua_cloak and plan not in fingerprint
        ]
        total_credential = sum(plan.total_messages for plan in credential)
        turnstile_fraction = cal.turnstile_messages / cal.credential_harvesting_messages
        recaptcha_fraction = cal.recaptcha_messages / cal.credential_harvesting_messages
        mark(
            take_until(turnstile_pool, round(turnstile_fraction * total_credential), use_totals=True),
            "turnstile",
        )
        turnstile_plans = [plan for plan in credential if plan.host in features["turnstile"]]
        mark(
            take_until(turnstile_plans, round(recaptcha_fraction * total_credential), use_totals=True),
            "recaptcha",
        )
        mark(take_until(credential, budget(cal.debugger_timer_messages)), "debugger")
        mark(take_until(credential, budget(cal.context_menu_block_messages)), "contextmenu")
        mark(take_until(credential, budget(cal.httpbin_messages)), "httpbin")
        httpbin_plans = [plan for plan in credential if plan.host in features["httpbin"]]
        mark(take_until(httpbin_plans, budget(cal.ipapi_messages)), "ipapi")
        mark(take_until(spear, budget(cal.hue_rotate_messages)), "huerotate")
        mark(take_until(spear, budget(cal.spear_hotlink_messages)), "hotlink")

        for plan in plans:
            host = plan.host
            variant = "a" if host in features["vc_a"] else ("b" if host in features["vc_b"] else None)
            if host in features["ipapi"]:
                exfiltration = "httpbin+ipapi"
            elif host in features["httpbin"]:
                exfiltration = "httpbin"
            else:
                exfiltration = "none"
            plan.options = CredentialKitOptions(
                use_turnstile=host in features["turnstile"],
                use_recaptcha=host in features["recaptcha"],
                otp_gate=plan.role == "otp",
                math_challenge=plan.role == "math",
                victim_check_variant=variant,
                hue_rotate=host in features["huerotate"],
                console_hijack=host in features["console_extra"],
                debugger_timer=host in features["debugger"],
                context_menu_block=host in features["contextmenu"],
                ua_tz_lang_cloak=host in features["ua_cloak"],
                fingerprint_lib_gate=host in features["fingerprint"],
                ip_exfiltration=exfiltration,
                hotlink_brand_resources=host in features["hotlink"],
                tokenized_urls=True,
                block_cloud_ips=False,  # crawlable by the mobile-IP NotABot
            )

        # The fingerprint-library campaign is pinned to its July window.
        for plan in plans:
            if plan.options.fingerprint_lib_gate:
                plan.month = 6  # July (0-indexed from January)

    # ------------------------------------------------------------------
    # Phase 3: message emission
    # ------------------------------------------------------------------
    def _emit_credential_messages(self, world: World, plans: list[DomainPlan]) -> list[EmailMessage]:
        cal, rng = self.cal, self.rng
        months = allocation.MonthAllocator(
            allocation.monthly_quota(
                sum(plan.total_messages for plan in plans), cal.monthly_malicious_2024
            ),
            cal.hours_per_month,
            rng,
        )
        faulty_qr_budget = scaled(cal.faulty_qr_messages, self.scale, 1)
        regular_qr_budget = scaled(cal.regular_qr_messages, self.scale, 1)
        pdf_budget = scaled(cal.pdf_lure_messages, self.scale, 1)
        image_text_budget = scaled(cal.image_text_lure_messages, self.scale, 1)
        double_url_budget = scaled(cal.hue_rotate_pages - cal.hue_rotate_messages, self.scale, 1)

        messages: list[EmailMessage] = []
        token_counter = 0
        for plan in sorted(plans, key=lambda p: p.total_messages, reverse=True):
            month = plan.month if plan.options.fingerprint_lib_gate else months.take(plan.total_messages)
            plan.month = month
            delivery_hours = sorted(
                months.delivery_hour(month) for _ in range(plan.total_messages)
            )
            plan.delivery_hours = delivery_hours
            mean_delivery = sum(delivery_hours) / len(delivery_hours)

            kit = CredentialKit(plan.brand, plan.options, recaptcha=world.recaptcha)
            # The certificate must predate the first lure; long campaigns
            # therefore push their measured timedeltaB above the sampled
            # value, exactly as registering ahead of a campaign implies.
            cert_at = min(delivery_hours[0] - 2.0, mean_delivery - plan.timedelta_b)
            registered_at = cert_at - max(24.0, plan.timedelta_a - plan.timedelta_b)
            deployment = kit.deploy(
                world.network,
                plan.host,
                ip=self._next_ip(),
                cert_issued_at=cert_at,
                activated_at=0.0,  # active throughout (the error bucket models dead sites)
            )
            plan.deployment = deployment
            world.register_deployment(deployment)
            world.network.dns.add_record(plan.host, deployment.website.ip)
            self._register_whois(world, plan, registered_at)
            world.shodan.add_https_host(deployment.website.ip)

            sending_domain = f"notify-{plan.host.replace('.', '-')}.example"
            sending_ip = self._next_ip(prefix="198.51")
            for delivered_at in delivery_hours:
                token_counter += 1
                token = f"t{token_counter:06d}{rng.randrange(16**4):04x}"
                victim = self._victim(plan.brand if plan.role == "spear" else None)
                if plan.role in ("otp", "math"):
                    embed = "link"
                elif faulty_qr_budget > 0:
                    embed = "faulty_qr"
                    faulty_qr_budget -= 1
                elif regular_qr_budget > 0 and not plan.options.victim_check_variant:
                    embed = "qr"
                    regular_qr_budget -= 1
                elif pdf_budget > 0 and not plan.options.victim_check_variant:
                    embed = "pdf"
                    pdf_budget -= 1
                elif image_text_budget > 0 and not plan.options.victim_check_variant:
                    embed = "image_text"
                    image_text_budget -= 1
                else:
                    embed = "link"
                extra_urls: tuple[str, ...] = ()
                if plan.options.hue_rotate and double_url_budget > 0 and embed == "link":
                    token_counter += 1
                    second = f"t{token_counter:06d}{rng.randrange(16**4):04x}"
                    extra_urls = (deployment.register_victim(victim, second),)
                    double_url_budget -= 1
                message = build_credential_lure(
                    deployment,
                    victim,
                    token,
                    delivered_at,
                    rng,
                    embed_as=embed,
                    sending_domain=sending_domain,
                    sending_ip=sending_ip,
                    extra_urls=extra_urls,
                )
                message.ground_truth.update(
                    {
                        "role": plan.role,
                        "month": month,
                        "options": plan.options,
                        "domain_class": plan.klass,
                        "counts_toward_1267": plan.role in ("spear", "commodity")
                        and len(messages) >= 0,  # refined below
                    }
                )
                self._publish_sender(world, message)
                messages.append(message)

        # Mark which credential messages form the paper's 1,267 subset:
        # base (non-extra) messages of spear and commodity domains.
        base_budget = {
            plan.host: plan.message_count for plan in plans if plan.role in ("spear", "commodity")
        }
        for message in messages:
            host = message.ground_truth.get("landing_domain")
            if host in base_budget and base_budget[host] > 0:
                base_budget[host] -= 1
                message.ground_truth["counts_toward_1267"] = True
            else:
                message.ground_truth["counts_toward_1267"] = False
        return messages

    def _register_whois(self, world: World, plan: DomainPlan, registered_at: float) -> None:
        from repro.web.urls import registered_domain

        registrable = registered_domain(plan.host)
        if plan.tld == ".ru":
            registrar = RU_REGISTRARS[self.rng.randrange(len(RU_REGISTRARS))]
        else:
            registrar = _GENERIC_REGISTRARS[self.rng.randrange(len(_GENERIC_REGISTRARS))]
        world.network.whois.register(
            WhoisRecord(
                domain=registrable,
                registrar=registrar,
                created=registered_at,
                expires=registered_at + 24 * 365,
                registrant_country="RU" if plan.tld == ".ru" else "US",
                compromised=plan.klass == "compromised",
            )
        )

    # ------------------------------------------------------------------
    def _emit_fraud_messages(self, world: World) -> list[EmailMessage]:
        cal, rng = self.cal, self.rng
        # 2,572 + the other buckets overshoots the paper's 5,181 total by
        # 5 (the paper's own counts do too); we shave the fraud bucket.
        total = scaled(cal.no_web_resources - 5, self.scale, 2)
        quotas = allocation.monthly_quota(total, cal.monthly_malicious_2024)
        messages = []
        for month, quota in enumerate(quotas):
            for _ in range(quota):
                delivered = month * cal.hours_per_month + rng.uniform(1.0, cal.hours_per_month - 1.0)
                message = build_fraud_message(self._victim(), delivered, rng)
                message.ground_truth["month"] = month
                self._publish_sender(world, message)
                messages.append(message)
        return messages

    def _emit_error_messages(self, world: World) -> list[EmailMessage]:
        cal, rng = self.cal, self.rng
        specs = (
            ("nxdomain", scaled(cal.error_nxdomain, self.scale, 1)),
            ("unreachable", scaled(cal.error_unreachable, self.scale, 1)),
            ("mobile-only", scaled(cal.error_mobile_only, self.scale, 1)),
            ("geo-filtered", scaled(cal.error_geo_filtered, self.scale, 1)),
        )
        messages: list[EmailMessage] = []
        quotas = allocation.monthly_quota(
            sum(count for _, count in specs), cal.monthly_malicious_2024
        )
        months = allocation.MonthAllocator(quotas, cal.hours_per_month, rng)
        for kind, count in specs:
            emitted = 0
            while emitted < count:
                campaign = min(count - emitted, rng.randrange(2, 7))
                month = months.take(campaign)
                host = self._fresh_host(lambda: names.neutral_domain(rng) + ".com")
                if kind == "unreachable":
                    world.network.dns.add_record(host, self._next_ip())
                elif kind in ("mobile-only", "geo-filtered"):
                    options = CredentialKitOptions(
                        mobile_only=kind == "mobile-only",
                        geo_countries=("BR", "IN") if kind == "geo-filtered" else (),
                        tokenized_urls=False,
                        error_on_deny=True,
                        block_cloud_ips=False,
                    )
                    kit = CredentialKit(COMPANY_BRANDS[0], options, recaptcha=world.recaptcha)
                    deployment = kit.deploy(
                        world.network, host, ip=self._next_ip(), cert_issued_at=0.0
                    )
                    world.register_deployment(deployment)
                for _ in range(campaign):
                    delivered = months.delivery_hour(month)
                    url = f"https://{host}/doc/{rng.randrange(10**6):06d}"
                    message = build_fraud_message(self._victim(), delivered, rng)
                    message.subject = "Secure document notification"
                    message.parts[0].content += f"\n\nView the document: {url}\n"
                    message.ground_truth = {
                        "category": f"error-{kind}",
                        "month": month,
                        "landing_domain": host,
                    }
                    self._publish_sender(world, message)
                    messages.append(message)
                emitted += campaign
        return messages

    def _emit_interaction_messages(self, world: World) -> list[EmailMessage]:
        cal, rng = self.cal, self.rng
        total = scaled(cal.interaction_required, self.scale, 1)
        quotas = allocation.monthly_quota(total, cal.monthly_malicious_2024)
        months = allocation.MonthAllocator(quotas, cal.hours_per_month, rng)
        messages: list[EmailMessage] = []
        emitted = 0
        kind_index = 0
        while emitted < total:
            campaign = min(total - emitted, rng.randrange(3, 8))
            kind = INTERACTION_KINDS[kind_index % len(INTERACTION_KINDS)]
            kind_index += 1
            month = months.take(campaign)
            host = self._fresh_host(lambda: names.neutral_domain(rng) + ".com")
            cert_at = month * cal.hours_per_month - rng.uniform(24.0, 200.0)
            deploy_interaction_site(world.network, host, self._next_ip(), kind, cert_issued_at=cert_at)
            for _ in range(campaign):
                delivered = months.delivery_hour(month)
                url = f"https://{host}/view/{rng.randrange(10**6):06d}"
                message = build_interaction_message(self._victim(), delivered, url, kind, rng)
                message.ground_truth["month"] = month
                self._publish_sender(world, message)
                messages.append(message)
            emitted += campaign
        return messages

    def _emit_download_messages(self, world: World) -> list[EmailMessage]:
        cal, rng = self.cal, self.rng
        total = scaled(cal.downloads, self.scale, 1)
        messages: list[EmailMessage] = []
        host = self._fresh_host(lambda: names.neutral_domain(rng) + ".net")
        deploy_download_site(
            world.network, host, self._next_ip(), "malicious-js-loader.example", 0.0, rng
        )
        for index in range(total):
            month = index % len(cal.monthly_malicious_2024)
            delivered = month * cal.hours_per_month + rng.uniform(1.0, cal.hours_per_month - 1.0)
            url = f"https://{host}/package/{rng.randrange(10**6):06d}.zip"
            message = build_download_lure(self._victim(), delivered, url, rng)
            message.ground_truth["month"] = month
            self._publish_sender(world, message)
            messages.append(message)
        return messages

    def _emit_local_html_messages(self, world: World, plans: list[DomainPlan]) -> list[EmailMessage]:
        cal, rng = self.cal, self.rng
        local_total = scaled(cal.html_attachment_local_loading, self.scale, 1)
        redirect_total = scaled(
            cal.html_attachment_messages - cal.html_attachment_local_loading, self.scale, 1
        )
        commodity = [plan for plan in plans if plan.role == "commodity" and plan.deployment]
        messages: list[EmailMessage] = []
        for index in range(local_total + redirect_total):
            local = index < local_total
            month = rng.randrange(len(cal.monthly_malicious_2024))
            landing_url = ""
            if not local and commodity:
                plan = commodity[index % len(commodity)]
                assert plan.deployment is not None
                # Deliver inside the landing campaign's month so the
                # site's certificate already exists at analysis time.
                month = plan.month
                token = f"h{index:04d}{rng.randrange(16**4):04x}"
                landing_url = plan.deployment.register_victim(self._victim(), token)
            delivered = month * cal.hours_per_month + rng.uniform(1.0, cal.hours_per_month - 1.0)
            if landing_url and plan.delivery_hours:
                window_end = (month + 1) * cal.hours_per_month - 1.0
                campaign_start = min(plan.delivery_hours)
                delivered = rng.uniform(campaign_start, max(window_end, campaign_start + 1.0))
            message = build_html_attachment_message(
                self._victim(), delivered, rng, local_loading=local, landing_url=landing_url
            )
            message.ground_truth["month"] = month
            if landing_url:
                from repro.web.urls import parse_url

                message.ground_truth["landing_domain"] = parse_url(landing_url).host
            self._publish_sender(world, message)
            messages.append(message)
        return messages

    # ------------------------------------------------------------------
    def _apply_noise_padding(self, messages: list[EmailMessage]) -> None:
        """Stamp noise padding onto the first N credential lures."""
        from repro.kits.lures import _noise_block
        from repro.mail.message import MessagePart

        budget = scaled(self.cal.noise_padding_messages, self.scale, 1)
        for message in messages:
            if budget <= 0:
                break
            if message.ground_truth.get("category") == "credential-phishing" and not message.ground_truth.get("noise_padding"):
                message.add_part(MessagePart.text(_noise_block(self.rng)))
                message.ground_truth["noise_padding"] = True
                budget -= 1

    def _seed_passive_dns(self, world: World, plans: list[DomainPlan]) -> None:
        """Seed Umbrella-style volumes, including the paper's top three."""
        cal, rng = self.cal, self.rng
        ranked = sorted(plans, key=lambda plan: plan.total_messages, reverse=True)
        five_message = [plan for plan in ranked if plan.message_count == 5]
        one_message = [plan for plan in ranked if plan.message_count == 1]
        specials = {}
        if ranked:
            specials[ranked[0].host] = cal.dns_top_domain_total
        if five_message:
            specials[five_message[0].host] = cal.dns_second_total
        if one_message:
            specials[one_message[0].host] = cal.dns_third_total

        for plan in plans:
            if not plan.delivery_hours:
                continue
            first_day = int(min(plan.delivery_hours) // 24)
            if plan.host in specials:
                total = specials[plan.host]
            elif plan.total_messages > 1:
                total = max(2, int(allocation.lognormal_hours(cal.dns_multi_median_total, 0.7, rng)))
            else:
                total = max(1, int(allocation.lognormal_hours(cal.dns_single_median_total, 0.7, rng)))
            # Low-volume campaigns concentrate their queries into a few
            # days (paper: median max-daily is ~43% of the 30-day total).
            if total > 10**6:
                active_days = 30
            else:
                active_days = max(1, min(rng.randrange(2, 5), total))
            base = total // active_days
            remainder = total - base * active_days
            for offset in range(active_days):
                day = first_day - 1 - offset
                volume = base + (remainder if offset == 0 else 0)
                if volume > 0:
                    world.passive_dns.record_volume(plan.host, day, volume)
