"""Every quantitative target from the paper, in one place.

The corpus generator consumes these constants; the analysis layer
recomputes the statistics end-to-end and EXPERIMENTS.md compares the
measured values back against them.  Nothing in the *pipeline* reads
this module — only the generator and the calibration tests do.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Calibration:
    """Targets derived from the paper's Sections IV-V."""

    # ------------------------------------------------------------------
    # Section IV-A: the triage funnel.
    # ------------------------------------------------------------------
    monthly_inbound_emails: int = 60_000_000
    gateway_filtered_fraction: float = 0.17
    monthly_user_reports: int = 14_000
    reported_split_malicious: float = 0.037
    reported_split_legitimate: float = 0.350
    reported_split_spam: float = 0.613

    # ------------------------------------------------------------------
    # Figure 2: monthly volumes (Jan-Oct 2024), sum = 5,181.
    # Paper: mean 518.1, std 278.4, with the January peak continuing the
    # downward trend out of late 2023 (..., 1959, 1533, 1249 | 1100, ...).
    # ------------------------------------------------------------------
    monthly_malicious_2024: tuple[int, ...] = (1100, 840, 700, 570, 500, 430, 330, 290, 230, 191)
    # March-December 2023 (observed before the study window), sum = 8,852
    # (mean 885.2); the last three values are the paper's 1959/1533/1249.
    monthly_malicious_2023: tuple[int, ...] = (430, 450, 480, 520, 580, 690, 961, 1959, 1533, 1249)
    #: Hours-since-epoch of 2024-01-01 00:00 in the simulation clock.
    study_epoch_hour: float = 0.0
    hours_per_month: float = 730.0

    # ------------------------------------------------------------------
    # Section V: outcome breakdown of the 5,181 messages.
    # ------------------------------------------------------------------
    total_malicious: int = 5_181
    no_web_resources: int = 2_572  # 49.6% - first-contact fraud
    error_pages: int = 823  # 15.9% - NXDOMAIN / unreachable / filtered
    interaction_required: int = 235  # 4.5% - Dropbox/Drive/classic CAPTCHA
    downloads: int = 5  # 0.1% - ZIP archives with HTA droppers
    active_phishing: int = 1_551  # 29.9% - fake login forms

    #: Split of the error bucket (the paper attributes it to deactivated
    #: sites and to server-side filtering such as UA/geo restrictions).
    error_nxdomain: int = 350
    error_unreachable: int = 250
    error_mobile_only: int = 123
    error_geo_filtered: int = 100

    # ------------------------------------------------------------------
    # Section V-A: spear phishing.
    # ------------------------------------------------------------------
    spear_messages: int = 1_137  # 73.3% of active, via pHash+dHash
    spear_hotlink_messages: int = 339  # 29.8% load brand resources
    distinct_landing_urls: int = 1_438
    distinct_landing_domains: int = 522
    #: Messages-per-domain distribution summary.
    messages_per_domain_mean: float = 2.62
    messages_per_domain_median: float = 1.0
    messages_per_domain_max: int = 58

    #: Table II: TLD histogram over the 522 landing domains.
    tld_distribution: tuple[tuple[str, int], ...] = (
        (".com", 262),
        (".ru", 48),
        (".dev", 45),
        (".buzz", 27),
        (".tech", 9),
        (".xyz", 9),
        (".org", 8),
        (".click", 7),
        (".br", 7),
    )  # remaining 100 domains spread over other TLDs
    other_tlds: tuple[str, ...] = (".net", ".info", ".online", ".site", ".top", ".shop", ".io", ".co", ".biz", ".app")
    other_tld_count: int = 100

    # Figure 3 timelines (hours).
    timedelta_a_median_hours: float = 575.0  # registration -> delivery
    timedelta_b_median_hours: float = 185.0  # certificate -> delivery
    timedelta_a_kurtosis: float = 8.4
    timedelta_b_kurtosis: float = 6.8
    domains_timedelta_a_over_90d: int = 102
    domains_timedelta_b_over_90d: int = 5
    #: The 71 outlier domains (timedeltaA > 273 d or timedeltaB > 45 d).
    outlier_fresh_domains: int = 42
    outlier_compromised_domains: int = 20
    outlier_abused_service_domains: int = 9
    abused_services: tuple[str, ...] = (
        "vercel.app",
        "cloudflare-ipfs.com",
        "workers.dev",
        "r2.dev",
        "oraclecloud.com",
        "cloudfront.net",
    )

    # DNS query volumes (Cisco-Umbrella-style), 30-day window medians.
    dns_single_median_max_daily: float = 18.5
    dns_single_median_total: float = 43.0
    dns_multi_median_max_daily: float = 50.5
    dns_multi_median_total: float = 100.5
    dns_top_domain_total: int = 665_126_135  # the 58-message domain
    dns_second_total: int = 37_623_107  # a 5-message domain
    dns_third_total: int = 15_362  # a 1-message domain

    #: Domain syntax: 82/522 use deceptive techniques; none use punycode.
    deceptive_domains_total: int = 82
    deceptive_domains_nontargeted: int = 11
    punycode_domains: int = 0

    # ------------------------------------------------------------------
    # Section V-B: non-targeted attacks.
    # ------------------------------------------------------------------
    nontargeted_messages: int = 414  # active minus spear
    nontargeted_unique_pages: int = 130
    #: Per-brand unique-page message counts (sums to 130).
    nontargeted_brand_counts: tuple[tuple[str, int], ...] = (
        ("Microsoft Excel", 20),
        ("OneDrive", 12),
        ("Office 365", 11),
        ("Microsoft", 44),
        ("DocuSign", 1),
        ("WebMail", 42),
    )
    nontargeted_domains: int = 111
    html_attachment_messages: int = 29
    html_attachment_local_loading: int = 19
    otp_gate_messages: int = 47
    math_challenge_messages: int = 11

    # ------------------------------------------------------------------
    # Section V-C: evasion prevalence.
    # ------------------------------------------------------------------
    credential_harvesting_messages: int = 1_267  # 1,137 spear + 130 commodity
    turnstile_messages: int = 943  # 74.4% of 1,267
    recaptcha_messages: int = 314  # 24.8% of 1,267
    console_hijack_messages: int = 295
    debugger_timer_messages: int = 10
    context_menu_block_messages: int = 39
    ua_tz_lang_cloak_messages: int = 15
    fingerprint_lib_messages: int = 5  # BotD + FingerprintJS, July 9-18
    fingerprint_lib_window_hours: tuple[float, float] = (4580.0, 4800.0)  # ~Jul 9-18
    httpbin_messages: int = 145
    ipapi_messages: int = 83  # subset of the httpbin ones
    victim_check_a_messages: int = 151
    victim_check_a_domains: int = 38
    victim_check_b_messages: int = 143
    victim_check_b_domains: int = 57
    hue_rotate_messages: int = 103
    hue_rotate_pages: int = 167  # some messages carry two phishing URLs
    noise_padding_messages: int = 270
    faulty_qr_messages: int = 35
    regular_qr_messages: int = 120
    #: Content-type mix (not a paper statistic): Section IV-B lists PDFs
    #: and images among the most prevalent part types, so a slice of the
    #: lures carries its URL in a PDF attachment or rendered text image.
    pdf_lure_messages: int = 80
    image_text_lure_messages: int = 50

    # ------------------------------------------------------------------
    # Victim organisation.
    # ------------------------------------------------------------------
    company_domains: tuple[str, ...] = (
        "corp.amatravel.example",
        "corp.skybooker.example",
        "corp.contenthub.example",
        "corp.revenuepro.example",
        "corp.payroute.example",
    )


CALIBRATION = Calibration()


def scaled(count: int, scale: float, minimum: int = 0) -> int:
    """Scale an integer target, keeping at least ``minimum``."""
    if scale >= 1.0:
        return count
    value = int(round(count * scale))
    if count > 0:
        value = max(value, minimum)
    return value
