"""The synthetic corpus: a world calibrated to the paper's measurements.

The authors' dataset (user-reported emails of five companies, Jan-Oct
2024) cannot be shared; this subpackage generates a full substitute:
a :class:`~repro.dataset.world.World` (network fabric + mail DNS +
passive DNS + legitimate portals + deployed phishing kits) and the
5,181-message reported-mail corpus whose category mix, timelines, TLD
distribution, and evasion-technique prevalences follow every number in
the paper (all centralised in :mod:`~repro.dataset.calibration`).

Everything is seeded and deterministic; ``scale`` shrinks the corpus
proportionally for fast tests while keeping the ratios.
"""

from repro.dataset.calibration import CALIBRATION, Calibration
from repro.dataset.world import World
from repro.dataset.generator import CorpusGenerator, GeneratedCorpus

__all__ = ["CALIBRATION", "Calibration", "World", "CorpusGenerator", "GeneratedCorpus"]
