"""Server-side cloaking guards (Section III-B.2).

Each guard inspects the incoming request plus the network-level client
context and decides whether the *real* (phishing) content may be served.
When any guard denies, the site serves its benign decoy instead — the
"cloak".  The four families the paper lists are implemented, plus the
geolocation filter mentioned in Section V ("the phishing page might only
be accessible to visitors from a targeted country").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.context import ClientContext
from repro.web.http import HttpRequest


@dataclass(frozen=True)
class GuardDecision:
    allowed: bool
    guard: str
    reason: str = ""


class ServerGuard:
    """Base class; subclasses override :meth:`evaluate`."""

    name = "guard"

    def evaluate(self, request: HttpRequest, context: ClientContext) -> GuardDecision:
        raise NotImplementedError

    def _allow(self, reason: str = "") -> GuardDecision:
        return GuardDecision(True, self.name, reason)

    def _deny(self, reason: str) -> GuardDecision:
        return GuardDecision(False, self.name, reason)


class ActivationWindowGuard(ServerGuard):
    """Delayed activation: before ``activate_at`` every visitor sees the decoy.

    "Before its activation, all visitors are redirected to a benign page
    [...] A few hours later, the URL is activated."
    """

    name = "activation-window"

    def __init__(self, activate_at: float, deactivate_at: float = float("inf")):
        self.activate_at = activate_at
        self.deactivate_at = deactivate_at

    def evaluate(self, request: HttpRequest, context: ClientContext) -> GuardDecision:
        if request.timestamp < self.activate_at:
            return self._deny(f"URL not yet active (activates at t={self.activate_at:.1f}h)")
        if request.timestamp > self.deactivate_at:
            return self._deny("URL deactivated")
        return self._allow()


class UserAgentGuard(ServerGuard):
    """User-Agent filtering, e.g. mobile-only for QR-delivered URLs."""

    name = "user-agent"

    def __init__(self, require_substrings: tuple[str, ...] = (), block_substrings: tuple[str, ...] = ()):
        self.require_substrings = tuple(require_substrings)
        self.block_substrings = tuple(block_substrings)

    @classmethod
    def mobile_only(cls) -> "UserAgentGuard":
        return cls(require_substrings=("Mobile", "iPhone", "Android"))

    def evaluate(self, request: HttpRequest, context: ClientContext) -> GuardDecision:
        agent = request.user_agent
        for blocked in self.block_substrings:
            if blocked.lower() in agent.lower():
                return self._deny(f"blocked user agent ({blocked})")
        if self.require_substrings and not any(
            required.lower() in agent.lower() for required in self.require_substrings
        ):
            return self._deny("user agent not in the targeted set")
        return self._allow()


class IPBlocklistGuard(ServerGuard):
    """Blocks known security-scanner IPs and (optionally) cloud ranges."""

    name = "ip-blocklist"

    def __init__(self, blocked_ips: frozenset[str] = frozenset(), block_cloud: bool = True):
        self.blocked_ips = frozenset(blocked_ips)
        self.block_cloud = block_cloud

    def evaluate(self, request: HttpRequest, context: ClientContext) -> GuardDecision:
        if request.client_ip in self.blocked_ips or context.known_scanner:
            return self._deny("client IP is on the scanner blocklist")
        if self.block_cloud and context.looks_like_cloud:
            return self._deny(f"client IP type {context.ip_type} looks automated")
        return self._allow()


class GeoGuard(ServerGuard):
    """Serves the phishing page only to clients from targeted countries."""

    name = "geo"

    def __init__(self, allowed_countries: tuple[str, ...]):
        self.allowed_countries = tuple(country.upper() for country in allowed_countries)

    def evaluate(self, request: HttpRequest, context: ClientContext) -> GuardDecision:
        if context.country.upper() not in self.allowed_countries:
            return self._deny(f"country {context.country} not targeted")
        return self._allow()


class TokenGuard(ServerGuard):
    """Tokenized URLs: requests must carry a currently-valid token.

    "The attacker generates URLs containing unique tokens [...] Any
    request lacking a valid token is redirected to a benign webpage.
    Additionally, attackers can disable individual tokens."
    """

    name = "token"

    def __init__(self, parameter: str = "", path_tokens: bool = True):
        #: Query parameter carrying the token ("" = token is the last path segment).
        self.parameter = parameter
        self.path_tokens = path_tokens
        self._valid: set[str] = set()
        self._disabled: set[str] = set()
        #: token -> victim email, for victim-tracking kits.
        self.token_owner: dict[str, str] = {}

    def issue(self, token: str, owner_email: str = "") -> None:
        self._valid.add(token)
        if owner_email:
            self.token_owner[token] = owner_email

    def disable(self, token: str) -> None:
        self._disabled.add(token)

    def extract_token(self, request: HttpRequest) -> str | None:
        if self.parameter:
            for key, value in request.url.query_params:
                if key == self.parameter:
                    return value
            return None
        if self.path_tokens:
            segments = [segment for segment in request.url.path.split("/") if segment]
            return segments[-1] if segments else None
        return None

    def evaluate(self, request: HttpRequest, context: ClientContext) -> GuardDecision:
        token = self.extract_token(request)
        if token is None:
            return self._deny("no token in request")
        if token in self._disabled:
            return self._deny("token disabled by operator")
        if token not in self._valid:
            return self._deny("unknown token")
        return self._allow()
