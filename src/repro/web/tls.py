"""TLS certificates and a Certificate Transparency log.

Figure 3 of the paper compares, per landing domain, the time between
TLS certificate issuance and phishing delivery ("timedeltaB", median
185 hours).  Certificates here carry issuance timestamps in simulated
hours and are discoverable through a CT log, as real anti-phishing
scanners do.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TLSCertificate:
    """An X.509-shaped certificate for the simulation."""

    subject: str
    issuer: str
    #: Hours-since-epoch of issuance (notBefore).
    not_before: float
    #: Hours-since-epoch of expiry (notAfter).
    not_after: float
    sans: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        material = f"{self.subject}|{self.issuer}|{self.not_before}|{self.not_after}|{','.join(self.sans)}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def covers(self, host: str) -> bool:
        """True when the certificate is valid for ``host`` (incl. wildcards)."""
        host = host.lower()
        names = (self.subject,) + self.sans
        for name in names:
            name = name.lower()
            if name == host:
                return True
            if name.startswith("*.") and host.endswith(name[1:]) and host.count(".") == name.count("."):
                return True
        return False

    def valid_at(self, timestamp: float) -> bool:
        return self.not_before <= timestamp <= self.not_after


@dataclass
class CertificateTransparencyLog:
    """An append-only log of issued certificates, queryable by domain."""

    entries: list[TLSCertificate] = field(default_factory=list)

    def submit(self, certificate: TLSCertificate) -> None:
        self.entries.append(certificate)

    def lookup(self, domain: str) -> list[TLSCertificate]:
        """All certificates covering ``domain``, oldest first."""
        matches = [cert for cert in self.entries if cert.covers(domain)]
        return sorted(matches, key=lambda cert: cert.not_before)

    def earliest_issuance(self, domain: str) -> float | None:
        """The first issuance time seen for a domain, or None."""
        matches = self.lookup(domain)
        return matches[0].not_before if matches else None
