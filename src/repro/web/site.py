"""Websites, pages, and their visual specifications.

A :class:`Page` couples three things the paper's analysis consumes:

1. the HTML (with inline scripts) returned over HTTP,
2. the server-side cloaking guards protecting it, and
3. a :class:`VisualSpec` describing what the rendered page looks like —
   the substrate for screenshots and the pHash/dHash spear-phishing
   classifier of Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.web.cloaking import GuardDecision, ServerGuard
from repro.web.context import ClientContext
from repro.web.http import HttpRequest, HttpResponse


@dataclass(frozen=True)
class VisualSpec:
    """A deterministic description of a rendered page.

    Phishing kits clone a brand's spec (possibly adding noise, a victim
    email overlay, or a hue-rotation), so screenshots of the fake and the
    legitimate page hash near-identically — exactly the property the
    paper's fuzzy-hash classifier exploits.
    """

    brand: str = ""
    title: str = "Sign in"
    background: tuple[int, int, int] = (244, 246, 248)
    header_color: tuple[int, int, int] = (20, 60, 120)
    box_color: tuple[int, int, int] = (255, 255, 255)
    button_color: tuple[int, int, int] = (30, 90, 200)
    button_text: str = "SIGN IN"
    fields: tuple[str, ...] = ("EMAIL", "PASSWORD")
    footer: str = ""
    #: Deterministic layout geometry selector (0-11): real login portals
    #: differ structurally, not just in palette, and the grayscale fuzzy
    #: hashes key on structure.  Clones copy the victim brand's variant.
    layout_variant: int = 0
    #: CSS-filter-style hue rotation in degrees (the Section V-C evasion).
    hue_rotate_deg: float = 0.0
    #: If set, the logo image is fetched from this URL at render time
    #: (the "resources from the impersonated organization" finding).
    logo_url: str | None = None
    #: Logo drawn locally when no ``logo_url`` is fetched — clones imitate
    #: the brand's logo even when they do not hotlink it.
    logo_text: str = ""

    def with_hue_rotation(self, degrees: float) -> "VisualSpec":
        return replace(self, hue_rotate_deg=degrees)


#: A route handler: (request, context) -> HttpResponse.
RouteHandler = Callable[[HttpRequest, ClientContext], HttpResponse]


@dataclass
class Page:
    """One servable page."""

    html: str = "<html><body></body></html>"
    status: int = 200
    content_type: str = "text/html"
    visual: VisualSpec | None = None
    guards: list[ServerGuard] = field(default_factory=list)
    #: Served when a guard denies: a decoy Page or a redirect URL.
    decoy: "Page | str | None" = None
    #: Free-form labels the kits attach (used only by tests/analysis).
    tags: frozenset[str] = frozenset()

    def to_response(self) -> HttpResponse:
        response = HttpResponse(status=self.status, body=self.html, content_type=self.content_type)
        response.headers.set("Content-Type", self.content_type)
        response.visual = self.visual  # type: ignore[attr-defined]
        return response


@dataclass(frozen=True)
class AccessLogEntry:
    request: HttpRequest
    decisions: tuple[GuardDecision, ...]
    served_decoy: bool
    status: int


class Website:
    """A host serving pages and handlers under one domain."""

    def __init__(self, domain: str, ip: str = "", certificate=None):
        self.domain = domain.lower()
        self.ip = ip
        self.certificate = certificate
        self._routes: dict[str, Page | RouteHandler] = {}
        self._prefix_routes: list[tuple[str, Page | RouteHandler]] = []
        self.default: Page | RouteHandler | None = None
        self.access_log: list[AccessLogEntry] = []

    # ------------------------------------------------------------------
    def add_page(self, path: str, page: Page) -> None:
        self._routes[path] = page

    def add_handler(self, path: str, handler: RouteHandler) -> None:
        self._routes[path] = handler

    def add_prefix_page(self, prefix: str, page: Page) -> None:
        """Serve ``page`` for any path starting with ``prefix`` (tokenized URLs)."""
        self._prefix_routes.append((prefix, page))

    def set_default(self, target: Page | RouteHandler) -> None:
        self.default = target

    # ------------------------------------------------------------------
    def _find_route(self, path: str) -> Page | RouteHandler | None:
        if path in self._routes:
            return self._routes[path]
        for prefix, target in self._prefix_routes:
            if path.startswith(prefix):
                return target
        return self.default

    def handle(self, request: HttpRequest, context: ClientContext) -> HttpResponse:
        """Serve a request, applying the page's server-side cloaking."""
        target = self._find_route(request.url.path)
        if target is None:
            response = HttpResponse.not_found()
            self.access_log.append(AccessLogEntry(request, (), False, response.status))
            return response
        if callable(target) and not isinstance(target, Page):
            response = target(request, context)
            self.access_log.append(AccessLogEntry(request, (), False, response.status))
            return response

        page = target
        decisions = tuple(guard.evaluate(request, context) for guard in page.guards)
        denied = [decision for decision in decisions if not decision.allowed]
        if denied:
            response = self._serve_decoy(page)
            self.access_log.append(AccessLogEntry(request, decisions, True, response.status))
            return response
        response = page.to_response()
        self.access_log.append(AccessLogEntry(request, decisions, False, response.status))
        return response

    def _serve_decoy(self, page: Page) -> HttpResponse:
        if isinstance(page.decoy, str):
            return HttpResponse.redirect(page.decoy)
        if isinstance(page.decoy, Page):
            return page.decoy.to_response()
        return HttpResponse.not_found("Nothing here")


def benign_decoy_page(text: str = "Welcome") -> Page:
    """A plain, boring page served to suspected bots."""
    html = f"<html><head><title>{text}</title></head><body><p>{text}</p></body></html>"
    return Page(
        html=html,
        visual=VisualSpec(
            brand="",
            title=text,
            background=(255, 255, 255),
            header_color=(230, 230, 230),
            button_color=(200, 200, 200),
            button_text="",
            fields=(),
        ),
        tags=frozenset({"decoy"}),
    )
