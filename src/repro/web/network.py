"""The network fabric: DNS + TLS + HTTP tied together.

:class:`Network` is the single entry point browsers use.  A request
resolves the host (NXDOMAIN is observable), validates the site's TLS
certificate at the simulated timestamp, and dispatches to the website's
handler with the caller's :class:`~repro.web.context.ClientContext`.
Third-party IP services (httpbin.org / ipapi.co — used by the kits'
server-side filtering, Section V-C) can be installed with one call.
"""

from __future__ import annotations

import json

from repro.web.context import ClientContext
from repro.web.dns import DnsResolver, NxDomainError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.site import Website
from repro.web.tls import CertificateTransparencyLog, TLSCertificate
from repro.web.whois import WhoisRegistry

__all__ = ["Network", "ClientContext", "ConnectionFailed", "TLSValidationError"]


#: Benign utility hosts the fabric can serve (see
#: :meth:`Network.install_ip_services`); the pipeline's crawl admission
#: policy treats these as non-phishing infrastructure.
UTILITY_HOSTS: tuple[str, ...] = ("httpbin.org", "ipapi.co")


class ConnectionFailed(ConnectionError):
    """The host resolved but nothing answers (server taken down)."""


class TLSValidationError(ConnectionError):
    """No valid certificate covers the host at this time."""


class Network:
    """The simulated internet fabric."""

    def __init__(self):
        self.dns = DnsResolver()
        self.ct_log = CertificateTransparencyLog()
        self.whois = WhoisRegistry()
        self._websites: dict[str, Website] = {}
        #: IP metadata used by enrichment (ip -> (asn, network name, country)).
        self.ip_metadata: dict[str, tuple[str, str, str]] = {}
        #: Optional :class:`~repro.web.faults.FaultEngine` consulted on
        #: every dispatch (None = the fabric is perfectly reliable).
        self.faults = None

    def install_faults(self, engine) -> None:
        """Install a fault-injection engine on the fabric.

        The engine's decisions are a pure function of its seed and the
        request coordinates, so installing the same engine on a shared
        network (thread workers) or on per-process rebuilds (process
        workers) produces identical weather.
        """
        self.faults = engine

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def host_website(
        self,
        website: Website,
        active_from: float = float("-inf"),
        active_until: float = float("inf"),
    ) -> None:
        """Attach a website to the fabric and publish its DNS record."""
        # Normalized at insertion: lookups (``website``/``take_down``/
        # request dispatch) are all lowercase, so a mixed-case domain —
        # possible when ``Website.domain`` is reassigned after
        # construction — would otherwise be unreachable and
        # un-take-downable.
        self._websites[website.domain.lower()] = website
        if website.ip:
            self.dns.add_record(website.domain, website.ip, active_from, active_until)

    def take_down(self, domain: str) -> None:
        """Remove the web server but keep DNS (resolves, then connection fails)."""
        self._websites.pop(domain.lower(), None)

    def website(self, domain: str) -> Website | None:
        return self._websites.get(domain.lower())

    def issue_certificate(self, certificate: TLSCertificate) -> None:
        """Record issuance in the CT log and attach it to a hosted site."""
        self.ct_log.submit(certificate)
        site = self._websites.get(certificate.subject.lower())
        if site is not None:
            site.certificate = certificate

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def request(self, request: HttpRequest, context: ClientContext) -> HttpResponse:
        """Resolve, validate TLS, and serve one request.

        Raises :class:`~repro.web.dns.NxDomainError`,
        :class:`ConnectionFailed`, or :class:`TLSValidationError` — the
        error-page outcomes of Section V (15.9% of malicious messages).
        """
        host = request.url.host
        faults = self.faults
        if faults is not None:
            # Single interception point: connection-phase faults fire
            # before the fabric is consulted, exactly like weather on a
            # live network (the request never reaches the server).
            faults.check_connection(request)
        self.dns.resolve(host, timestamp=request.timestamp)
        website = self._websites.get(host)
        if website is None:
            raise ConnectionFailed(f"no server answering for {host}")
        if request.url.scheme == "https":
            certificate = website.certificate
            if certificate is None or not certificate.covers(host) or not certificate.valid_at(request.timestamp):
                raise TLSValidationError(f"no valid certificate for {host}")
        response = website.handle(request, context)
        if faults is not None:
            # Response-phase faults: the server answered but the client
            # saw a stall, a truncation, or a shaped 5xx/429/redirect.
            response = faults.shape_response(request, response)
        return response

    # ------------------------------------------------------------------
    # Built-in third-party services
    # ------------------------------------------------------------------
    def install_ip_services(self) -> None:
        """Host httpbin.org-style and ipapi.co-style IP echo services.

        The paper found kits retrieving the client IP from httpbin.org
        (145 messages) and enriching it via ipapi.co (83 messages) before
        exfiltrating it to C2 for server-side filtering.
        """
        httpbin_host, ipapi_host = UTILITY_HOSTS
        httpbin = Website(httpbin_host, ip="34.0.0.1")

        def _httpbin_ip(request: HttpRequest, context: ClientContext) -> HttpResponse:
            body = json.dumps({"origin": context.ip})
            return HttpResponse(status=200, body=body, content_type="application/json")

        httpbin.add_handler("/ip", _httpbin_ip)
        self.host_website(httpbin)
        self.issue_certificate(
            TLSCertificate(httpbin_host, "DigiCert", float("-inf"), float("inf"))
        )

        ipapi = Website(ipapi_host, ip="34.0.0.2")

        def _ipapi_json(request: HttpRequest, context: ClientContext) -> HttpResponse:
            asn, network_name, country = self.ip_metadata.get(
                context.ip, (context.asn, context.network_name, context.country)
            )
            body = json.dumps(
                {
                    "ip": context.ip,
                    "country": country,
                    "city": "Unknown",
                    "asn": asn,
                    "org": network_name,
                    "network_type": context.ip_type,
                }
            )
            return HttpResponse(status=200, body=body, content_type="application/json")

        ipapi.add_handler("/json", _ipapi_json)
        ipapi.add_handler("/json/", _ipapi_json)
        self.host_website(ipapi)
        self.issue_certificate(
            TLSCertificate(ipapi_host, "DigiCert", float("-inf"), float("inf"))
        )
