"""URL parsing and domain helpers.

A small, explicit re-implementation (rather than a thin wrapper over
``urllib``) so the strict email-filter URL validation, the lenient
mobile-style carving, and the domain-syntax analysis of Section V-A all
share one well-understood code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Multi-label public suffixes the corpus uses (a tiny public-suffix list).
MULTI_LABEL_SUFFIXES = frozenset(
    {
        "co.uk", "org.uk", "ac.uk", "com.br", "net.br", "org.br", "com.au",
        "com.cn", "co.jp", "co.in", "com.mx", "com.tr", "com.ar", "co.za",
        "workers.dev", "pages.dev", "r2.dev", "vercel.app", "github.io",
        "cloudfront.net", "oraclecloud.com", "cloudflare-ipfs.com",
    }
)


@dataclass(frozen=True)
class ParsedUrl:
    """A decomposed absolute URL."""

    scheme: str
    host: str
    port: int
    path: str
    query: str
    fragment: str
    raw: str
    query_params: tuple[tuple[str, str], ...] = field(default=())

    @property
    def origin(self) -> str:
        default = {"http": 80, "https": 443}.get(self.scheme)
        if self.port == default:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def registered_domain(self) -> str:
        return registered_domain(self.host)

    @property
    def tld(self) -> str:
        return top_level_domain(self.host)

    def with_path(self, path: str) -> "ParsedUrl":
        raw = f"{self.origin}{path}"
        return parse_url(raw)

    def __str__(self) -> str:
        return self.raw


class UrlError(ValueError):
    """The string is not an absolute http(s) URL."""


def parse_url(raw: str) -> ParsedUrl:
    """Parse an absolute http(s) URL, raising :class:`UrlError` otherwise."""
    raw = raw.strip()
    split = urlsplit(raw)
    if split.scheme not in ("http", "https"):
        raise UrlError(f"unsupported scheme in {raw!r}")
    if not split.hostname:
        raise UrlError(f"missing host in {raw!r}")
    host = split.hostname.lower().rstrip(".")
    if not host or any(not part for part in host.split(".")):
        raise UrlError(f"malformed host in {raw!r}")
    try:
        port = split.port or {"http": 80, "https": 443}[split.scheme]
    except ValueError as exc:
        raise UrlError(f"bad port in {raw!r}") from exc
    path = split.path or "/"
    params = tuple(parse_qsl(split.query, keep_blank_values=True))
    return ParsedUrl(
        scheme=split.scheme,
        host=host,
        port=port,
        path=path,
        query=split.query,
        fragment=split.fragment,
        raw=raw,
        query_params=params,
    )


def is_valid_url(raw: str) -> bool:
    """True when :func:`parse_url` accepts the string."""
    try:
        parse_url(raw)
        return True
    except UrlError:
        return False


def registered_domain(host: str) -> str:
    """The registrable domain: one label below the public suffix.

    ``login.portal.evil-site.com`` -> ``evil-site.com``;
    ``phish.tenant.workers.dev`` -> ``tenant.workers.dev``.
    """
    host = host.lower().rstrip(".")
    labels = host.split(".")
    if len(labels) <= 2:
        return host
    for suffix_length in (3, 2):
        if len(labels) > suffix_length:
            suffix = ".".join(labels[-suffix_length:])
            if suffix in MULTI_LABEL_SUFFIXES:
                return ".".join(labels[-(suffix_length + 1):])
    return ".".join(labels[-2:])


def top_level_domain(host: str) -> str:
    """The final label of the host, with a leading dot (``.com``)."""
    host = host.lower().rstrip(".")
    return "." + host.rsplit(".", 1)[-1] if "." in host else "." + host


def is_punycode(host: str) -> bool:
    """True when any label uses the IDNA ``xn--`` encoding."""
    return any(label.startswith("xn--") for label in host.lower().split("."))
