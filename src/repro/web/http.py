"""HTTP request/response primitives for the simulated internet."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.urls import ParsedUrl, parse_url


class Headers:
    """Case-insensitive HTTP header map preserving insertion order."""

    def __init__(self, initial: dict[str, str] | None = None):
        self._entries: dict[str, tuple[str, str]] = {}
        for name, value in (initial or {}).items():
            self.set(name, value)

    def set(self, name: str, value: str) -> None:
        self._entries[name.lower()] = (name, str(value))

    def get(self, name: str, default: str | None = None) -> str | None:
        entry = self._entries.get(name.lower())
        return entry[1] if entry else default

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def remove(self, name: str) -> None:
        self._entries.pop(name.lower(), None)

    def items(self) -> list[tuple[str, str]]:
        return [entry for entry in self._entries.values()]

    def copy(self) -> "Headers":
        headers = Headers()
        for name, value in self.items():
            headers.set(name, value)
        return headers

    def __repr__(self) -> str:
        return f"Headers({dict(self.items())!r})"


@dataclass
class HttpRequest:
    """A request as seen by a (simulated) web server."""

    method: str
    url: ParsedUrl
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    client_ip: str = "0.0.0.0"
    #: Simulation timestamp (hours since epoch of the study window).
    timestamp: float = 0.0
    #: Retry ordinal supplied by a resilient caller (0 = first try).
    #: Part of the fault engine's decision coordinates, so a retried
    #: request re-rolls its fault schedule deterministically.
    fault_attempt: int = 0

    @classmethod
    def get(cls, raw_url: str, **kwargs) -> "HttpRequest":
        return cls(method="GET", url=parse_url(raw_url), **kwargs)

    @property
    def user_agent(self) -> str:
        return self.headers.get("User-Agent", "") or ""


@dataclass
class HttpResponse:
    """A server response."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    content_type: str = "text/html"

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308) and "Location" in self.headers

    @property
    def location(self) -> str | None:
        return self.headers.get("Location")

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "HttpResponse":
        response = cls(status=status, body="")
        response.headers.set("Location", location)
        return response

    @classmethod
    def not_found(cls, message: str = "404 Not Found") -> "HttpResponse":
        return cls(status=404, body=f"<html><body><h1>{message}</h1></body></html>")

    @classmethod
    def forbidden(cls, message: str = "403 Forbidden") -> "HttpResponse":
        return cls(status=403, body=f"<html><body><h1>{message}</h1></body></html>")
