"""WHOIS registration records.

Figure 3's "timedeltaA" is the gap between domain registration and
phishing delivery (median 575 hours in the paper).  The registry also
carries the registrar names used in the .ru analysis of Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Registrars the paper names for the .ru phishing domains.
RU_REGISTRARS = (
    "REGRU-RU",
    "R01-RU",
    "RU-CENTER-RU",
    "REGTIME-RU",
    "OPENPROV-RU",
)


@dataclass(frozen=True)
class WhoisRecord:
    """A registration record for one registrable domain."""

    domain: str
    registrar: str
    #: Hours-since-epoch of registration.
    created: float
    #: Hours-since-epoch of expiry.
    expires: float
    registrant_country: str = ""
    #: True when the domain is a legitimate site later compromised.
    compromised: bool = False

    def age_at(self, timestamp: float) -> float:
        """Domain age in hours at ``timestamp`` (negative = not yet registered)."""
        return timestamp - self.created


class WhoisRegistry:
    """Registration database keyed by registrable domain."""

    def __init__(self):
        self._records: dict[str, WhoisRecord] = {}

    def register(self, record: WhoisRecord) -> None:
        self._records[record.domain.lower()] = record

    def lookup(self, domain: str) -> WhoisRecord | None:
        return self._records.get(domain.lower())

    def __len__(self) -> int:
        return len(self._records)

    def domains(self) -> list[str]:
        return list(self._records)
