"""DNS resolution with a passive-DNS observation log.

Besides resolving names for the browser, the resolver records every
query with its timestamp.  The Cisco-Umbrella-style enrichment in
:mod:`repro.enrichment.umbrella` is fed both from this live log and from
pre-seeded historical volumes generated with the corpus (the paper
examines "DNS query volumes for the malicious landing domains during
the last 30 days before the reception of their associated message").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


class NxDomainError(LookupError):
    """The domain does not exist (NXDOMAIN)."""


@dataclass(frozen=True)
class DnsRecord:
    domain: str
    ip: str
    #: Hours-since-epoch at which the record became active.
    active_from: float = float("-inf")
    #: Hours-since-epoch at which the record stops resolving.
    active_until: float = float("inf")


class DnsResolver:
    """An authoritative view of the simulated internet's names."""

    def __init__(self):
        self._records: dict[str, list[DnsRecord]] = defaultdict(list)
        #: Passive DNS log: (timestamp, domain) pairs, append-only.
        self.query_log: list[tuple[float, str]] = []

    def add_record(
        self,
        domain: str,
        ip: str,
        active_from: float = float("-inf"),
        active_until: float = float("inf"),
    ) -> None:
        self._records[domain.lower()].append(DnsRecord(domain.lower(), ip, active_from, active_until))

    def remove_domain(self, domain: str) -> None:
        self._records.pop(domain.lower(), None)

    def resolve(self, domain: str, timestamp: float = 0.0, log: bool = True) -> str:
        """Resolve ``domain`` at a point in simulated time.

        Raises :class:`NxDomainError` if no record is active.
        """
        domain = domain.lower()
        if log:
            self.query_log.append((timestamp, domain))
        for record in self._records.get(domain, ()):
            if record.active_from <= timestamp <= record.active_until:
                return record.ip
        raise NxDomainError(domain)

    def knows(self, domain: str) -> bool:
        return domain.lower() in self._records

    def queries_for(self, domain: str) -> list[float]:
        """Timestamps of observed queries for one domain."""
        domain = domain.lower()
        return [ts for ts, name in self.query_log if name == domain]
