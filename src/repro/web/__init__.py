"""The simulated internet.

The paper's crawler operates against live phishing infrastructure: DNS,
TLS certificates, WHOIS records, redirecting web servers, and
server-side cloaking (IP blocklists, User-Agent filters, tokenized
URLs, delayed activation).  This subpackage provides all of that as an
in-process fabric:

- :mod:`~repro.web.urls` — URL parsing, registered domains, TLDs.
- :mod:`~repro.web.http` — request/response types with case-insensitive
  headers.
- :mod:`~repro.web.dns` — resolver with NXDOMAIN and a passive-DNS query
  log (the substrate behind the Cisco-Umbrella-style enrichment).
- :mod:`~repro.web.tls` — certificates and a Certificate Transparency log.
- :mod:`~repro.web.whois` — registration records and registrars.
- :mod:`~repro.web.cloaking` — the server-side cloaking guards of
  Section III-B.2.
- :mod:`~repro.web.site` — websites, pages, redirects, visual specs.
- :mod:`~repro.web.network` — the top-level fabric tying it together.
- :mod:`~repro.web.faults` — seeded deterministic fault injection
  (DNS flaps, timeouts, TLS failures, 5xx/429, stalls, truncation,
  redirect loops) for chaos-testing the crawl path.
- :mod:`~repro.web.resilient` — the retry/breaker/deadline fetch
  wrapper the crawl stage uses under fault injection.
"""

from repro.web.http import HttpRequest, HttpResponse, Headers
from repro.web.urls import ParsedUrl, parse_url, registered_domain, top_level_domain
from repro.web.dns import DnsResolver, NxDomainError
from repro.web.tls import CertificateTransparencyLog, TLSCertificate
from repro.web.whois import WhoisRecord, WhoisRegistry
from repro.web.site import Page, VisualSpec, Website
from repro.web.network import Network, ClientContext
from repro.web.faults import FAULT_PROFILES, FaultEngine, FaultError, FaultProfile, fault_profile
from repro.web.resilient import CircuitBreaker, FaultTelemetry, ResiliencePolicy, ResilientFetcher

__all__ = [
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "ParsedUrl",
    "parse_url",
    "registered_domain",
    "top_level_domain",
    "DnsResolver",
    "NxDomainError",
    "TLSCertificate",
    "CertificateTransparencyLog",
    "WhoisRecord",
    "WhoisRegistry",
    "Website",
    "Page",
    "VisualSpec",
    "Network",
    "ClientContext",
    "FAULT_PROFILES",
    "FaultEngine",
    "FaultError",
    "FaultProfile",
    "fault_profile",
    "CircuitBreaker",
    "FaultTelemetry",
    "ResiliencePolicy",
    "ResilientFetcher",
]
