"""Deterministic fault injection for the simulated internet.

The paper's CrawlerBox ran unattended for ten months against live
infrastructure that constantly failed under it — dead domains,
takedowns mid-crawl, stalled servers, rate limits — yet still produced
a per-message outcome record.  This module gives the in-process fabric
the same hostile weather: a :class:`FaultEngine` installed on a
:class:`~repro.web.network.Network` intercepts every request at the
single dispatch point and injects the failure taxonomy the paper
implicitly survived:

===================  ==============================================
kind                 observable effect
===================  ==============================================
``flaky_host``       host down for its first k attempts, then fine
``nxdomain_flap``    transient NXDOMAIN on an existing record
``dns_servfail``     resolver SERVFAIL (surfaces as NXDOMAIN)
``connect_timeout``  TCP connect never completes
``tls_handshake``    TLS negotiation fails (https only)
``slow_start``       no first byte before the client deadline
``mid_body_stall``   transfer stalls past the deadline mid-body
``truncated_body``   connection reset before the body completes
``http_5xx``         response replaced by a 500/502/503
``http_429``         response replaced by a 429 + ``Retry-After``
``redirect_loop``    response replaced by a self-redirect
===================  ==============================================

Determinism contract: every decision is a pure function of
``(fault_seed, host, attempt, epoch)`` — hashed through BLAKE2 into a
private :class:`random.Random` — so the engine keeps *no* mutable
request state.  The same seed produces the same weather whether the
corpus runs serially, across N threads sharing one Network, or across
N worker processes that each rebuilt their own; ``--jobs N`` exports
stay byte-identical to ``--jobs 1``.  The ``attempt`` ordinal is
supplied by the retrying caller (:class:`repro.web.resilient.ResilientFetcher`)
via :attr:`HttpRequest.fault_attempt`, which is what makes
"flaky-then-recovers" hosts recoverable: a retry re-rolls the schedule
at the next attempt index instead of replaying the same failure.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.web.dns import NxDomainError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.network import ConnectionFailed, TLSValidationError

__all__ = [
    "FAULT_PROFILES",
    "ConnectTimeout",
    "DnsFlap",
    "DnsServFail",
    "FaultEngine",
    "FaultError",
    "FaultProfile",
    "FlakyHostDown",
    "MidBodyStall",
    "SlowStart",
    "TLSHandshakeFailure",
    "TruncatedResponse",
    "fault_profile",
]


class FaultError:
    """Marker mixin for injected faults.

    Every fault exception also subclasses the genuine network error the
    browser already handles (:class:`~repro.web.dns.NxDomainError`,
    :class:`~repro.web.network.ConnectionFailed`,
    :class:`~repro.web.network.TLSValidationError`), so the existing
    degradation paths apply unchanged; ``kind`` names the taxonomy
    entry for telemetry.
    """

    kind = "fault"


class DnsFlap(FaultError, NxDomainError):
    kind = "nxdomain_flap"


class DnsServFail(FaultError, NxDomainError):
    kind = "dns_servfail"


class ConnectTimeout(FaultError, ConnectionFailed):
    kind = "connect_timeout"


class FlakyHostDown(FaultError, ConnectionFailed):
    kind = "flaky_host"


class TLSHandshakeFailure(FaultError, TLSValidationError):
    kind = "tls_handshake"


class SlowStart(FaultError, ConnectionFailed):
    """The per-request deadline fired before the first response byte."""

    kind = "slow_start"


class MidBodyStall(FaultError, ConnectionFailed):
    """The per-request deadline fired mid-transfer."""

    kind = "mid_body_stall"


class TruncatedResponse(FaultError, ConnectionFailed):
    """The connection reset before the body completed."""

    kind = "truncated_body"


@dataclass(frozen=True)
class FaultProfile:
    """Per-host fault rates (independent probabilities per request).

    Connection-phase kinds (flap/servfail/connect/tls/slow-start) are
    rolled once per request as disjoint bands of a single uniform draw,
    so at most one fires and each keeps its configured probability;
    response-phase kinds (stall/truncation/5xx/429/redirect loop) roll
    the same way after the server produced a response.
    """

    name: str = "custom"
    nxdomain_flap: float = 0.0
    dns_servfail: float = 0.0
    connect_timeout: float = 0.0
    tls_handshake: float = 0.0
    slow_start: float = 0.0
    mid_body_stall: float = 0.0
    truncated_body: float = 0.0
    http_5xx: float = 0.0
    http_429: float = 0.0
    redirect_loop: float = 0.0
    #: Fraction of hosts that are "flaky-then-recovers": down for their
    #: first 1..``flaky_max_dead_attempts`` attempts, healthy afterwards.
    flaky_host_fraction: float = 0.0
    flaky_max_dead_attempts: int = 2
    #: Advertised ``Retry-After`` on injected 429s (simulated seconds).
    retry_after_seconds: float = 30.0

    #: The probability fields (everything that can make the profile fire).
    RATE_FIELDS = (
        "nxdomain_flap",
        "dns_servfail",
        "connect_timeout",
        "tls_handshake",
        "slow_start",
        "mid_body_stall",
        "truncated_body",
        "http_5xx",
        "http_429",
        "redirect_loop",
        "flaky_host_fraction",
    )

    @property
    def active(self) -> bool:
        """Any fault kind has a non-zero probability."""
        return any(getattr(self, name) > 0.0 for name in self.RATE_FIELDS)


#: The CLI presets (``repro run --faults {off,light,heavy,hostile}``).
FAULT_PROFILES: dict[str, FaultProfile] = {
    "off": FaultProfile(name="off"),
    "light": FaultProfile(
        name="light",
        nxdomain_flap=0.01,
        dns_servfail=0.005,
        connect_timeout=0.02,
        tls_handshake=0.005,
        slow_start=0.01,
        mid_body_stall=0.005,
        truncated_body=0.005,
        http_5xx=0.02,
        http_429=0.01,
        redirect_loop=0.002,
        flaky_host_fraction=0.05,
    ),
    "heavy": FaultProfile(
        name="heavy",
        nxdomain_flap=0.04,
        dns_servfail=0.02,
        connect_timeout=0.06,
        tls_handshake=0.02,
        slow_start=0.03,
        mid_body_stall=0.02,
        truncated_body=0.02,
        http_5xx=0.06,
        http_429=0.03,
        redirect_loop=0.01,
        flaky_host_fraction=0.15,
    ),
    "hostile": FaultProfile(
        name="hostile",
        nxdomain_flap=0.10,
        dns_servfail=0.05,
        connect_timeout=0.12,
        tls_handshake=0.05,
        slow_start=0.06,
        mid_body_stall=0.05,
        truncated_body=0.05,
        http_5xx=0.12,
        http_429=0.06,
        redirect_loop=0.02,
        flaky_host_fraction=0.30,
    ),
}


def fault_profile(name: str) -> FaultProfile:
    """Look up a preset by name (``off``/``light``/``heavy``/``hostile``)."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; expected one of {sorted(FAULT_PROFILES)}"
        ) from None


_5XX_STATUSES = (500, 502, 503)


class FaultEngine:
    """Stateless, seeded fault scheduler for one Network fabric.

    ``host_profiles`` overrides the default profile per host (tests pin
    a single host's weather; everything else follows the preset).  The
    engine is installed with :meth:`Network.install_faults` and consulted
    at the fabric's single dispatch point — browsers, crawlers, and
    enrichment lookups all flow through it without knowing it exists.
    """

    def __init__(
        self,
        profile: FaultProfile | None = None,
        seed: int = 0,
        host_profiles: dict[str, FaultProfile] | None = None,
    ):
        self.profile = profile or FAULT_PROFILES["off"]
        self.seed = seed
        self.host_profiles = {
            host.lower(): entry for host, entry in (host_profiles or {}).items()
        }

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.profile.active or any(
            entry.active for entry in self.host_profiles.values()
        )

    def profile_for(self, host: str) -> FaultProfile:
        return self.host_profiles.get(host.lower(), self.profile)

    def set_host_profile(self, host: str, profile: FaultProfile) -> None:
        self.host_profiles[host.lower()] = profile

    # ------------------------------------------------------------------
    # The deterministic schedule
    # ------------------------------------------------------------------
    def _rng(self, host: str, attempt: int, epoch: int, salt: str) -> random.Random:
        """A private RNG that depends only on the decision coordinates."""
        digest = hashlib.blake2b(
            f"{self.seed}:{host.lower()}:{attempt}:{epoch}:{salt}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return random.Random(int.from_bytes(digest, "big"))

    @staticmethod
    def _epoch(timestamp: float) -> int:
        """Hour-granular weather: a host's state is stable within one
        simulated hour and re-rolls across hours, so a ten-month corpus
        sees hosts go down and come back."""
        return int(timestamp)

    def flaky_dead_attempts(self, host: str) -> int:
        """0 for healthy hosts; k >= 1 when ``host`` is flaky and dead
        for attempts ``0..k-1`` (a per-host trait, stable for the run)."""
        profile = self.profile_for(host)
        if profile.flaky_host_fraction <= 0.0:
            return 0
        rng = self._rng(host, 0, 0, "flaky-trait")
        if rng.random() >= profile.flaky_host_fraction:
            return 0
        return 1 + rng.randrange(max(1, profile.flaky_max_dead_attempts))

    # ------------------------------------------------------------------
    # Interception points (called by Network.request)
    # ------------------------------------------------------------------
    def check_connection(self, request: HttpRequest) -> None:
        """Connection-phase faults: raise before the server is reached."""
        host = request.url.host
        profile = self.profile_for(host)
        if not profile.active:
            return
        attempt = getattr(request, "fault_attempt", 0)
        dead_until = self.flaky_dead_attempts(host)
        if attempt < dead_until:
            raise FlakyHostDown(
                f"{host}: flaky host down (recovers at attempt {dead_until})"
            )
        roll = self._rng(host, attempt, self._epoch(request.timestamp), "connect").random()
        for rate, exc_type, message in (
            (profile.nxdomain_flap, DnsFlap, "transient NXDOMAIN flap"),
            (profile.dns_servfail, DnsServFail, "DNS SERVFAIL"),
            (profile.connect_timeout, ConnectTimeout, "connect timed out"),
            (profile.tls_handshake, TLSHandshakeFailure, "TLS handshake failed"),
            (profile.slow_start, SlowStart, "no first byte before deadline"),
        ):
            if exc_type is TLSHandshakeFailure and request.url.scheme != "https":
                continue
            if roll < rate:
                raise exc_type(f"{host}: {message}")
            roll -= rate

    def shape_response(self, request: HttpRequest, response: HttpResponse) -> HttpResponse:
        """Response-phase faults: stall/truncate (raise) or replace the
        server's answer (5xx, 429, self-redirect).  Replacements carry a
        ``fault_kind`` attribute so the browser can attribute them."""
        host = request.url.host
        profile = self.profile_for(host)
        if not profile.active:
            return response
        attempt = getattr(request, "fault_attempt", 0)
        epoch = self._epoch(request.timestamp)
        roll = self._rng(host, attempt, epoch, "response").random()
        if roll < profile.mid_body_stall:
            raise MidBodyStall(f"{host}: transfer stalled past deadline mid-body")
        roll -= profile.mid_body_stall
        if roll < profile.truncated_body:
            raise TruncatedResponse(f"{host}: connection reset mid-body")
        roll -= profile.truncated_body
        if roll < profile.http_5xx:
            status = self._rng(host, attempt, epoch, "5xx").choice(_5XX_STATUSES)
            shaped = HttpResponse(
                status=status,
                body=f"<html><body><h1>{status} Server Error</h1></body></html>",
            )
            shaped.fault_kind = "http_5xx"
            return shaped
        roll -= profile.http_5xx
        if roll < profile.http_429:
            shaped = HttpResponse(
                status=429,
                body="<html><body><h1>429 Too Many Requests</h1></body></html>",
            )
            shaped.headers.set("Retry-After", str(int(profile.retry_after_seconds)))
            shaped.fault_kind = "http_429"
            return shaped
        roll -= profile.http_429
        if roll < profile.redirect_loop:
            # A self-redirect: the browser re-requests the same URL with
            # the same decision coordinates, gets the same answer, and
            # its redirect budget converges to the redirect_loop outcome.
            shaped = HttpResponse.redirect(request.url.raw)
            shaped.fault_kind = "redirect_loop"
            return shaped
        return response

    def check_lookup(self, domain: str, timestamp: float) -> None:
        """Out-of-band lookup faults (enrichment's WHOIS/CT queries).

        Reuses the connect/TLS rates: a takedown between crawl and
        enrich surfaces here as :class:`ConnectTimeout` or
        :class:`TLSHandshakeFailure`, which the enrich stage degrades
        on instead of aborting the message.
        """
        profile = self.profile_for(domain)
        if not profile.active:
            return
        roll = self._rng(domain, 0, self._epoch(timestamp), "lookup").random()
        if roll < profile.connect_timeout:
            raise ConnectTimeout(f"{domain}: enrichment lookup timed out")
        roll -= profile.connect_timeout
        if roll < profile.tls_handshake:
            raise TLSHandshakeFailure(f"{domain}: enrichment lookup TLS failure")
