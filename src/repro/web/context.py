"""Network-level client context accompanying a request.

Server-side cloaking (Section III-B.2) filters on attributes that are
not in the HTTP request itself: IP reputation/type, geolocation, and
ASN.  The browser substrate fills a :class:`ClientContext` from its
connection profile; the fabric hands it to the server's guards.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Connection types, in decreasing order of bot-detection suspicion.
IP_DATACENTER = "datacenter"
IP_PROXY = "proxy"
IP_VPN = "vpn"
IP_RESIDENTIAL = "residential"
IP_MOBILE = "mobile"


@dataclass(frozen=True)
class ClientContext:
    """What the server (or a WAF in front of it) can learn about a client."""

    ip: str = "0.0.0.0"
    ip_type: str = IP_RESIDENTIAL
    country: str = "FR"
    asn: str = "AS0"
    network_name: str = ""
    #: TLS ClientHello fingerprint label (JA3-style); real browsers present
    #: a browser-stack fingerprint, plain HTTP libraries do not.
    tls_fingerprint: str = "chrome"
    #: True when the IP appears on security-vendor scanner blocklists.
    known_scanner: bool = False

    @property
    def looks_like_cloud(self) -> bool:
        return self.ip_type in (IP_DATACENTER, IP_PROXY, IP_VPN)
