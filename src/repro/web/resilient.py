"""A resilient fetch path: retries, circuit breakers, retry budgets.

The paper's crawler survived ten months of dead domains, stalled
servers, and rate limits by degrading instead of dying.  This module is
the consumer side of :mod:`repro.web.faults`: a
:class:`ResilientFetcher` wraps the crawler's ``crawl_url`` with

- bounded, jittered exponential-backoff retries (the backoff math is
  the runner's :class:`~repro.runner.retry.RetryPolicy`, honouring an
  injected 429's ``Retry-After`` when present),
- a per-host **circuit breaker** with half-open probes, so a
  permanently-dead host stops consuming attempts after it trips,
- a per-message **retry budget**, so one dead host cannot starve the
  rest of the message's URLs, and
- a :class:`FaultTelemetry` ledger recorded on the
  :class:`~repro.core.artifacts.MessageRecord` instead of dead-lettering
  the message.

Backoff is *simulated*: the would-be sleep is accumulated into
``telemetry.backoff_seconds`` and never actually slept, so a hostile
full-corpus soak stays fast and wall-clock never leaks into records.
Determinism: the jitter RNG is derived from the per-message seed, and
every injected fault is a pure function of ``(fault_seed, host,
attempt, epoch)``, so the retry transcript is identical across worker
counts and backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "CircuitBreaker",
    "FaultTelemetry",
    "ResiliencePolicy",
    "ResilientFetcher",
    "RETRYABLE_STATUSES",
]

#: Final HTTP statuses worth retrying (server-side/transient, never the
#: 403/404 the kits' cloaking guards serve deliberately).
RETRYABLE_STATUSES = frozenset((429, 500, 502, 503, 504))

#: Visit outcomes worth retrying: the connection-level failures a flaky
#: host recovers from.
RETRYABLE_OUTCOMES = frozenset(("nxdomain", "connection_failed", "tls_error"))

#: Fault kinds counted as per-request deadline hits.
DEADLINE_KINDS = frozenset(("slow_start", "mid_body_stall"))


@dataclass
class FaultTelemetry:
    """Per-message fault/resilience counters.

    Attached to :class:`~repro.core.artifacts.MessageRecord` only when a
    fault engine is active (so ``--faults off`` exports stay
    byte-identical to pre-fault-engine output) and serialized by
    :mod:`repro.core.export` whenever present.
    """

    #: Fetches actually issued (first attempts + retries + probes).
    requests_attempted: int = 0
    #: Retries consumed from the per-message budget.
    retries: int = 0
    #: Simulated seconds of backoff that would have been slept.
    backoff_seconds: float = 0.0
    #: Requests that died on a per-request deadline (slow start or
    #: mid-body stall).
    deadline_hits: int = 0
    #: Circuit breakers that tripped open (per host, per message).
    breaker_trips: int = 0
    #: Fetches suppressed by an open breaker.
    breaker_skips: int = 0
    #: Half-open probes issued through an open breaker.
    breaker_probes: int = 0
    #: The per-message retry budget ran dry.
    budget_exhausted: bool = False
    #: URLs that produced no data at all (breaker open before any attempt).
    unreachable: int = 0
    #: Enrichment lookups that failed (domain takedown between crawl and
    #: enrich).
    enrich_failures: int = 0
    #: Observed fault kinds -> occurrence counts.
    fault_kinds: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def note_kind(self, kind: str) -> None:
        self.fault_kinds[kind] = self.fault_kinds.get(kind, 0) + 1

    @property
    def total_faults(self) -> int:
        return sum(self.fault_kinds.values())

    def as_dict(self) -> dict:
        return {
            "requests_attempted": self.requests_attempted,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "deadline_hits": self.deadline_hits,
            "breaker_trips": self.breaker_trips,
            "breaker_skips": self.breaker_skips,
            "breaker_probes": self.breaker_probes,
            "budget_exhausted": self.budget_exhausted,
            "unreachable": self.unreachable,
            "enrich_failures": self.enrich_failures,
            "fault_kinds": {kind: self.fault_kinds[kind] for kind in sorted(self.fault_kinds)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultTelemetry":
        telemetry = cls(
            requests_attempted=int(data.get("requests_attempted", 0)),
            retries=int(data.get("retries", 0)),
            backoff_seconds=float(data.get("backoff_seconds", 0.0)),
            deadline_hits=int(data.get("deadline_hits", 0)),
            breaker_trips=int(data.get("breaker_trips", 0)),
            breaker_skips=int(data.get("breaker_skips", 0)),
            breaker_probes=int(data.get("breaker_probes", 0)),
            budget_exhausted=bool(data.get("budget_exhausted", False)),
            unreachable=int(data.get("unreachable", 0)),
            enrich_failures=int(data.get("enrich_failures", 0)),
        )
        telemetry.fault_kinds = {
            str(kind): int(count) for kind, count in (data.get("fault_kinds") or {}).items()
        }
        return telemetry


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard the crawl path fights for each URL."""

    #: Delivery attempts per request (1 = no retries).
    max_attempts_per_request: int = 3
    #: Retries a single message may spend across all of its URLs.
    retry_budget_per_message: int = 12
    #: Consecutive failures that trip a host's breaker open.
    breaker_threshold: int = 3
    #: Suppressed fetches before an open breaker lets one probe through.
    breaker_probe_after: int = 3
    #: Documented per-request deadline (simulated seconds); the fault
    #: engine's slow-start/mid-body stalls model this deadline firing.
    deadline_seconds: float = 30.0
    #: Backoff shape, reusing the runner's retry policy math.
    backoff_base_delay: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max_delay: float = 30.0
    backoff_jitter: float = 0.25

    def backoff_policy(self):
        """The equivalent :class:`~repro.runner.retry.RetryPolicy`.

        Imported lazily: this module sits in the ``web`` substrate and
        is imported by ``core.artifacts``, below the runner package.
        """
        from repro.runner.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=self.max_attempts_per_request,
            base_delay=self.backoff_base_delay,
            multiplier=self.backoff_multiplier,
            max_delay=self.backoff_max_delay,
            jitter=self.backoff_jitter,
        )


class _HostState:
    """One host's breaker state."""

    __slots__ = ("failures", "open", "skips", "probing")

    def __init__(self):
        self.failures = 0
        self.open = False
        self.skips = 0
        self.probing = False


class CircuitBreaker:
    """Per-host circuit breaker with half-open probes.

    State machine (per host)::

        CLOSED --threshold consecutive failures--> OPEN
        OPEN   --probe_after suppressed fetches--> HALF-OPEN (one probe)
        HALF-OPEN --probe succeeds--> CLOSED
        HALF-OPEN --probe fails-----> OPEN (skip count restarts)

    Scoped per message (the crawl stage builds one per record) so
    breaker state never couples one message's record to another's —
    the determinism guarantee needs records to be order-independent.
    """

    def __init__(self, threshold: int = 3, probe_after: int = 3):
        self.threshold = max(1, threshold)
        self.probe_after = max(1, probe_after)
        self._hosts: dict[str, _HostState] = {}

    def _state(self, host: str) -> _HostState:
        state = self._hosts.get(host)
        if state is None:
            state = self._hosts[host] = _HostState()
        return state

    # ------------------------------------------------------------------
    def allow(self, host: str) -> str:
        """``"closed"`` (fetch freely), ``"probe"`` (half-open trial
        fetch), or ``"blocked"`` (suppressed by an open breaker)."""
        state = self._state(host)
        if not state.open:
            return "closed"
        state.skips += 1
        if state.skips >= self.probe_after:
            state.skips = 0
            state.probing = True
            return "probe"
        return "blocked"

    def success(self, host: str) -> None:
        self._hosts[host] = _HostState()  # close and reset

    def failure(self, host: str) -> bool:
        """Record a failed fetch; True when this failure tripped the
        breaker open (a probe failure re-opens without re-tripping)."""
        state = self._state(host)
        if state.probing:
            state.probing = False
            state.skips = 0
            return False
        state.failures += 1
        if not state.open and state.failures >= self.threshold:
            state.open = True
            return True
        return False

    def is_open(self, host: str) -> bool:
        return self._state(host).open


class ResilientFetcher:
    """Retries + breaker + budget around a ``fetch(url, ts, attempt)``.

    ``fetch`` returns a :class:`~repro.browser.browser.VisitResult`-like
    object (``outcome``, ``final_response``, ``fault_kinds``); the
    wrapper never sees exceptions — the browser already degrades
    network errors into outcomes — it decides only whether an outcome
    is worth another attempt.
    """

    def __init__(
        self,
        fetch,
        policy: ResiliencePolicy | None = None,
        rng: random.Random | None = None,
        telemetry: FaultTelemetry | None = None,
    ):
        self.fetch_fn = fetch
        self.policy = policy or ResiliencePolicy()
        self.rng = rng or random.Random(0)
        self.telemetry = telemetry if telemetry is not None else FaultTelemetry()
        self.breaker = CircuitBreaker(
            threshold=self.policy.breaker_threshold,
            probe_after=self.policy.breaker_probe_after,
        )
        self.budget_left = self.policy.retry_budget_per_message
        self._backoff = self.policy.backoff_policy()

    # ------------------------------------------------------------------
    def fetch(self, url: str, host: str, timestamp: float):
        """Fetch ``url`` resiliently.

        Returns the first non-retryable result, the last degraded result
        when attempts/budget ran out, or ``None`` when an open breaker
        suppressed the URL before any attempt produced data.
        """
        telemetry = self.telemetry
        attempt = 0
        result = None
        while True:
            gate = self.breaker.allow(host)
            if gate == "blocked":
                telemetry.breaker_skips += 1
                if result is None:
                    telemetry.unreachable += 1
                return result
            if gate == "probe":
                telemetry.breaker_probes += 1
            telemetry.requests_attempted += 1
            result = self.fetch_fn(url, timestamp, attempt)
            self._note_result(result)
            if not self._retryable(result):
                self.breaker.success(host)
                return result
            if self.breaker.failure(host):
                telemetry.breaker_trips += 1
            attempt += 1
            if attempt >= self.policy.max_attempts_per_request:
                return result
            if self.budget_left <= 0:
                telemetry.budget_exhausted = True
                return result
            self.budget_left -= 1
            telemetry.retries += 1
            telemetry.backoff_seconds += self._delay(result, attempt)

    # ------------------------------------------------------------------
    def _note_result(self, result) -> None:
        for kind in getattr(result, "fault_kinds", ()):
            self.telemetry.note_kind(kind)
            if kind in DEADLINE_KINDS:
                self.telemetry.deadline_hits += 1

    def _retryable(self, result) -> bool:
        if result is None:
            return False
        if result.outcome in RETRYABLE_OUTCOMES:
            return True
        if result.outcome == "http_error":
            response = result.final_response
            return response is not None and response.status in RETRYABLE_STATUSES
        if result.outcome == "redirect_loop":
            # Only injected loops re-roll on retry; a kit's genuine loop
            # is its answer and retrying it wastes the budget.
            return "redirect_loop" in getattr(result, "fault_kinds", ())
        return False

    def _delay(self, result, attempt: int) -> float:
        """Simulated seconds before retry ``attempt`` (1-based): the
        server's ``Retry-After`` when the final response carries one,
        else jittered exponential backoff."""
        response = getattr(result, "final_response", None)
        if response is not None:
            retry_after = response.headers.get("Retry-After")
            if retry_after:
                try:
                    return max(0.0, float(retry_after))
                except ValueError:
                    pass
        return self._backoff.backoff_delay(attempt, self.rng)
