"""A minimal in-memory RGB raster image.

The reproduction needs real pixel data flowing through the pipeline
(QR codes embedded in message images, login-page screenshots, OCR input)
but must stay dependency-light, so this module implements a small image
class on top of a ``(height, width, 3)`` ``uint8`` numpy array.
"""

from __future__ import annotations

import numpy as np

#: Conventional colors used across the substrate.
WHITE = (255, 255, 255)
BLACK = (0, 0, 0)


class Image:
    """An RGB raster image backed by a numpy array.

    The pixel buffer is always ``uint8`` with shape ``(height, width, 3)``.
    All mutating operations work in place; transforming operations return
    new :class:`Image` instances.
    """

    def __init__(self, pixels: np.ndarray):
        pixels = np.asarray(pixels)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) pixel array, got shape {pixels.shape}")
        self.pixels = pixels.astype(np.uint8, copy=True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def new(cls, width: int, height: int, color: tuple[int, int, int] = WHITE) -> "Image":
        """Create a solid-color image of the given size."""
        if width <= 0 or height <= 0:
            raise ValueError(f"image dimensions must be positive, got {width}x{height}")
        buf = np.empty((height, width, 3), dtype=np.uint8)
        buf[:, :] = color
        return cls(buf)

    @classmethod
    def from_bool_matrix(
        cls,
        matrix: np.ndarray,
        scale: int = 1,
        fg: tuple[int, int, int] = BLACK,
        bg: tuple[int, int, int] = WHITE,
        border: int = 0,
    ) -> "Image":
        """Render a boolean matrix (True = foreground) as an image.

        Used to rasterise QR-code module matrices and font glyphs.
        ``scale`` is the pixel size of one matrix cell and ``border`` the
        quiet-zone width in cells.
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        if scale < 1:
            raise ValueError("scale must be >= 1")
        padded = np.pad(matrix, border, constant_values=False)
        scaled = np.kron(padded, np.ones((scale, scale), dtype=bool))
        buf = np.empty(scaled.shape + (3,), dtype=np.uint8)
        buf[~scaled] = bg
        buf[scaled] = fg
        return cls(buf)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def size(self) -> tuple[int, int]:
        return (self.width, self.height)

    def copy(self) -> "Image":
        return Image(self.pixels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.pixels.shape == other.pixels.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __hash__(self) -> int:  # content hash, stable across copies
        return hash((self.pixels.shape, self.pixels.tobytes()))

    def __repr__(self) -> str:
        return f"Image({self.width}x{self.height})"

    # ------------------------------------------------------------------
    # Pixel access and composition
    # ------------------------------------------------------------------
    def get_pixel(self, x: int, y: int) -> tuple[int, int, int]:
        r, g, b = self.pixels[y, x]
        return (int(r), int(g), int(b))

    def put_pixel(self, x: int, y: int, color: tuple[int, int, int]) -> None:
        self.pixels[y, x] = color

    def paste(self, other: "Image", x: int, y: int) -> None:
        """Paste ``other`` onto this image with its top-left corner at (x, y).

        The pasted region is clipped to this image's bounds.
        """
        if x >= self.width or y >= self.height:
            return
        x0, y0 = max(x, 0), max(y, 0)
        x1 = min(x + other.width, self.width)
        y1 = min(y + other.height, self.height)
        if x1 <= x0 or y1 <= y0:
            return
        sx0, sy0 = x0 - x, y0 - y
        self.pixels[y0:y1, x0:x1] = other.pixels[sy0 : sy0 + (y1 - y0), sx0 : sx0 + (x1 - x0)]

    def crop(self, x: int, y: int, width: int, height: int) -> "Image":
        """Return the sub-image at (x, y) of the given size."""
        if width <= 0 or height <= 0:
            raise ValueError("crop size must be positive")
        if x < 0 or y < 0 or x + width > self.width or y + height > self.height:
            raise ValueError("crop rectangle out of bounds")
        return Image(self.pixels[y : y + height, x : x + width])

    def fill_rect(self, x: int, y: int, width: int, height: int, color: tuple[int, int, int]) -> None:
        x0, y0 = max(x, 0), max(y, 0)
        x1 = min(x + width, self.width)
        y1 = min(y + height, self.height)
        if x1 > x0 and y1 > y0:
            self.pixels[y0:y1, x0:x1] = color

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def to_grayscale(self) -> np.ndarray:
        """Return a float (H, W) luminance array using ITU-R BT.601 weights."""
        rgb = self.pixels.astype(np.float64)
        return 0.299 * rgb[:, :, 0] + 0.587 * rgb[:, :, 1] + 0.114 * rgb[:, :, 2]

    def resize(self, width: int, height: int) -> "Image":
        """Nearest-neighbour resize (sufficient for hashing and OCR)."""
        if width <= 0 or height <= 0:
            raise ValueError("resize dimensions must be positive")
        ys = (np.arange(height) * (self.height / height)).astype(int).clip(0, self.height - 1)
        xs = (np.arange(width) * (self.width / width)).astype(int).clip(0, self.width - 1)
        return Image(self.pixels[np.ix_(ys, xs)])

    def mean_color(self) -> tuple[float, float, float]:
        means = self.pixels.reshape(-1, 3).mean(axis=0)
        return (float(means[0]), float(means[1]), float(means[2]))
