"""Image perturbations used by attackers and by the corpus generator.

The headline effect is :func:`hue_rotate`, reproducing the CSS
``filter: hue-rotate(4deg)`` evasion the paper found on 167 phishing
pages (Section V-C): a small color rotation that changes pixel values
but leaves the grayscale structure — and therefore pHash/dHash — intact.
"""

from __future__ import annotations

import random

import numpy as np

from repro.imaging.image import Image
from repro.imaging.render import render_text


def hue_rotate(image: Image, degrees: float) -> Image:
    """Rotate the hue of every pixel by ``degrees``.

    Implemented with the standard hue-rotation color matrix (the same
    linear approximation browsers use for the CSS ``hue-rotate`` filter),
    which preserves luminance almost exactly.
    """
    theta = np.deg2rad(degrees)
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    # Luminance weights used by the CSS filter spec.
    lr, lg, lb = 0.213, 0.715, 0.072
    matrix = np.array(
        [
            [lr + cos_t * (1 - lr) + sin_t * (-lr), lg + cos_t * (-lg) + sin_t * (-lg), lb + cos_t * (-lb) + sin_t * (1 - lb)],
            [lr + cos_t * (-lr) + sin_t * 0.143, lg + cos_t * (1 - lg) + sin_t * 0.140, lb + cos_t * (-lb) + sin_t * (-0.283)],
            [lr + cos_t * (-lr) + sin_t * (-(1 - lr)), lg + cos_t * (-lg) + sin_t * lg, lb + cos_t * (1 - lb) + sin_t * lb],
        ]
    )
    rgb = image.pixels.astype(np.float64)
    rotated = rgb @ matrix.T
    return Image(np.clip(rotated, 0, 255).astype(np.uint8))


def add_gaussian_noise(image: Image, sigma: float, rng: random.Random) -> Image:
    """Add zero-mean Gaussian noise with standard deviation ``sigma``."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    seed = rng.getrandbits(32)
    np_rng = np.random.default_rng(seed)
    noise = np_rng.normal(0.0, sigma, size=image.pixels.shape)
    noisy = image.pixels.astype(np.float64) + noise
    return Image(np.clip(noisy, 0, 255).astype(np.uint8))


def crop_border(image: Image, pixels: int) -> Image:
    """Crop ``pixels`` from every side (no-op if the image is too small)."""
    if pixels <= 0:
        return image.copy()
    if image.width <= 2 * pixels or image.height <= 2 * pixels:
        return image.copy()
    return image.crop(pixels, pixels, image.width - 2 * pixels, image.height - 2 * pixels)


def overlay_text(
    image: Image,
    text: str,
    x: int,
    y: int,
    scale: int = 1,
    fg: tuple[int, int, int] = (60, 60, 60),
    bg: tuple[int, int, int] = (255, 255, 255),
) -> Image:
    """Stamp a line of text onto a copy of the image at (x, y).

    Used by the corpus generator to inject the victim's email address into
    phishing-page screenshots, as the paper observed ("screenshots
    associated with these messages often contain the victim's email
    address and some injected noise").
    """
    out = image.copy()
    stamp = render_text(text, scale=scale, fg=fg, bg=bg, margin=1)
    out.paste(stamp, x, y)
    return out
