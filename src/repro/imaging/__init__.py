"""Raster-image substrate.

The paper's pipeline renders email images, screenshots phishing pages,
runs OCR over inline images, and compares screenshots with perceptual
hashes (pHash, dHash).  This subpackage provides the whole raster stack
used by the reproduction:

- :class:`~repro.imaging.image.Image` — a small RGB raster backed by numpy.
- :mod:`~repro.imaging.font` / :mod:`~repro.imaging.render` — a 5x7 bitmap
  font and a text renderer, so messages can embed *real* pixel data.
- :mod:`~repro.imaging.ocr` — template-matching OCR that recovers text from
  images rendered with the bitmap font (the "combination of Optical
  Character Recognition libraries" of Section IV-B).
- :mod:`~repro.imaging.phash` — DCT perceptual hash and difference hash,
  plus Hamming distance (Section V-A).
- :mod:`~repro.imaging.effects` — image perturbations, including the
  ``hue-rotate(4deg)`` visual-similarity evasion of Section V-C.
"""

from repro.imaging.image import Image
from repro.imaging.render import render_text, render_lines
from repro.imaging.ocr import ocr_image
from repro.imaging.phash import dhash, hamming_distance, phash
from repro.imaging.effects import add_gaussian_noise, crop_border, hue_rotate, overlay_text

__all__ = [
    "Image",
    "render_text",
    "render_lines",
    "ocr_image",
    "phash",
    "dhash",
    "hamming_distance",
    "hue_rotate",
    "add_gaussian_noise",
    "crop_border",
    "overlay_text",
]
