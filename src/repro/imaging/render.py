"""Text-to-raster rendering with the 5x7 bitmap font.

Rendering parameters (scale, tracking, margins) are deliberately simple
and deterministic so the OCR engine in :mod:`repro.imaging.ocr` can invert
the process.  This is how the synthetic corpus embeds URLs in images and
how login-page "screenshots" are composed.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.font import GLYPH_HEIGHT, GLYPH_WIDTH, glyph_for
from repro.imaging.image import BLACK, WHITE, Image

#: Blank columns inserted between consecutive glyphs, in font cells.
TRACKING = 1
#: Blank rows inserted between consecutive lines, in font cells.
LEADING = 2


def _line_matrix(text: str) -> np.ndarray:
    """Compose one line of text into a boolean matrix (True = ink)."""
    if not text:
        return np.zeros((GLYPH_HEIGHT, GLYPH_WIDTH), dtype=bool)
    columns = len(text) * GLYPH_WIDTH + (len(text) - 1) * TRACKING
    matrix = np.zeros((GLYPH_HEIGHT, columns), dtype=bool)
    x = 0
    for char in text:
        matrix[:, x : x + GLYPH_WIDTH] = glyph_for(char)
        x += GLYPH_WIDTH + TRACKING
    return matrix


def render_text(
    text: str,
    scale: int = 2,
    fg: tuple[int, int, int] = BLACK,
    bg: tuple[int, int, int] = WHITE,
    margin: int = 4,
) -> Image:
    """Render a single line of text as an :class:`Image`.

    ``scale`` multiplies the 5x7 cell size; ``margin`` is the border in
    output pixels on every side.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if margin < 0:
        raise ValueError("margin must be >= 0")
    matrix = _line_matrix(text)
    scaled = np.kron(matrix, np.ones((scale, scale), dtype=bool))
    height, width = scaled.shape
    image = Image.new(width + 2 * margin, height + 2 * margin, bg)
    region = image.pixels[margin : margin + height, margin : margin + width]
    region[scaled] = fg
    return image


def render_lines(
    lines: list[str],
    scale: int = 2,
    fg: tuple[int, int, int] = BLACK,
    bg: tuple[int, int, int] = WHITE,
    margin: int = 4,
) -> Image:
    """Render multiple lines of text, top to bottom, left-aligned."""
    if not lines:
        raise ValueError("render_lines requires at least one line")
    matrices = [_line_matrix(line) for line in lines]
    line_height = GLYPH_HEIGHT + LEADING
    total_rows = line_height * len(lines) - LEADING
    total_cols = max(matrix.shape[1] for matrix in matrices)
    combined = np.zeros((total_rows, total_cols), dtype=bool)
    for index, matrix in enumerate(matrices):
        y = index * line_height
        combined[y : y + GLYPH_HEIGHT, : matrix.shape[1]] = matrix
    scaled = np.kron(combined, np.ones((scale, scale), dtype=bool))
    height, width = scaled.shape
    image = Image.new(width + 2 * margin, height + 2 * margin, bg)
    region = image.pixels[margin : margin + height, margin : margin + width]
    region[scaled] = fg
    return image
