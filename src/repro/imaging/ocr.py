"""Template-matching OCR for images rendered with the 5x7 bitmap font.

Section IV-B of the paper scans inline and attached images for URLs
"using a combination of Optical Character Recognition libraries".  This
module plays that role for the raster substrate: it recovers the text of
an image produced by :mod:`repro.imaging.render` (possibly re-scaled or
lightly degraded) without being told the rendering parameters.

The engine works in four steps:

1. binarise the image into ink/background (auto polarity),
2. estimate the cell scale from ink run lengths,
3. segment lines and, per line, search a small set of grid alignments,
4. decode each grid cell by nearest-glyph template matching.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.imaging.font import GLYPH_HEIGHT, GLYPH_WIDTH, GLYPHS
from repro.imaging.image import Image

#: Width of one glyph cell including tracking, in font units.
_CELL_WIDTH = GLYPH_WIDTH + 1

_GLYPH_ITEMS = sorted(GLYPHS.items())
_GLYPH_STACK = np.stack([glyph for _, glyph in _GLYPH_ITEMS])
_GLYPH_CHARS = [char for char, _ in _GLYPH_ITEMS]


@dataclass(frozen=True)
class OcrResult:
    """The decoded text together with a mean per-cell confidence in [0, 1]."""

    text: str
    confidence: float


def _binarize(image: Image) -> np.ndarray:
    """Return a boolean ink mask; ink is the minority class."""
    gray = image.to_grayscale()
    low, high = float(gray.min()), float(gray.max())
    if high - low < 1e-9:  # flat image, no ink
        return np.zeros(gray.shape, dtype=bool)
    mask = gray < (low + high) / 2.0
    if mask.mean() > 0.5:
        mask = ~mask
    return mask


def _run_lengths(mask: np.ndarray) -> Counter:
    """Count lengths of consecutive-True runs along both axes."""
    counts: Counter = Counter()
    for axis_mask in (mask, mask.T):
        padded = np.zeros((axis_mask.shape[0], axis_mask.shape[1] + 2), dtype=bool)
        padded[:, 1:-1] = axis_mask
        diff = np.diff(padded.astype(np.int8), axis=1)
        for row_diff in diff:
            starts = np.flatnonzero(row_diff == 1)
            ends = np.flatnonzero(row_diff == -1)
            for start, end in zip(starts, ends):
                counts[int(end - start)] += 1
    return counts


def _estimate_scale(mask: np.ndarray) -> int:
    """Estimate the pixel size of one font cell from ink run lengths.

    Glyph strokes are one font cell thick, so the most common run length
    is a reliable estimate of the rendering scale.
    """
    counts = _run_lengths(mask)
    if not counts:
        return 1
    scale, _ = counts.most_common(1)[0]
    return max(1, scale)


def _line_bands(mask: np.ndarray, scale: int) -> list[tuple[int, int]]:
    """Split the ink mask into vertical line bands [top, bottom)."""
    row_has_ink = mask.any(axis=1)
    bands: list[tuple[int, int]] = []
    top = None
    for y, has_ink in enumerate(row_has_ink):
        if has_ink and top is None:
            top = y
        elif not has_ink and top is not None:
            bands.append((top, y))
            top = None
    if top is not None:
        bands.append((top, len(row_has_ink)))
    # Glyphs like "=" have internal blank rows: merge adjacent bands that
    # still fit within one 7-cell line.
    merged: list[tuple[int, int]] = []
    for band in bands:
        if merged and band[1] - merged[-1][0] <= GLYPH_HEIGHT * scale:
            merged[-1] = (merged[-1][0], band[1])
        else:
            merged.append(band)
    return merged


def _cell_bits(mask: np.ndarray, x: int, y: int, scale: int) -> np.ndarray:
    """Downsample a glyph cell at (x, y) to a 7x5 boolean matrix."""
    bits = np.zeros((GLYPH_HEIGHT, GLYPH_WIDTH), dtype=bool)
    height, width = mask.shape
    for row in range(GLYPH_HEIGHT):
        y0, y1 = y + row * scale, y + (row + 1) * scale
        if y1 <= 0 or y0 >= height:
            continue
        for col in range(GLYPH_WIDTH):
            x0, x1 = x + col * scale, x + (col + 1) * scale
            if x1 <= 0 or x0 >= width:
                continue
            block = mask[max(y0, 0) : y1, max(x0, 0) : x1]
            if block.size:
                bits[row, col] = block.mean() >= 0.5
    return bits


def _match_glyph(bits: np.ndarray) -> tuple[str, float]:
    """Return the best-matching character and its similarity in [0, 1]."""
    distances = (np.logical_xor(_GLYPH_STACK, bits)).reshape(len(_GLYPH_CHARS), -1).sum(axis=1)
    best = int(distances.argmin())
    similarity = 1.0 - distances[best] / (GLYPH_WIDTH * GLYPH_HEIGHT)
    return _GLYPH_CHARS[best], float(similarity)


def _decode_line(
    mask: np.ndarray, band: tuple[int, int], scale: int
) -> tuple[str, float]:
    """Decode one line band, searching grid alignments for the best fit."""
    top, bottom = band
    line_mask = mask[top:bottom]
    col_has_ink = line_mask.any(axis=0)
    inked = np.flatnonzero(col_has_ink)
    if inked.size == 0:
        return "", 1.0
    x_first, x_last = int(inked[0]), int(inked[-1])
    band_height = bottom - top

    best_text = ""
    best_key: tuple[float, int, int] = (-1.0, -1, -1)
    # A glyph may have blank leading columns (e.g. "!") and blank top rows
    # (e.g. "_"), so try small offsets of the cell grid in both axes.  Ties
    # on score prefer (a) alignments that decode more ink characters (an
    # all-blank reading of "..." also scores perfectly) and (b) deeper row
    # offsets (a lone bottom-row stroke is "_", not a mid-row "-").
    for row_offset in range(GLYPH_HEIGHT):
        y_origin = top - row_offset * scale
        if band_height > GLYPH_HEIGHT * scale and row_offset > 0:
            break
        if y_origin + GLYPH_HEIGHT * scale < bottom:
            continue
        for col_offset in range(GLYPH_WIDTH):
            x_origin = x_first - col_offset * scale
            n_cells = int(np.ceil((x_last + 1 - x_origin) / (_CELL_WIDTH * scale)))
            if n_cells <= 0:
                continue
            chars: list[str] = []
            scores: list[float] = []
            for index in range(n_cells):
                x = x_origin + index * _CELL_WIDTH * scale
                bits = _cell_bits(mask, x, y_origin, scale)
                if not bits.any():
                    chars.append(" ")
                    scores.append(1.0)
                    continue
                char, similarity = _match_glyph(bits)
                chars.append(char)
                scores.append(similarity)
            mean_score = float(np.mean(scores)) if scores else 0.0
            n_ink_chars = sum(1 for char in chars if char != " ")
            key = (mean_score, n_ink_chars, -row_offset)
            if key > best_key:
                best_key = key
                best_text = "".join(chars).rstrip()
    return best_text, best_key[0]


def _decode_at_scale(mask: np.ndarray, scale: int) -> tuple[str, float, int]:
    """Decode the whole mask at one candidate scale."""
    from repro._budget import OCR_BAND_UNITS, current_budget

    budget = current_budget()
    bands = _line_bands(mask, scale)
    lines: list[str] = []
    scores: list[float] = []
    for band in bands:
        if budget is not None:
            # One line band costs a full alignment sweep of glyph
            # matches; charging per band bounds adversarially busy
            # images without touching the per-cell inner loops.
            budget.charge(OCR_BAND_UNITS, "ocr-tiles")
        text, score = _decode_line(mask, band, scale)
        lines.append(text)
        scores.append(score)
    joined = "\n".join(lines)
    ink_chars = sum(1 for char in joined if char not in " \n")
    return joined, float(np.mean(scores)) if scores else 0.0, ink_chars


def ocr_image(image: Image) -> OcrResult:
    """Recover the text content of a bitmap-font rendered image.

    Returns an :class:`OcrResult`; the text is canonically uppercase
    (the font folds case) and lines are joined with ``"\\n"``.

    The run-length scale estimate can be a multiple of the true cell
    size when the image is dominated by blocky glyphs (a lone "." at
    scale 2 is pixel-identical to a one-cell feature at scale 4), so the
    estimate's divisors are also tried and the best-scoring decode wins.
    Note that images consisting *only* of baseline-free strokes ("_"
    alone) are inherently ambiguous without a reference line.
    """
    mask = _binarize(image)
    if not mask.any():
        return OcrResult(text="", confidence=1.0)
    estimate = _estimate_scale(mask)
    # Smaller scales first: on equal decode quality the finer grid wins
    # (a ":" whose two dots fooled the run-length estimate into 2x).
    candidates = sorted(
        divisor for divisor in range(1, estimate + 1) if estimate % divisor == 0
    )
    best_text, best_key = "", (-1.0, -1)
    for scale in candidates:
        text, score, ink_chars = _decode_at_scale(mask, scale)
        key = (score, ink_chars)
        if key > best_key:
            best_key = key
            best_text = text
    return OcrResult(text=best_text, confidence=best_key[0])
