"""Perceptual image hashes: pHash (DCT-based) and dHash (gradient-based).

Section V-A: "we use fuzzy hashes: pHash (perceptual hash) and dHash
(differential hash). [...] The (dis)similarity is measured by the hamming
distance between the screenshot's hash and the hash of the real legitimate
pages."  Both hashes operate on grayscale data, which is why the
``hue-rotate(4deg)`` evasion of Section V-C does not defeat them.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn

from repro.imaging.image import Image

#: Number of bits in either hash.
HASH_BITS = 64


def _resize_gray(image: Image, width: int, height: int) -> np.ndarray:
    """Grayscale + block-mean resize to (height, width).

    Block averaging (rather than nearest-neighbour) keeps the hash stable
    under small noise, which is the whole point of a fuzzy hash.
    """
    gray = image.to_grayscale()
    src_h, src_w = gray.shape
    y_edges = np.linspace(0, src_h, height + 1).astype(int)
    x_edges = np.linspace(0, src_w, width + 1).astype(int)
    out = np.empty((height, width), dtype=np.float64)
    for row in range(height):
        y0, y1 = y_edges[row], max(y_edges[row + 1], y_edges[row] + 1)
        for col in range(width):
            x0, x1 = x_edges[col], max(x_edges[col + 1], x_edges[col] + 1)
            out[row, col] = gray[y0:y1, x0:x1].mean()
    return out


def phash(image: Image) -> int:
    """64-bit DCT perceptual hash.

    The image is reduced to 32x32 grayscale, transformed with a 2-D DCT,
    and the top-left 8x8 low-frequency block (excluding the DC term for
    the median) is thresholded at its median.
    """
    small = _resize_gray(image, 32, 32)
    spectrum = dctn(small, norm="ortho")
    block = spectrum[:8, :8].copy()
    median = float(np.median(block.flatten()[1:]))  # exclude DC coefficient
    bits = (block.flatten() > median).astype(np.uint8)
    return _bits_to_int(bits)


def dhash(image: Image) -> int:
    """64-bit difference hash: horizontal gradient signs on a 9x8 thumbnail.

    A one-gray-level dead zone keeps bits stable in flat regions, where
    the raw sign of a near-zero difference would flip under noise or the
    slight luminance drift of a hue rotation.
    """
    small = _resize_gray(image, 9, 8)
    bits = ((small[:, 1:] - small[:, :-1]) > 1.0).astype(np.uint8).flatten()
    return _bits_to_int(bits)


def _bits_to_int(bits: np.ndarray) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def hamming_distance(hash_a: int, hash_b: int) -> int:
    """Number of differing bits between two hashes."""
    return int(bin(hash_a ^ hash_b).count("1"))
