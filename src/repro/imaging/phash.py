"""Perceptual image hashes: pHash (DCT-based) and dHash (gradient-based).

Section V-A: "we use fuzzy hashes: pHash (perceptual hash) and dHash
(differential hash). [...] The (dis)similarity is measured by the hamming
distance between the screenshot's hash and the hash of the real legitimate
pages."  Both hashes operate on grayscale data, which is why the
``hue-rotate(4deg)`` evasion of Section V-C does not defeat them.

The thumbnail reduction is fully vectorized: block sums are computed
with ``np.add.reduceat`` over *integer* per-mille BT.601 luminance
(``299·R + 587·G + 114·B``), which is exact in int64 and therefore
independent of summation order — the vectorized fast path is
bit-identical to a naive per-block double loop by construction (see
``tests/test_imaging_phash.py``), not merely close in floating point.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn

from repro.imaging.image import Image

#: Number of bits in either hash.
HASH_BITS = 64

#: Integer per-mille ITU-R BT.601 luminance weights (R, G, B).
_LUMA_WEIGHTS = np.array([299, 587, 114], dtype=np.int64)


def _block_edges(src: int, dst: int) -> tuple[np.ndarray, np.ndarray]:
    """Start indices and pixel counts of ``dst`` blocks covering ``src``.

    Blocks are the half-open `linspace` bins; degenerate bins (possible
    only when upscaling, ``src < dst``) are widened to a single pixel so
    every block mean is defined.
    """
    edges = np.linspace(0, src, dst + 1).astype(int)
    starts = edges[:-1]
    ends = np.maximum(edges[1:], starts + 1)
    return starts, ends - starts


def _resize_gray(image: Image, width: int, height: int) -> np.ndarray:
    """Grayscale + block-mean resize to (height, width).

    Block averaging (rather than nearest-neighbour) keeps the hash stable
    under small noise, which is the whole point of a fuzzy hash.
    """
    luma = image.pixels.astype(np.int64) @ _LUMA_WEIGHTS  # exact, (H, W)
    y_starts, y_counts = _block_edges(luma.shape[0], height)
    x_starts, x_counts = _block_edges(luma.shape[1], width)
    # reduceat sums [starts[i], starts[i+1]); a non-increasing pair —
    # a degenerate upscaling bin — yields the single row/col at starts[i],
    # which matches the one-pixel widening of ``_block_edges``.
    sums = np.add.reduceat(np.add.reduceat(luma, y_starts, axis=0), x_starts, axis=1)
    counts = np.outer(y_counts, x_counts)
    return sums / (counts * 1000.0)


def phash(image: Image) -> int:
    """64-bit DCT perceptual hash.

    The image is reduced to 32x32 grayscale, transformed with a 2-D DCT,
    and the top-left 8x8 low-frequency block (excluding the DC term for
    the median) is thresholded at its median.
    """
    small = _resize_gray(image, 32, 32)
    spectrum = dctn(small, norm="ortho")
    block = spectrum[:8, :8].copy()
    median = float(np.median(block.flatten()[1:]))  # exclude DC coefficient
    bits = (block.flatten() > median).astype(np.uint8)
    return _bits_to_int(bits)


def dhash(image: Image) -> int:
    """64-bit difference hash: horizontal gradient signs on a 9x8 thumbnail.

    A one-gray-level dead zone keeps bits stable in flat regions, where
    the raw sign of a near-zero difference would flip under noise or the
    slight luminance drift of a hue rotation.
    """
    small = _resize_gray(image, 9, 8)
    bits = ((small[:, 1:] - small[:, :-1]) > 1.0).astype(np.uint8).flatten()
    return _bits_to_int(bits)


def _bits_to_int(bits: np.ndarray) -> int:
    packed = np.packbits(bits.astype(np.uint8))  # MSB-first, like << folding
    return int.from_bytes(packed.tobytes(), "big")


def hamming_distance(hash_a: int, hash_b: int) -> int:
    """Number of differing bits between two hashes."""
    return int(bin(hash_a ^ hash_b).count("1"))
