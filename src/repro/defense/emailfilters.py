"""Modeled commercial email-security filters.

The corpus consists, by construction, of messages that evaded real
gateways; these models make the *mechanisms* of that evasion
inspectable.  Each filter configuration differs along the axes the
paper's findings implicate:

- URL extraction: strict vs lenient QR payload parsing (the faulty-QR
  bug), whether images/PDFs are scanned at all, whether base64-encoded
  text parts are decoded;
- reputation: URL denylists (useless against low-volume campaigns) and
  domain-age flagging (defeated by registering weeks in advance);
- verdicts come with machine-readable reasons, so benches can attribute
  every catch and every miss to a specific mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mail.message import EmailMessage
from repro.mail.parser import EmailParser
from repro.web.network import Network
from repro.web.urls import UrlError, parse_url, registered_domain


@dataclass(frozen=True)
class FilterVerdict:
    malicious: bool
    reasons: tuple[str, ...] = ()
    extracted_urls: tuple[str, ...] = ()


@dataclass
class ModeledEmailFilter:
    """One gateway configuration."""

    name: str
    #: Mobile-style QR payload carving (False = the exploited strict bug).
    lenient_qr: bool = False
    #: Whether base64 content-transfer-encoded text is decoded.
    decode_base64: bool = True
    #: Whether inline/attached images and PDFs are scanned at all.
    scan_images: bool = True
    #: Domains flagged regardless of anything else.
    denylist: frozenset[str] = frozenset()
    #: Flag landing domains younger than this at delivery (0 = disabled).
    max_domain_age_flag_days: float = 0.0

    def _parser(self) -> EmailParser:
        return EmailParser(lenient_qr=self.lenient_qr, decode_base64_text=self.decode_base64)

    def scan(self, message: EmailMessage, network: Network | None = None) -> FilterVerdict:
        """Classify one message; reasons explain any malicious verdict."""
        if self.scan_images:
            report = self._parser().parse(message)
        else:
            stripped = EmailMessage(
                sender=message.sender,
                recipient=message.recipient,
                subject=message.subject,
                delivered_at=message.delivered_at,
                parts=[
                    part
                    for part in message.parts
                    if not part.content_type.startswith("image/")
                    and part.content_type != "application/pdf"
                ],
            )
            report = self._parser().parse(stripped)

        urls = tuple(report.unique_urls())
        reasons: list[str] = []
        for url in urls:
            try:
                host = parse_url(url).host
            except UrlError:
                continue
            registrable = registered_domain(host)
            if host in self.denylist or registrable in self.denylist:
                reasons.append(f"denylist:{registrable}")
            if self.max_domain_age_flag_days > 0 and network is not None:
                whois = network.whois.lookup(registrable)
                if whois is not None:
                    age_days = whois.age_at(message.delivered_at) / 24.0
                    if 0 <= age_days < self.max_domain_age_flag_days:
                        reasons.append(f"new-domain:{registrable}:{age_days:.1f}d")
        return FilterVerdict(malicious=bool(reasons), reasons=tuple(reasons), extracted_urls=urls)

    def catch_rate(self, messages: list[EmailMessage], network: Network | None = None) -> float:
        if not messages:
            return 0.0
        caught = sum(1 for message in messages if self.scan(message, network).malicious)
        return caught / len(messages)


#: Reference gateway configurations used by the benches.  The first two
#: mirror the products that failed the faulty-QR disclosure; the third
#: extracts QR URLs leniently; the last two probe the reputation axes.
REFERENCE_FILTERS: tuple[ModeledEmailFilter, ...] = (
    ModeledEmailFilter(name="SecureGateway-A", lenient_qr=False, max_domain_age_flag_days=2.0),
    ModeledEmailFilter(name="MailShield-B", lenient_qr=False, decode_base64=False,
                       max_domain_age_flag_days=2.0),
    ModeledEmailFilter(name="PhishBlock-C", lenient_qr=True, max_domain_age_flag_days=2.0),
    ModeledEmailFilter(name="AgeZealot (age<90d flags)", lenient_qr=True,
                       max_domain_age_flag_days=90.0),
    ModeledEmailFilter(name="TextOnly (no image scanning)", lenient_qr=True, scan_images=False,
                       max_domain_age_flag_days=2.0),
)
