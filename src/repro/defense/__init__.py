"""Defender-side systems built on the paper's key findings.

The paper is a measurement study, but its Key Findings boxes prescribe
defenses.  This subpackage implements the two actionable ones against
the same substrates the attacks run on:

- :mod:`~repro.defense.referral` — "by identifying referrals in requests
  made for [logo/background] resources within their own systems,
  organizations can track, at early stages, pages impersonating their
  login sites" (Section V-A).
- :mod:`~repro.defense.emailfilters` — models of commercial email
  security filters (URL extraction strictness, base64 handling, QR/image
  scanning, domain-age reputation), quantifying exactly which evasions
  let the corpus through each configuration.
"""

from repro.defense.referral import ReferralAlert, ReferralMonitor
from repro.defense.emailfilters import FilterVerdict, ModeledEmailFilter, REFERENCE_FILTERS

__all__ = [
    "ReferralMonitor",
    "ReferralAlert",
    "ModeledEmailFilter",
    "FilterVerdict",
    "REFERENCE_FILTERS",
]
