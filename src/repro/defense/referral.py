"""Referral monitoring: catching impersonation from the brand's own logs.

Section V-A: 29.8 % of spear-phishing pages download "the logo and the
background image from the third-party domains belonging to the
organization being impersonated.  This is a crucial observation because
by identifying referrals in requests made for the aforementioned web
resources within their own systems, organizations can track, at early
stages, pages impersonating their login sites."

The monitor scans a portal's access log for asset requests whose
``Referer`` points outside the organisation — each foreign referrer is
a live phishing page, observable the moment the *first victim* (or the
crawler) loads it, typically before any user report is triaged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.site import Website
from repro.web.urls import UrlError, parse_url, registered_domain

#: Paths treated as brand assets worth monitoring.
DEFAULT_ASSET_PREFIXES = ("/assets/",)


@dataclass(frozen=True)
class ReferralAlert:
    """One suspected impersonation site."""

    phishing_url: str
    phishing_domain: str
    asset_path: str
    first_seen: float
    hits: int


class ReferralMonitor:
    """Scans a brand portal's access log for foreign-referrer asset loads."""

    def __init__(
        self,
        portal: Website,
        own_domains: tuple[str, ...] = (),
        asset_prefixes: tuple[str, ...] = DEFAULT_ASSET_PREFIXES,
    ):
        self.portal = portal
        self.own_domains = tuple(d.lower() for d in own_domains) or (
            registered_domain(portal.domain),
        )
        self.asset_prefixes = asset_prefixes

    def _is_own(self, host: str) -> bool:
        host = host.lower()
        return any(
            host == own or host.endswith("." + own) or registered_domain(host) == own
            for own in self.own_domains
        )

    def scan(self) -> list[ReferralAlert]:
        """All foreign referrers observed so far, earliest first."""
        sightings: dict[tuple[str, str], list[float]] = {}
        urls: dict[tuple[str, str], str] = {}
        for entry in self.portal.access_log:
            request = entry.request
            if not any(request.url.path.startswith(prefix) for prefix in self.asset_prefixes):
                continue
            referrer = request.headers.get("Referer")
            if not referrer:
                continue
            try:
                referrer_url = parse_url(referrer)
            except UrlError:
                continue
            if self._is_own(referrer_url.host):
                continue
            key = (referrer_url.host, request.url.path)
            sightings.setdefault(key, []).append(request.timestamp)
            urls.setdefault(key, referrer_url.raw)
        alerts = [
            ReferralAlert(
                phishing_url=urls[key],
                phishing_domain=key[0],
                asset_path=key[1],
                first_seen=min(timestamps),
                hits=len(timestamps),
            )
            for key, timestamps in sightings.items()
        ]
        alerts.sort(key=lambda alert: alert.first_seen)
        return alerts

    def alert_domains(self) -> set[str]:
        return {alert.phishing_domain for alert in self.scan()}
