"""AST node definitions for the PhishScript subset.

Plain dataclasses; the parser builds them and the interpreter walks
them.  Statement nodes and expression nodes share a base class only for
typing convenience.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class for all AST nodes."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Literal(Node):
    value: object


@dataclass
class TemplateLiteral(Node):
    #: Alternating ('str', text) literal parts and parsed expression nodes.
    parts: list


@dataclass
class Identifier(Node):
    name: str


@dataclass
class ThisExpr(Node):
    pass


@dataclass
class ArrayLiteral(Node):
    elements: list


@dataclass
class ObjectLiteral(Node):
    #: List of (key, value-expression) pairs; keys are plain strings.
    entries: list


@dataclass
class FunctionExpr(Node):
    name: str | None
    params: list
    body: list
    is_arrow: bool = False


@dataclass
class Member(Node):
    obj: Node
    prop: Node  # Identifier for .name, any expression for [expr]
    computed: bool


@dataclass
class Call(Node):
    callee: Node
    args: list


@dataclass
class New(Node):
    callee: Node
    args: list


@dataclass
class Unary(Node):
    op: str
    operand: Node


@dataclass
class Update(Node):
    op: str  # '++' or '--'
    operand: Node
    prefix: bool


@dataclass
class Binary(Node):
    op: str
    left: Node
    right: Node


@dataclass
class Logical(Node):
    op: str  # '&&', '||', '??'
    left: Node
    right: Node


@dataclass
class Conditional(Node):
    test: Node
    consequent: Node
    alternate: Node


@dataclass
class Assign(Node):
    op: str  # '=', '+=', ...
    target: Node  # Identifier or Member
    value: Node


@dataclass
class Sequence(Node):
    expressions: list


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Program(Node):
    body: list


@dataclass
class VarDecl(Node):
    kind: str  # 'var', 'let', 'const'
    declarations: list  # list of (name, initialiser-or-None)


@dataclass
class ExprStatement(Node):
    expression: Node


@dataclass
class Block(Node):
    body: list


@dataclass
class If(Node):
    test: Node
    consequent: Node
    alternate: Node | None


@dataclass
class While(Node):
    test: Node
    body: Node


@dataclass
class DoWhile(Node):
    test: Node
    body: Node


@dataclass
class For(Node):
    init: Node | None
    test: Node | None
    update: Node | None
    body: Node


@dataclass
class ForIn(Node):
    kind: str | None  # declaration kind or None for bare identifier
    name: str
    of: bool  # True for for-of, False for for-in
    iterable: Node
    body: Node


@dataclass
class Return(Node):
    value: Node | None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class FunctionDecl(Node):
    name: str
    params: list
    body: list


@dataclass
class Throw(Node):
    value: Node


@dataclass
class Try(Node):
    block: Node
    param: str | None
    handler: Node | None
    finalizer: Node | None


@dataclass
class Debugger(Node):
    pass


@dataclass
class Empty(Node):
    pass


@dataclass
class Switch(Node):
    discriminant: Node
    #: List of (test-expression-or-None, [statements]); None = default.
    cases: list = field(default_factory=list)
