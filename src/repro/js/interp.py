"""Tree-walking evaluator for the PhishScript JavaScript subset.

The interpreter is deliberately small but semantically honest where the
phishing kits in the paper rely on behaviour: closures, ``this`` binding
on method calls, loose/strict equality, string coercion, a functioning
``eval`` (base64-``eval`` droppers), redefinable globals (console-method
hijacking), ``debugger`` hooks (anti-debugging timers), and timers that
the host browser schedules.

A step budget bounds run time so hostile scripts cannot hang the
analysis pipeline — the crawler treats a budget overrun as an evasion
signal rather than crashing.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from repro.js import nodes as ast
from repro.js.parser import parse


class JSError(Exception):
    """A JavaScript-level error (TypeError, ReferenceError, thrown value)."""

    def __init__(self, message: str, value: object = None):
        super().__init__(message)
        self.value = value if value is not None else message


class JSTimeoutError(JSError):
    """The script exceeded its step budget."""


class _Undefined:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()


class JSObject:
    """A plain JavaScript object: ordered string-keyed properties."""

    def __init__(self, properties: dict | None = None):
        self.properties: dict[str, object] = dict(properties or {})

    def get(self, name: str) -> object:
        return self.properties.get(name, UNDEFINED)

    def set(self, name: str, value: object) -> None:
        self.properties[name] = value

    def has(self, name: str) -> bool:
        return name in self.properties

    def keys(self) -> list[str]:
        return list(self.properties)

    def __repr__(self) -> str:
        return f"JSObject({self.properties!r})"


class JSArray:
    """A JavaScript array backed by a Python list."""

    def __init__(self, elements: list | None = None):
        self.elements: list = list(elements or [])

    def __repr__(self) -> str:
        return f"JSArray({self.elements!r})"


class JSFunction:
    """A user-defined function with its closure environment."""

    def __init__(
        self,
        name: str | None,
        params: list[str],
        body: list,
        closure: "Environment",
        is_arrow: bool = False,
        bound_this: object = None,
    ):
        self.name = name or ""
        self.params = params
        self.body = body
        self.closure = closure
        self.is_arrow = is_arrow
        self.bound_this = bound_this

    def __repr__(self) -> str:
        return f"JSFunction({self.name or '<anonymous>'})"


class NativeFunction:
    """A host function callable from scripts.

    The wrapped callable receives ``(interp, this, args)`` and returns a
    JS value.
    """

    def __init__(self, fn: Callable, name: str = ""):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "")

    def __repr__(self) -> str:
        return f"NativeFunction({self.name})"


class Environment:
    """A lexical scope chain."""

    __slots__ = ("variables", "parent")

    def __init__(self, parent: "Environment | None" = None):
        self.variables: dict[str, object] = {}
        self.parent = parent

    def lookup(self, name: str) -> object:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.variables:
                return scope.variables[name]
            scope = scope.parent
        raise JSError(f"ReferenceError: {name} is not defined")

    def has(self, name: str) -> bool:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.variables:
                return True
            scope = scope.parent
        return False

    def assign(self, name: str, value: object) -> None:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.variables:
                scope.variables[name] = value
                return
            scope = scope.parent
        # Implicit global, like sloppy-mode JavaScript.
        root: Environment = self
        while root.parent is not None:
            root = root.parent
        root.variables[name] = value

    def declare(self, name: str, value: object) -> None:
        self.variables[name] = value


# Control-flow signals.
class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: object):
        self.value = value


class _Throw(Exception):
    def __init__(self, value: object):
        self.value = value


class Timer:
    """A pending setTimeout/setInterval registration."""

    _next_id = 1

    def __init__(self, callback: object, delay_ms: float, repeating: bool):
        self.callback = callback
        self.delay_ms = delay_ms
        self.repeating = repeating
        self.cancelled = False
        self.id = Timer._next_id
        Timer._next_id += 1


class Interpreter:
    """Evaluates PhishScript programs against a (host-provided) global scope."""

    def __init__(
        self,
        step_limit: int = 2_000_000,
        rng: random.Random | None = None,
        clock_ms: Callable[[], float] | None = None,
    ):
        self.globals = Environment()
        self.step_limit = step_limit
        self.steps = 0
        # Per-message cooperative budget, captured once so the hot tick
        # path pays a single attribute check when no budget is active
        # (see repro._budget; BudgetExceeded is deliberately NOT a
        # JSError, so it escapes the page session to the stage plan).
        from repro._budget import current_budget

        self._budget = current_budget()
        self.rng = rng or random.Random(0)
        self._clock_value = 0.0
        self.clock_ms = clock_ms or self._default_clock
        self.timers: list[Timer] = []
        #: Called whenever a ``debugger`` statement executes.
        self.on_debugger: Callable[[], None] | None = None
        self.globals.declare("undefined", UNDEFINED)
        self.globals.declare("globalThis", JSObject())
        from repro.js.stdlib import install_stdlib

        install_stdlib(self)

    def _default_clock(self) -> float:
        """A fake monotonic clock advancing 1 ms per 1000 steps."""
        return self._clock_value + self.steps / 1000.0

    def advance_clock(self, ms: float) -> None:
        self._clock_value += ms

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, source: str) -> object:
        """Parse and execute a program; returns the last expression value."""
        program = parse(source)
        return self.run_program(program, self.globals)

    def run_program(self, program: ast.Program, env: Environment) -> object:
        self._hoist(program.body, env)
        result: object = UNDEFINED
        try:
            for statement in program.body:
                value = self.execute(statement, env)
                if isinstance(statement, ast.ExprStatement):
                    result = value
        except _Throw as thrown:
            # An uncaught script-level throw surfaces as a JS error, like
            # a browser reporting "Uncaught ..." — never as an internal
            # control-flow exception leaking into host code.
            raise JSError(f"Uncaught {to_js_string(thrown.value)}", thrown.value) from None
        except _Return:
            raise JSError("SyntaxError: return outside of a function") from None
        except (_Break, _Continue):
            raise JSError("SyntaxError: break/continue outside of a loop") from None
        return result

    def call_function(self, fn: object, this: object, args: list) -> object:
        """Invoke a JS or native function from host code."""
        try:
            return self._call(fn, this, args)
        except _Throw as thrown:
            raise JSError(f"Uncaught {to_js_string(thrown.value)}", thrown.value) from None

    def run_due_timers(self, budget: int = 64) -> int:
        """Execute pending timers (host drives this).  Returns runs made."""
        runs = 0
        for timer in list(self.timers):
            if timer.cancelled:
                continue
            if runs >= budget:
                break
            try:
                self.call_function(timer.callback, UNDEFINED, [])
            except JSError:
                pass  # a broken timer callback must not kill the page
            runs += 1
            if not timer.repeating:
                timer.cancelled = True
        self.timers = [t for t in self.timers if not t.cancelled]
        return runs

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise JSTimeoutError("script exceeded its step budget")
        if self._budget is not None and self.steps % 1024 == 0:
            self._budget.charge(1024, "js-steps")

    def _hoist(self, body: list, env: Environment) -> None:
        """Hoist function declarations and ``var`` names."""
        for statement in body:
            if isinstance(statement, ast.FunctionDecl):
                env.declare(
                    statement.name,
                    JSFunction(statement.name, statement.params, statement.body, env),
                )
            elif isinstance(statement, ast.VarDecl) and statement.kind == "var":
                for name, _ in statement.declarations:
                    if not env.has(name):
                        env.declare(name, UNDEFINED)

    def execute(self, node: ast.Node, env: Environment) -> object:
        self._tick()
        method = getattr(self, f"_exec_{type(node).__name__}", None)
        if method is None:
            raise JSError(f"cannot execute node {type(node).__name__}")
        return method(node, env)

    def _exec_Empty(self, node: ast.Empty, env: Environment) -> object:
        return UNDEFINED

    def _exec_ExprStatement(self, node: ast.ExprStatement, env: Environment) -> object:
        return self.evaluate(node.expression, env)

    def _exec_VarDecl(self, node: ast.VarDecl, env: Environment) -> object:
        for name, initializer in node.declarations:
            value = self.evaluate(initializer, env) if initializer is not None else UNDEFINED
            env.declare(name, value)
        return UNDEFINED

    def _exec_FunctionDecl(self, node: ast.FunctionDecl, env: Environment) -> object:
        env.declare(node.name, JSFunction(node.name, node.params, node.body, env))
        return UNDEFINED

    def _exec_Block(self, node: ast.Block, env: Environment) -> object:
        scope = Environment(env)
        self._hoist(node.body, scope)
        for statement in node.body:
            self.execute(statement, scope)
        return UNDEFINED

    def _exec_If(self, node: ast.If, env: Environment) -> object:
        if truthy(self.evaluate(node.test, env)):
            self.execute(node.consequent, env)
        elif node.alternate is not None:
            self.execute(node.alternate, env)
        return UNDEFINED

    def _exec_While(self, node: ast.While, env: Environment) -> object:
        while truthy(self.evaluate(node.test, env)):
            self._tick()
            try:
                self.execute(node.body, env)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_DoWhile(self, node: ast.DoWhile, env: Environment) -> object:
        while True:
            self._tick()
            try:
                self.execute(node.body, env)
            except _Break:
                break
            except _Continue:
                pass
            if not truthy(self.evaluate(node.test, env)):
                break
        return UNDEFINED

    def _exec_For(self, node: ast.For, env: Environment) -> object:
        scope = Environment(env)
        if node.init is not None:
            self.execute(node.init, scope)
        while node.test is None or truthy(self.evaluate(node.test, scope)):
            self._tick()
            try:
                self.execute(node.body, scope)
            except _Break:
                break
            except _Continue:
                pass
            if node.update is not None:
                self.evaluate(node.update, scope)
        return UNDEFINED

    def _exec_ForIn(self, node: ast.ForIn, env: Environment) -> object:
        iterable = self.evaluate(node.iterable, env)
        if node.of:
            if isinstance(iterable, JSArray):
                items = list(iterable.elements)
            elif isinstance(iterable, str):
                items = list(iterable)
            else:
                raise JSError("TypeError: value is not iterable")
        else:
            if isinstance(iterable, JSObject):
                items = list(iterable.keys())
            elif isinstance(iterable, JSArray):
                items = [str(i) for i in range(len(iterable.elements))]
            elif isinstance(iterable, str):
                items = [str(i) for i in range(len(iterable))]
            else:
                items = []
        scope = Environment(env)
        scope.declare(node.name, UNDEFINED)
        for item in items:
            self._tick()
            scope.variables[node.name] = item
            try:
                self.execute(node.body, scope)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_Return(self, node: ast.Return, env: Environment) -> object:
        value = self.evaluate(node.value, env) if node.value is not None else UNDEFINED
        raise _Return(value)

    def _exec_Break(self, node: ast.Break, env: Environment) -> object:
        raise _Break()

    def _exec_Continue(self, node: ast.Continue, env: Environment) -> object:
        raise _Continue()

    def _exec_Throw(self, node: ast.Throw, env: Environment) -> object:
        raise _Throw(self.evaluate(node.value, env))

    def _exec_Try(self, node: ast.Try, env: Environment) -> object:
        try:
            self.execute(node.block, env)
        except _Throw as thrown:
            if node.handler is not None:
                scope = Environment(env)
                if node.param:
                    scope.declare(node.param, thrown.value)
                self.execute(node.handler, scope)
            elif node.finalizer is None:
                raise
        except JSError as error:
            if node.handler is not None:
                scope = Environment(env)
                if node.param:
                    scope.declare(node.param, str(error))
                self.execute(node.handler, scope)
            elif node.finalizer is None:
                raise
        finally:
            if node.finalizer is not None:
                self.execute(node.finalizer, env)
        return UNDEFINED

    def _exec_Debugger(self, node: ast.Debugger, env: Environment) -> object:
        if self.on_debugger is not None:
            self.on_debugger()
        return UNDEFINED

    def _exec_Switch(self, node: ast.Switch, env: Environment) -> object:
        value = self.evaluate(node.discriminant, env)
        matched = False
        try:
            for test, statements in node.cases:
                if not matched:
                    if test is None:
                        continue
                    if not strict_equals(value, self.evaluate(test, env)):
                        continue
                    matched = True
                for statement in statements:
                    self.execute(statement, env)
            if not matched:
                running = False
                for test, statements in node.cases:
                    if test is None:
                        running = True
                    if running:
                        for statement in statements:
                            self.execute(statement, env)
        except _Break:
            pass
        return UNDEFINED

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def evaluate(self, node: ast.Node, env: Environment) -> object:
        self._tick()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise JSError(f"cannot evaluate node {type(node).__name__}")
        return method(node, env)

    def _eval_Literal(self, node: ast.Literal, env: Environment) -> object:
        return node.value

    def _eval_TemplateLiteral(self, node: ast.TemplateLiteral, env: Environment) -> object:
        parts = []
        for kind, payload in node.parts:
            if kind == "str":
                parts.append(payload)
            else:
                parts.append(to_js_string(self.evaluate(payload, env)))
        return "".join(parts)

    def _eval_Identifier(self, node: ast.Identifier, env: Environment) -> object:
        return env.lookup(node.name)

    def _eval_ThisExpr(self, node: ast.ThisExpr, env: Environment) -> object:
        if env.has("this"):
            return env.lookup("this")
        return UNDEFINED

    def _eval_ArrayLiteral(self, node: ast.ArrayLiteral, env: Environment) -> object:
        return JSArray([self.evaluate(element, env) for element in node.elements])

    def _eval_ObjectLiteral(self, node: ast.ObjectLiteral, env: Environment) -> object:
        obj = JSObject()
        for key, value in node.entries:
            obj.set(key, self.evaluate(value, env))
        return obj

    def _eval_FunctionExpr(self, node: ast.FunctionExpr, env: Environment) -> object:
        bound_this = None
        if node.is_arrow and env.has("this"):
            bound_this = env.lookup("this")
        fn = JSFunction(node.name, node.params, node.body, env, node.is_arrow, bound_this)
        if node.name:
            # Named function expressions can refer to themselves.
            scope = Environment(env)
            scope.declare(node.name, fn)
            fn.closure = scope
        return fn

    def _eval_Member(self, node: ast.Member, env: Environment) -> object:
        obj = self.evaluate(node.obj, env)
        name = self._member_name(node, env)
        return self.get_property(obj, name)

    def _member_name(self, node: ast.Member, env: Environment) -> str:
        if node.computed:
            return to_property_key(self.evaluate(node.prop, env))
        assert isinstance(node.prop, ast.Identifier)
        return node.prop.name

    def _eval_Call(self, node: ast.Call, env: Environment) -> object:
        if isinstance(node.callee, ast.Member):
            this = self.evaluate(node.callee.obj, env)
            name = self._member_name(node.callee, env)
            fn = self.get_property(this, name)
            if fn is UNDEFINED:
                raise JSError(f"TypeError: {name} is not a function")
        else:
            this = UNDEFINED
            fn = self.evaluate(node.callee, env)
            # eval() needs the caller's scope; handle it as a special form.
            if isinstance(node.callee, ast.Identifier) and node.callee.name == "eval":
                source = self.evaluate(node.args[0], env) if node.args else ""
                if not isinstance(source, str):
                    return source
                return self.run_program(parse(source), env)
        args = [self.evaluate(arg, env) for arg in node.args]
        return self._call(fn, this, args)

    def _eval_New(self, node: ast.New, env: Environment) -> object:
        constructor = self.evaluate(node.callee, env)
        args = [self.evaluate(arg, env) for arg in node.args]
        if isinstance(constructor, NativeFunction):
            return constructor.fn(self, UNDEFINED, args)
        if isinstance(constructor, JSFunction):
            instance = JSObject()
            result = self._call(constructor, instance, args)
            return result if isinstance(result, (JSObject, JSArray)) else instance
        raise JSError("TypeError: not a constructor")

    def _eval_Unary(self, node: ast.Unary, env: Environment) -> object:
        if node.op == "typeof":
            # typeof of an undeclared name is 'undefined', not an error.
            if isinstance(node.operand, ast.Identifier) and not env.has(node.operand.name):
                return "undefined"
            return js_typeof(self.evaluate(node.operand, env))
        if node.op == "delete":
            if isinstance(node.operand, ast.Member):
                obj = self.evaluate(node.operand.obj, env)
                name = self._member_name(node.operand, env)
                if isinstance(obj, JSObject):
                    obj.properties.pop(name, None)
                    return True
            return True
        value = self.evaluate(node.operand, env)
        if node.op == "!":
            return not truthy(value)
        if node.op == "-":
            return -to_number(value)
        if node.op == "+":
            return to_number(value)
        if node.op == "~":
            return float(~int(to_number(value)))
        if node.op == "void":
            return UNDEFINED
        raise JSError(f"unsupported unary operator {node.op}")

    def _eval_Update(self, node: ast.Update, env: Environment) -> object:
        old = to_number(self._read_target(node.operand, env))
        new = old + 1 if node.op == "++" else old - 1
        self._write_target(node.operand, new, env)
        return new if node.prefix else old

    def _eval_Binary(self, node: ast.Binary, env: Environment) -> object:
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        return binary_operate(node.op, left, right, self)

    def _eval_Logical(self, node: ast.Logical, env: Environment) -> object:
        left = self.evaluate(node.left, env)
        if node.op == "&&":
            return self.evaluate(node.right, env) if truthy(left) else left
        if node.op == "||":
            return left if truthy(left) else self.evaluate(node.right, env)
        if node.op == "??":
            if left is None or left is UNDEFINED:
                return self.evaluate(node.right, env)
            return left
        raise JSError(f"unsupported logical operator {node.op}")

    def _eval_Conditional(self, node: ast.Conditional, env: Environment) -> object:
        if truthy(self.evaluate(node.test, env)):
            return self.evaluate(node.consequent, env)
        return self.evaluate(node.alternate, env)

    def _eval_Assign(self, node: ast.Assign, env: Environment) -> object:
        if node.op == "=":
            value = self.evaluate(node.value, env)
        else:
            current = self._read_target(node.target, env)
            operand = self.evaluate(node.value, env)
            value = binary_operate(node.op[:-1], current, operand, self)
        self._write_target(node.target, value, env)
        return value

    def _eval_Sequence(self, node: ast.Sequence, env: Environment) -> object:
        result: object = UNDEFINED
        for expression in node.expressions:
            result = self.evaluate(expression, env)
        return result

    def _read_target(self, target: ast.Node, env: Environment) -> object:
        if isinstance(target, ast.Identifier):
            if env.has(target.name):
                return env.lookup(target.name)
            return UNDEFINED
        if isinstance(target, ast.Member):
            obj = self.evaluate(target.obj, env)
            return self.get_property(obj, self._member_name(target, env))
        raise JSError("invalid assignment target")

    def _write_target(self, target: ast.Node, value: object, env: Environment) -> None:
        if isinstance(target, ast.Identifier):
            env.assign(target.name, value)
            return
        if isinstance(target, ast.Member):
            obj = self.evaluate(target.obj, env)
            self.set_property(obj, self._member_name(target, env), value)
            return
        raise JSError("invalid assignment target")

    # ------------------------------------------------------------------
    # Property access
    # ------------------------------------------------------------------
    def get_property(self, obj: object, name: str) -> object:
        from repro.js.stdlib import builtin_property

        if obj is None or obj is UNDEFINED:
            raise JSError(f"TypeError: cannot read property {name!r} of {to_js_string(obj)}")
        if isinstance(obj, JSObject):
            if obj.has(name):
                return obj.get(name)
            return builtin_property(self, obj, name)
        return builtin_property(self, obj, name)

    def set_property(self, obj: object, name: str, value: object) -> None:
        if isinstance(obj, JSObject):
            obj.set(name, value)
            return
        if isinstance(obj, JSArray):
            if name == "length":
                new_length = int(to_number(value))
                del obj.elements[new_length:]
                obj.elements.extend([UNDEFINED] * (new_length - len(obj.elements)))
                return
            try:
                index = int(name)
            except ValueError:
                return  # silently ignored, like non-index array props
            if index >= len(obj.elements):
                obj.elements.extend([UNDEFINED] * (index + 1 - len(obj.elements)))
            obj.elements[index] = value
            return
        raise JSError(f"TypeError: cannot set property {name!r}")

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _call(self, fn: object, this: object, args: list) -> object:
        self._tick()
        if isinstance(fn, NativeFunction):
            return fn.fn(self, this, args)
        if isinstance(fn, JSFunction):
            scope = Environment(fn.closure)
            if fn.is_arrow:
                if fn.bound_this is not None:
                    pass  # arrows keep the lexical this already in closure
            else:
                scope.declare("this", this)
            arguments = JSArray(list(args))
            scope.declare("arguments", arguments)
            for index, param in enumerate(fn.params):
                scope.declare(param, args[index] if index < len(args) else UNDEFINED)
            self._hoist(fn.body, scope)
            try:
                for statement in fn.body:
                    self.execute(statement, scope)
            except _Return as result:
                return result.value
            return UNDEFINED
        raise JSError(f"TypeError: {to_js_string(fn)} is not a function")


# ----------------------------------------------------------------------
# Coercions and operators (module-level helpers)
# ----------------------------------------------------------------------
def truthy(value: object) -> bool:
    if value is UNDEFINED or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, int):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    return True


def to_number(value: object) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is None:
        return 0.0
    if value is UNDEFINED:
        return math.nan
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.lower().startswith("0x"):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return math.nan
    if isinstance(value, JSArray):
        if not value.elements:
            return 0.0
        if len(value.elements) == 1:
            return to_number(value.elements[0])
    return math.nan


def js_number_to_string(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "Infinity"
    if value == -math.inf:
        return "-Infinity"
    if float(value).is_integer() and abs(value) < 1e21:
        return str(int(value))
    return repr(float(value))


def to_js_string(value: object) -> str:
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return js_number_to_string(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, JSArray):
        return ",".join("" if e is UNDEFINED or e is None else to_js_string(e) for e in value.elements)
    if isinstance(value, JSObject):
        return "[object Object]"
    if isinstance(value, (JSFunction, NativeFunction)):
        return f"function {getattr(value, 'name', '')}() {{ [code] }}"
    return str(value)


def to_property_key(value: object) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return js_number_to_string(float(value))
    return to_js_string(value)


def js_typeof(value: object) -> str:
    if value is UNDEFINED:
        return "undefined"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "function"
    return "object"


def strict_equals(left: object, right: object) -> bool:
    if left is UNDEFINED or right is UNDEFINED:
        return left is right
    if left is None or right is None:
        return left is right
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    return left is right


def loose_equals(left: object, right: object) -> bool:
    if (left is None or left is UNDEFINED) and (right is None or right is UNDEFINED):
        return True
    if (left is None or left is UNDEFINED) != (right is None or right is UNDEFINED):
        return False
    if isinstance(left, str) and isinstance(right, (int, float)) and not isinstance(right, bool):
        return to_number(left) == float(right)
    if isinstance(right, str) and isinstance(left, (int, float)) and not isinstance(left, bool):
        return to_number(right) == float(left)
    if isinstance(left, bool) or isinstance(right, bool):
        return to_number(left) == to_number(right)
    return strict_equals(left, right)


def binary_operate(op: str, left: object, right: object, interp: Interpreter) -> object:
    if op == "+":
        if isinstance(left, str) or isinstance(right, str) or isinstance(left, (JSObject, JSArray)) or isinstance(right, (JSObject, JSArray)):
            return to_js_string(left) + to_js_string(right)
        return to_number(left) + to_number(right)
    if op == "-":
        return to_number(left) - to_number(right)
    if op == "*":
        return to_number(left) * to_number(right)
    if op == "/":
        divisor = to_number(right)
        dividend = to_number(left)
        if divisor == 0:
            if dividend == 0 or math.isnan(dividend):
                return math.nan
            return math.inf if dividend > 0 else -math.inf
        return dividend / divisor
    if op == "%":
        divisor = to_number(right)
        if divisor == 0:
            return math.nan
        return math.fmod(to_number(left), divisor)
    if op == "**":
        return to_number(left) ** to_number(right)
    if op == "==":
        return loose_equals(left, right)
    if op == "!=":
        return not loose_equals(left, right)
    if op == "===":
        return strict_equals(left, right)
    if op == "!==":
        return not strict_equals(left, right)
    if op in ("<", ">", "<=", ">="):
        if isinstance(left, str) and isinstance(right, str):
            pair = (left, right)
        else:
            pair = (to_number(left), to_number(right))
            if math.isnan(pair[0]) or math.isnan(pair[1]):
                return False
        if op == "<":
            return pair[0] < pair[1]
        if op == ">":
            return pair[0] > pair[1]
        if op == "<=":
            return pair[0] <= pair[1]
        return pair[0] >= pair[1]
    if op in ("&", "|", "^", "<<", ">>", ">>>"):
        a = int(to_number(left)) & 0xFFFFFFFF
        b = int(to_number(right)) & 0xFFFFFFFF
        if op == "&":
            result = a & b
        elif op == "|":
            result = a | b
        elif op == "^":
            result = a ^ b
        elif op == "<<":
            result = (a << (b & 31)) & 0xFFFFFFFF
        elif op == ">>":
            signed = a - 0x100000000 if a & 0x80000000 else a
            return float(signed >> (b & 31))
        else:  # >>>
            result = a >> (b & 31)
        if result & 0x80000000 and op != ">>>":
            result -= 0x100000000
        return float(result)
    if op == "in":
        key = to_property_key(left)
        if isinstance(right, JSObject):
            return right.has(key)
        if isinstance(right, JSArray):
            try:
                return 0 <= int(key) < len(right.elements)
            except ValueError:
                return False
        return False
    if op == "instanceof":
        return False  # no prototype chains in the subset
    raise JSError(f"unsupported binary operator {op}")
