"""Built-in objects and methods for the PhishScript interpreter.

Installs the globals phishing kits rely on (``atob``/``btoa``, ``console``,
``JSON``, ``Math``, ``Date``, timers, ``RegExp``, URI coders) and provides
``builtin_property``, the method dispatcher for primitive values, arrays,
and objects.

``console`` is an ordinary mutable :class:`~repro.js.interp.JSObject`
whose methods scripts can overwrite — exactly what the console-hijacking
cloak found on 295 messages does.
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import re
import urllib.parse

from repro.js.interp import (
    Environment,
    Interpreter,
    JSArray,
    JSError,
    JSFunction,
    JSObject,
    NativeFunction,
    Timer,
    UNDEFINED,
    js_number_to_string,
    strict_equals,
    to_js_string,
    to_number,
    truthy,
)


def native(fn, name: str = "") -> NativeFunction:
    """Wrap a Python callable as a script-callable native function."""
    wrapper = NativeFunction(fn, name)
    return wrapper


class JSRegExp:
    """A RegExp value backed by Python's ``re`` module."""

    def __init__(self, pattern: str, flags: str = ""):
        self.source = pattern
        self.flags = flags
        py_flags = 0
        if "i" in flags:
            py_flags |= re.IGNORECASE
        if "m" in flags:
            py_flags |= re.MULTILINE
        if "s" in flags:
            py_flags |= re.DOTALL
        try:
            self.regex = re.compile(pattern, py_flags)
        except re.error as exc:
            raise JSError(f"SyntaxError: invalid regular expression: {exc}") from exc
        self.global_flag = "g" in flags
        self.last_index = 0

    def __repr__(self) -> str:
        return f"/{self.source}/{self.flags}"


# ----------------------------------------------------------------------
# Global installation
# ----------------------------------------------------------------------
def install_stdlib(interp: Interpreter) -> None:
    """Declare the standard globals on a fresh interpreter."""
    declare = interp.globals.declare

    def _atob(_interp, _this, args):
        text = to_js_string(args[0] if args else "")
        try:
            return base64.b64decode(text.encode("ascii"), validate=False).decode("latin-1")
        except (binascii.Error, ValueError) as exc:
            raise JSError(f"InvalidCharacterError: {exc}") from exc

    def _btoa(_interp, _this, args):
        text = to_js_string(args[0] if args else "")
        try:
            return base64.b64encode(text.encode("latin-1")).decode("ascii")
        except UnicodeEncodeError as exc:
            raise JSError("InvalidCharacterError: non latin-1 input to btoa") from exc

    declare("atob", native(_atob, "atob"))
    declare("btoa", native(_btoa, "btoa"))
    declare("NaN", math.nan)
    declare("Infinity", math.inf)

    def _parse_int(_interp, _this, args):
        text = to_js_string(args[0] if args else "").strip()
        radix = int(to_number(args[1])) if len(args) > 1 and truthy(args[1]) else 10
        match = re.match(r"^[+-]?(0[xX][0-9a-fA-F]+|[0-9a-zA-Z]+)", text)
        if not match:
            return math.nan
        token = match.group(0)
        try:
            if token.lower().startswith(("0x", "+0x", "-0x")) and radix in (10, 16):
                return float(int(token, 16))
            # Trim characters invalid for the radix, like JS does.
            sign = 1
            if token[0] in "+-":
                sign = -1 if token[0] == "-" else 1
                token = token[1:]
            digits = ""
            for char in token:
                try:
                    if int(char, radix) is not None:
                        digits += char
                except ValueError:
                    break
            if not digits:
                return math.nan
            return float(sign * int(digits, radix))
        except ValueError:
            return math.nan

    declare("parseInt", native(_parse_int, "parseInt"))
    declare(
        "parseFloat",
        native(
            lambda _i, _t, args: _parse_float(to_js_string(args[0] if args else "")),
            "parseFloat",
        ),
    )
    declare(
        "isNaN",
        native(lambda _i, _t, args: math.isnan(to_number(args[0] if args else UNDEFINED)), "isNaN"),
    )
    declare(
        "encodeURIComponent",
        native(
            lambda _i, _t, args: urllib.parse.quote(to_js_string(args[0] if args else ""), safe="!'()*-._~"),
            "encodeURIComponent",
        ),
    )
    declare(
        "decodeURIComponent",
        native(
            lambda _i, _t, args: urllib.parse.unquote(to_js_string(args[0] if args else "")),
            "decodeURIComponent",
        ),
    )

    # console: a plain mutable object so kits can hijack its methods.
    console = JSObject()
    interp.console_log = []  # list[(level, message)] observed by the host

    def _console_method(level: str):
        def _log(_interp, _this, args):
            message = " ".join(to_js_string(arg) for arg in args)
            _interp.console_log.append((level, message))
            return UNDEFINED

        return native(_log, level)

    for level in ("log", "warn", "error", "info", "debug", "trace"):
        console.set(level, _console_method(level))
    console.set("clear", native(lambda _i, _t, _a: UNDEFINED, "clear"))
    declare("console", console)

    # Math.
    math_obj = JSObject()

    def _math1(fn, name):
        return native(lambda _i, _t, args: float(fn(to_number(args[0] if args else UNDEFINED))), name)

    math_obj.set("floor", _math1(math.floor, "floor"))
    math_obj.set("ceil", _math1(math.ceil, "ceil"))
    math_obj.set("round", _math1(lambda x: math.floor(x + 0.5), "round"))
    math_obj.set("abs", _math1(abs, "abs"))
    math_obj.set("sqrt", _math1(math.sqrt, "sqrt"))
    math_obj.set("log", _math1(math.log, "log"))
    math_obj.set("sign", _math1(lambda x: (x > 0) - (x < 0), "sign"))
    math_obj.set("trunc", _math1(math.trunc, "trunc"))
    math_obj.set(
        "pow",
        native(lambda _i, _t, args: to_number(args[0]) ** to_number(args[1]), "pow"),
    )
    math_obj.set(
        "min",
        native(lambda _i, _t, args: min((to_number(a) for a in args), default=math.inf), "min"),
    )
    math_obj.set(
        "max",
        native(lambda _i, _t, args: max((to_number(a) for a in args), default=-math.inf), "max"),
    )
    math_obj.set("random", native(lambda _interp, _t, _a: _interp.rng.random(), "random"))
    math_obj.set("PI", math.pi)
    math_obj.set("E", math.e)
    declare("Math", math_obj)

    # JSON.
    json_obj = JSObject()

    def _json_stringify(_interp, _this, args):
        value = args[0] if args else UNDEFINED
        if value is UNDEFINED:
            return UNDEFINED
        return json.dumps(js_to_python(value), separators=(",", ":"))

    def _json_parse(_interp, _this, args):
        text = to_js_string(args[0] if args else "")
        try:
            return python_to_js(json.loads(text))
        except json.JSONDecodeError as exc:
            raise JSError(f"SyntaxError: JSON.parse: {exc}") from exc

    json_obj.set("stringify", native(_json_stringify, "stringify"))
    json_obj.set("parse", native(_json_parse, "parse"))
    declare("JSON", json_obj)

    # Date: callable constructor with a .now() static.
    def _date_constructor(_interp, _this, args):
        obj = JSObject()
        now = _interp.clock_ms()
        obj.set("getTime", native(lambda _i, _t, _a: now, "getTime"))
        obj.set("getTimezoneOffset", native(lambda _i, _t, _a: 0.0, "getTimezoneOffset"))
        obj.set("toISOString", native(lambda _i, _t, _a: f"1970-01-01T00:00:{now / 1000.0:06.3f}Z", "toISOString"))
        obj.set("valueOf", native(lambda _i, _t, _a: now, "valueOf"))
        return obj

    date_fn = native(_date_constructor, "Date")
    date_fn.properties = {  # type: ignore[attr-defined]
        "now": native(lambda _interp, _t, _a: _interp.clock_ms(), "now"),
    }
    declare("Date", date_fn)

    # String / Number / Boolean / Array / Object namespaces.
    def _string_fn(_interp, _this, args):
        return to_js_string(args[0]) if args else ""

    string_fn = native(_string_fn, "String")
    string_fn.properties = {  # type: ignore[attr-defined]
        "fromCharCode": native(
            lambda _i, _t, args: "".join(chr(int(to_number(a))) for a in args), "fromCharCode"
        ),
    }
    declare("String", string_fn)

    number_fn = native(lambda _i, _t, args: to_number(args[0]) if args else 0.0, "Number")
    number_fn.properties = {  # type: ignore[attr-defined]
        "isInteger": native(
            lambda _i, _t, args: isinstance(args[0], (int, float))
            and not isinstance(args[0], bool)
            and float(args[0]).is_integer()
            if args
            else False,
            "isInteger",
        ),
        "parseFloat": native(
            lambda _i, _t, args: _parse_float(to_js_string(args[0] if args else "")), "parseFloat"
        ),
        "MAX_SAFE_INTEGER": float(2**53 - 1),
    }
    declare("Number", number_fn)
    declare("Boolean", native(lambda _i, _t, args: truthy(args[0]) if args else False, "Boolean"))

    array_fn = native(lambda _i, _t, args: JSArray(list(args)), "Array")
    array_fn.properties = {  # type: ignore[attr-defined]
        "isArray": native(lambda _i, _t, args: isinstance(args[0], JSArray) if args else False, "isArray"),
        "from": native(
            lambda _i, _t, args: JSArray(
                list(args[0].elements) if args and isinstance(args[0], JSArray) else list(to_js_string(args[0])) if args else []
            ),
            "from",
        ),
    }
    declare("Array", array_fn)

    def _object_keys(_i, _t, args):
        target = args[0] if args else None
        if isinstance(target, JSObject):
            return JSArray(target.keys())
        if isinstance(target, JSArray):
            return JSArray([str(i) for i in range(len(target.elements))])
        return JSArray([])

    def _object_assign(_i, _t, args):
        if not args or not isinstance(args[0], JSObject):
            raise JSError("TypeError: Object.assign target must be an object")
        target = args[0]
        for source in args[1:]:
            if isinstance(source, JSObject):
                target.properties.update(source.properties)
        return target

    object_fn = native(lambda _i, _t, args: args[0] if args else JSObject(), "Object")
    object_fn.properties = {  # type: ignore[attr-defined]
        "keys": native(_object_keys, "keys"),
        "values": native(
            lambda _i, _t, args: JSArray(list(args[0].properties.values()))
            if args and isinstance(args[0], JSObject)
            else JSArray([]),
            "values",
        ),
        "assign": native(_object_assign, "assign"),
        "entries": native(
            lambda _i, _t, args: JSArray(
                [JSArray([k, v]) for k, v in args[0].properties.items()]
            )
            if args and isinstance(args[0], JSObject)
            else JSArray([]),
            "entries",
        ),
        "defineProperty": native(_object_define_property, "defineProperty"),
    }
    declare("Object", object_fn)

    declare(
        "RegExp",
        native(
            lambda _i, _t, args: JSRegExp(
                to_js_string(args[0]) if args else "",
                to_js_string(args[1]) if len(args) > 1 else "",
            ),
            "RegExp",
        ),
    )

    def _error_ctor(_i, _t, args):
        obj = JSObject()
        obj.set("message", to_js_string(args[0]) if args else "")
        obj.set("name", "Error")
        return obj

    declare("Error", native(_error_ctor, "Error"))
    declare("TypeError", native(_error_ctor, "TypeError"))

    # Timers: registrations land on interp.timers; the host runs them.
    def _set_timer(repeating: bool):
        def _register(_interp, _this, args):
            callback = args[0] if args else UNDEFINED
            delay = to_number(args[1]) if len(args) > 1 else 0.0
            timer = Timer(callback, delay, repeating)
            _interp.timers.append(timer)
            return float(timer.id)

        return _register

    declare("setTimeout", native(_set_timer(False), "setTimeout"))
    declare("setInterval", native(_set_timer(True), "setInterval"))

    def _clear_timer(_interp, _this, args):
        if args:
            timer_id = to_number(args[0])
            for timer in _interp.timers:
                if timer.id == timer_id:
                    timer.cancelled = True
        return UNDEFINED

    declare("clearTimeout", native(_clear_timer, "clearTimeout"))
    declare("clearInterval", native(_clear_timer, "clearInterval"))

    # Fallback eval (calls in expression position are special-formed in
    # the interpreter; this covers indirect references).
    def _eval(_interp, _this, args):
        source = args[0] if args else ""
        if not isinstance(source, str):
            return source
        from repro.js.parser import parse as _parse

        return _interp.run_program(_parse(source), _interp.globals)

    declare("eval", native(_eval, "eval"))


def _object_define_property(_i, _t, args):
    """Minimal Object.defineProperty supporting value descriptors."""
    if len(args) < 3 or not isinstance(args[0], JSObject):
        raise JSError("TypeError: Object.defineProperty on non-object")
    target, key, descriptor = args[0], to_js_string(args[1]), args[2]
    if isinstance(descriptor, JSObject) and descriptor.has("value"):
        target.set(key, descriptor.get("value"))
    return target


def _parse_float(text: str) -> float:
    match = re.match(r"^\s*[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", text)
    if not match:
        return math.nan
    return float(match.group(0))


# ----------------------------------------------------------------------
# Conversions between JS and Python structures (for JSON and host code)
# ----------------------------------------------------------------------
def js_to_python(value: object) -> object:
    if value is UNDEFINED:
        return None
    if isinstance(value, JSArray):
        return [js_to_python(element) for element in value.elements]
    if isinstance(value, JSObject):
        return {key: js_to_python(val) for key, val in value.properties.items()}
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)
    if isinstance(value, (JSFunction, NativeFunction)):
        return None
    return value


def python_to_js(value: object) -> object:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return JSArray([python_to_js(element) for element in value])
    if isinstance(value, dict):
        return JSObject({str(key): python_to_js(val) for key, val in value.items()})
    return value


# ----------------------------------------------------------------------
# Method dispatch for primitives and containers
# ----------------------------------------------------------------------
def builtin_property(interp: Interpreter, obj: object, name: str) -> object:
    """Resolve built-in properties/methods on non-JSObject values."""
    if isinstance(obj, str):
        return _string_property(obj, name)
    if isinstance(obj, JSArray):
        return _array_property(interp, obj, name)
    if isinstance(obj, JSRegExp):
        return _regexp_property(obj, name)
    if isinstance(obj, (int, float)) and not isinstance(obj, bool):
        return _number_property(float(obj), name)
    if isinstance(obj, (JSFunction, NativeFunction)):
        return _function_property(interp, obj, name)
    if isinstance(obj, JSObject):
        if name == "hasOwnProperty":
            return native(
                lambda _i, this, args: isinstance(this, JSObject)
                and this.has(to_js_string(args[0]) if args else ""),
                "hasOwnProperty",
            )
        if name == "toString":
            return native(lambda _i, this, _a: to_js_string(this), "toString")
        return UNDEFINED
    return UNDEFINED


def _string_property(value: str, name: str) -> object:
    if name == "length":
        return float(len(value))
    try:
        index = int(name)
        if 0 <= index < len(value):
            return value[index]
    except ValueError:
        pass

    def method(fn, label):
        return native(fn, label)

    if name == "charAt":
        return method(
            lambda _i, this, args: this[int(to_number(args[0]))] if args and 0 <= int(to_number(args[0])) < len(this) else "",
            name,
        )
    if name == "charCodeAt":
        return method(
            lambda _i, this, args: float(ord(this[int(to_number(args[0])) if args else 0]))
            if (int(to_number(args[0])) if args else 0) < len(this)
            else math.nan,
            name,
        )
    if name == "codePointAt":
        return method(
            lambda _i, this, args: float(ord(this[int(to_number(args[0])) if args else 0])), name
        )
    if name == "indexOf":
        return method(
            lambda _i, this, args: float(this.find(to_js_string(args[0]) if args else "")), name
        )
    if name == "lastIndexOf":
        return method(
            lambda _i, this, args: float(this.rfind(to_js_string(args[0]) if args else "")), name
        )
    if name == "includes":
        return method(
            lambda _i, this, args: (to_js_string(args[0]) if args else "") in this, name
        )
    if name == "startsWith":
        return method(
            lambda _i, this, args: this.startswith(to_js_string(args[0]) if args else ""), name
        )
    if name == "endsWith":
        return method(
            lambda _i, this, args: this.endswith(to_js_string(args[0]) if args else ""), name
        )
    if name == "slice":
        return method(lambda _i, this, args: _js_slice(this, args), name)
    if name == "substring":
        return method(lambda _i, this, args: _js_substring(this, args), name)
    if name == "substr":
        return method(lambda _i, this, args: _js_substr(this, args), name)
    if name == "split":
        return method(lambda _i, this, args: _js_split(this, args), name)
    if name == "replace":
        return method(lambda interp, this, args: _js_replace(interp, this, args, all_matches=False), name)
    if name == "replaceAll":
        return method(lambda interp, this, args: _js_replace(interp, this, args, all_matches=True), name)
    if name == "toLowerCase":
        return method(lambda _i, this, _a: this.lower(), name)
    if name == "toUpperCase":
        return method(lambda _i, this, _a: this.upper(), name)
    if name == "trim":
        return method(lambda _i, this, _a: this.strip(), name)
    if name == "repeat":
        return method(lambda _i, this, args: this * int(to_number(args[0])) if args else "", name)
    if name == "concat":
        return method(lambda _i, this, args: this + "".join(to_js_string(a) for a in args), name)
    if name == "padStart":
        return method(
            lambda _i, this, args: this.rjust(
                int(to_number(args[0])) if args else 0,
                (to_js_string(args[1]) if len(args) > 1 else " ")[0] if (to_js_string(args[1]) if len(args) > 1 else " ") else " ",
            ),
            name,
        )
    if name == "padEnd":
        return method(
            lambda _i, this, args: this.ljust(
                int(to_number(args[0])) if args else 0,
                (to_js_string(args[1]) if len(args) > 1 else " ")[0] if (to_js_string(args[1]) if len(args) > 1 else " ") else " ",
            ),
            name,
        )
    if name == "match":
        return method(lambda _i, this, args: _js_match(this, args), name)
    if name == "search":
        return method(lambda _i, this, args: _js_search(this, args), name)
    if name == "toString":
        return method(lambda _i, this, _a: this, name)
    if name == "at":
        return method(lambda _i, this, args: _js_at(this, args), name)
    return UNDEFINED


def _js_slice(this: str, args: list) -> str:
    start = int(to_number(args[0])) if args else 0
    end = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else len(this)
    return this[slice(start if start >= 0 else max(0, len(this) + start), end if end >= 0 else max(0, len(this) + end))]


def _js_substring(this: str, args: list) -> str:
    start = max(0, int(to_number(args[0]))) if args else 0
    end = max(0, int(to_number(args[1]))) if len(args) > 1 and args[1] is not UNDEFINED else len(this)
    start, end = min(start, end), max(start, end)
    return this[start:end]


def _js_substr(this: str, args: list) -> str:
    start = int(to_number(args[0])) if args else 0
    if start < 0:
        start = max(0, len(this) + start)
    length = int(to_number(args[1])) if len(args) > 1 else len(this) - start
    return this[start : start + max(0, length)]


def _js_at(this: str, args: list) -> object:
    index = int(to_number(args[0])) if args else 0
    if index < 0:
        index += len(this)
    if 0 <= index < len(this):
        return this[index]
    return UNDEFINED


def _js_split(this: str, args: list) -> JSArray:
    if not args or args[0] is UNDEFINED:
        return JSArray([this])
    separator = args[0]
    if isinstance(separator, JSRegExp):
        return JSArray(separator.regex.split(this))
    separator = to_js_string(separator)
    if separator == "":
        return JSArray(list(this))
    return JSArray(this.split(separator))


def _js_replace(interp: Interpreter, this: str, args: list, all_matches: bool) -> str:
    if len(args) < 2:
        return this
    pattern, replacement = args[0], args[1]

    def replace_with(match_text: str, groups: tuple) -> str:
        if isinstance(replacement, (JSFunction, NativeFunction)):
            call_args: list = [match_text] + list(groups)
            return to_js_string(interp.call_function(replacement, UNDEFINED, call_args))
        return to_js_string(replacement)

    if isinstance(pattern, JSRegExp):
        count = 0 if (pattern.global_flag or all_matches) else 1

        def _sub(match: re.Match) -> str:
            text = replace_with(match.group(0), match.groups())
            # Support $1..$9 backreferences in string replacements.
            if not isinstance(replacement, (JSFunction, NativeFunction)):
                for index, group in enumerate(match.groups(), start=1):
                    text = text.replace(f"${index}", group or "")
            return text

        return pattern.regex.sub(_sub, this, count=count)
    needle = to_js_string(pattern)
    replaced = replace_with(needle, ())
    if all_matches:
        return this.replace(needle, replaced)
    return this.replace(needle, replaced, 1)


def _js_match(this: str, args: list) -> object:
    if not args:
        return None
    pattern = args[0] if isinstance(args[0], JSRegExp) else JSRegExp(to_js_string(args[0]))
    if pattern.global_flag:
        found = pattern.regex.findall(this)
        if not found:
            return None
        return JSArray([f if isinstance(f, str) else f[0] for f in found])
    match = pattern.regex.search(this)
    if match is None:
        return None
    result = JSArray([match.group(0)] + [g if g is not None else UNDEFINED for g in match.groups()])
    return result


def _js_search(this: str, args: list) -> float:
    if not args:
        return -1.0
    pattern = args[0] if isinstance(args[0], JSRegExp) else JSRegExp(to_js_string(args[0]))
    match = pattern.regex.search(this)
    return float(match.start()) if match else -1.0


def _array_property(interp: Interpreter, array: JSArray, name: str) -> object:
    elements = array.elements
    if name == "length":
        return float(len(elements))
    try:
        index = int(name)
        if 0 <= index < len(elements):
            return elements[index]
        return UNDEFINED
    except ValueError:
        pass

    if name == "push":
        def _push(_i, this, args):
            this.elements.extend(args)
            return float(len(this.elements))
        return native(_push, name)
    if name == "pop":
        return native(lambda _i, this, _a: this.elements.pop() if this.elements else UNDEFINED, name)
    if name == "shift":
        return native(lambda _i, this, _a: this.elements.pop(0) if this.elements else UNDEFINED, name)
    if name == "unshift":
        def _unshift(_i, this, args):
            this.elements[0:0] = args
            return float(len(this.elements))
        return native(_unshift, name)
    if name == "indexOf":
        def _index_of(_i, this, args):
            target = args[0] if args else UNDEFINED
            for position, element in enumerate(this.elements):
                if strict_equals(element, target):
                    return float(position)
            return -1.0
        return native(_index_of, name)
    if name == "includes":
        def _includes(_i, this, args):
            target = args[0] if args else UNDEFINED
            return any(strict_equals(element, target) for element in this.elements)
        return native(_includes, name)
    if name == "join":
        return native(
            lambda _i, this, args: (to_js_string(args[0]) if args else ",").join(
                "" if e is None or e is UNDEFINED else to_js_string(e) for e in this.elements
            ),
            name,
        )
    if name == "slice":
        def _slice(_i, this, args):
            start = int(to_number(args[0])) if args else 0
            end = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else len(this.elements)
            return JSArray(this.elements[start:end] if start >= 0 else this.elements[start:end or None])
        return native(_slice, name)
    if name == "splice":
        def _splice(_i, this, args):
            start = int(to_number(args[0])) if args else 0
            count = int(to_number(args[1])) if len(args) > 1 else len(this.elements) - start
            removed = this.elements[start : start + count]
            this.elements[start : start + count] = list(args[2:])
            return JSArray(removed)
        return native(_splice, name)
    if name == "concat":
        def _concat(_i, this, args):
            result = list(this.elements)
            for arg in args:
                if isinstance(arg, JSArray):
                    result.extend(arg.elements)
                else:
                    result.append(arg)
            return JSArray(result)
        return native(_concat, name)
    if name == "reverse":
        def _reverse(_i, this, _a):
            this.elements.reverse()
            return this
        return native(_reverse, name)
    if name == "map":
        def _map(interp_, this, args):
            fn = args[0]
            return JSArray(
                [interp_.call_function(fn, UNDEFINED, [element, float(i), this]) for i, element in enumerate(this.elements)]
            )
        return native(_map, name)
    if name == "filter":
        def _filter(interp_, this, args):
            fn = args[0]
            return JSArray(
                [e for i, e in enumerate(this.elements) if truthy(interp_.call_function(fn, UNDEFINED, [e, float(i), this]))]
            )
        return native(_filter, name)
    if name == "forEach":
        def _for_each(interp_, this, args):
            fn = args[0]
            for i, element in enumerate(list(this.elements)):
                interp_.call_function(fn, UNDEFINED, [element, float(i), this])
            return UNDEFINED
        return native(_for_each, name)
    if name == "find":
        def _find(interp_, this, args):
            fn = args[0]
            for i, element in enumerate(this.elements):
                if truthy(interp_.call_function(fn, UNDEFINED, [element, float(i), this])):
                    return element
            return UNDEFINED
        return native(_find, name)
    if name == "findIndex":
        def _find_index(interp_, this, args):
            fn = args[0]
            for i, element in enumerate(this.elements):
                if truthy(interp_.call_function(fn, UNDEFINED, [element, float(i), this])):
                    return float(i)
            return -1.0
        return native(_find_index, name)
    if name == "some":
        def _some(interp_, this, args):
            fn = args[0]
            return any(
                truthy(interp_.call_function(fn, UNDEFINED, [e, float(i), this]))
                for i, e in enumerate(this.elements)
            )
        return native(_some, name)
    if name == "every":
        def _every(interp_, this, args):
            fn = args[0]
            return all(
                truthy(interp_.call_function(fn, UNDEFINED, [e, float(i), this]))
                for i, e in enumerate(this.elements)
            )
        return native(_every, name)
    if name == "reduce":
        def _reduce(interp_, this, args):
            fn = args[0]
            items = list(this.elements)
            if len(args) > 1:
                accumulator = args[1]
                start = 0
            else:
                if not items:
                    raise JSError("TypeError: reduce of empty array with no initial value")
                accumulator = items[0]
                start = 1
            for i in range(start, len(items)):
                accumulator = interp_.call_function(fn, UNDEFINED, [accumulator, items[i], float(i), this])
            return accumulator
        return native(_reduce, name)
    if name == "sort":
        def _sort(interp_, this, args):
            if args and args[0] is not UNDEFINED:
                fn = args[0]
                import functools

                def compare(a, b):
                    result = to_number(interp_.call_function(fn, UNDEFINED, [a, b]))
                    return -1 if result < 0 else (1 if result > 0 else 0)

                this.elements.sort(key=functools.cmp_to_key(compare))
            else:
                this.elements.sort(key=to_js_string)
            return this
        return native(_sort, name)
    if name == "toString":
        return native(lambda _i, this, _a: to_js_string(this), name)
    return UNDEFINED


def _regexp_property(regexp: JSRegExp, name: str) -> object:
    if name == "source":
        return regexp.source
    if name == "flags":
        return regexp.flags
    if name == "global":
        return regexp.global_flag
    if name == "lastIndex":
        return float(regexp.last_index)
    if name == "test":
        return native(
            lambda _i, this, args: this.regex.search(to_js_string(args[0] if args else "")) is not None,
            name,
        )
    if name == "exec":
        def _exec(_i, this, args):
            text = to_js_string(args[0] if args else "")
            start = this.last_index if this.global_flag else 0
            match = this.regex.search(text, start)
            if match is None:
                this.last_index = 0
                return None
            if this.global_flag:
                this.last_index = match.end()
            return JSArray([match.group(0)] + [g if g is not None else UNDEFINED for g in match.groups()])
        return native(_exec, name)
    return UNDEFINED


def _number_property(value: float, name: str) -> object:
    if name == "toString":
        def _to_string(_i, this, args):
            if args:
                radix = int(to_number(args[0]))
                integer = int(this)
                if radix == 10:
                    return js_number_to_string(this)
                digits = "0123456789abcdefghijklmnopqrstuvwxyz"
                if integer == 0:
                    return "0"
                negative = integer < 0
                integer = abs(integer)
                out = ""
                while integer:
                    out = digits[integer % radix] + out
                    integer //= radix
                return ("-" if negative else "") + out
            return js_number_to_string(this)
        return native(_to_string, name)
    if name == "toFixed":
        return native(
            lambda _i, this, args: f"{this:.{int(to_number(args[0])) if args else 0}f}", name
        )
    return UNDEFINED


def _function_property(interp: Interpreter, fn: object, name: str) -> object:
    attached = getattr(fn, "properties", None)
    if attached and name in attached:
        return attached[name]
    if name == "name":
        return getattr(fn, "name", "")
    if name == "call":
        def _call(interp_, this, args):
            target_this = args[0] if args else UNDEFINED
            return interp_.call_function(this, target_this, list(args[1:]))
        return native(_call, name)
    if name == "apply":
        def _apply(interp_, this, args):
            target_this = args[0] if args else UNDEFINED
            call_args = list(args[1].elements) if len(args) > 1 and isinstance(args[1], JSArray) else []
            return interp_.call_function(this, target_this, call_args)
        return native(_apply, name)
    if name == "bind":
        def _bind(interp_, this, args):
            bound_this = args[0] if args else UNDEFINED
            bound_args = list(args[1:])
            inner = this

            def _bound(interp__, _t, call_args):
                return interp__.call_function(inner, bound_this, bound_args + list(call_args))

            return native(_bound, f"bound {getattr(this, 'name', '')}")
        return native(_bind, name)
    if name == "toString":
        return native(lambda _i, this, _a: to_js_string(this), name)
    return UNDEFINED
