"""Obfuscation transforms used by the simulated phishing kits.

The paper repeatedly observed base64-encoded scripts "appended to each
HTML document's <head> section" and obfuscated victim-tracking code
shared across dozens of domains.  Kits in :mod:`repro.kits` run their
payload scripts through these transforms; CrawlerBox must execute the
result (not grep it) to recover the hidden behaviour — which is why
URL extraction from scripts is dynamic in the pipeline.
"""

from __future__ import annotations

import base64
import random


def base64_eval_wrap(source: str) -> str:
    """Wrap a script in the classic ``eval(atob("..."))`` dropper."""
    encoded = base64.b64encode(source.encode("latin-1", errors="replace")).decode("ascii")
    return f'eval(atob("{encoded}"));'


def split_string_obfuscate(source: str, secret: str, rng: random.Random) -> str:
    """Hide ``secret`` inside ``source`` by splitting it into concatenated chunks.

    Every occurrence of ``secret`` in ``source`` is replaced by an
    expression like ``"htt"+"ps:/"+"/evi"+"l.com"`` so the secret never
    appears verbatim in the script text (defeating static extraction).
    """
    if secret not in source:
        return source
    chunks: list[str] = []
    index = 0
    while index < len(secret):
        size = rng.randint(2, 5)
        chunks.append(secret[index : index + size])
        index += size
    expression = "+".join('"' + chunk.replace("\\", "\\\\").replace('"', '\\"') + '"' for chunk in chunks)
    return source.replace(f'"{secret}"', "(" + expression + ")").replace(
        f"'{secret}'", "(" + expression + ")"
    )


def charcode_obfuscate(secret: str) -> str:
    """Return an expression rebuilding ``secret`` from character codes."""
    codes = ",".join(str(ord(char)) for char in secret)
    return f"String.fromCharCode({codes})"
