"""Tokeniser for the PhishScript JavaScript subset."""

from __future__ import annotations

from dataclasses import dataclass


class JSSyntaxError(SyntaxError):
    """Raised on malformed PhishScript source."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'str', 'template', 'ident', 'keyword', 'punct', 'eof'
    value: object
    position: int
    line: int


KEYWORDS = frozenset(
    {
        "var", "let", "const", "function", "return", "if", "else", "while",
        "for", "break", "continue", "true", "false", "null", "undefined",
        "new", "typeof", "this", "debugger", "throw", "try", "catch",
        "finally", "delete", "in", "of", "instanceof", "do", "switch",
        "case", "default", "void",
    }
)

# Longest first so maximal-munch works.
PUNCTUATORS = [
    "===", "!==", "**=", ">>>", "...",
    "=>", "==", "!=", "<=", ">=", "&&", "||", "??", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "**",
    "{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
    "%", "=", "!", "?", ":", ".", "&", "|", "^", "~",
]

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f", "v": "\v",
    "0": "\0", "\\": "\\", "'": "'", '"': '"', "`": "`", "\n": "",
}


class Lexer:
    """Converts PhishScript source into a token list."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.tokens: list[Token] = []

    # ------------------------------------------------------------------
    def error(self, message: str) -> JSSyntaxError:
        return JSSyntaxError(f"line {self.line}: {message}")

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        char = self.source[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
        return char

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                while self.position < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
                else:
                    raise self.error("unterminated block comment")
            elif char in "'\"":
                self._read_string(char)
            elif char == "`":
                self._read_template()
            elif char.isdigit() or (char == "." and self._peek(1).isdigit()):
                self._read_number()
            elif char.isalpha() or char in "_$":
                self._read_identifier()
            else:
                self._read_punctuator()
        self.tokens.append(Token("eof", None, self.position, self.line))
        return self.tokens

    # ------------------------------------------------------------------
    def _read_string(self, quote: str) -> None:
        start, line = self.position, self.line
        self._advance()
        parts: list[str] = []
        while True:
            if self.position >= len(self.source):
                raise self.error("unterminated string literal")
            char = self._advance()
            if char == quote:
                break
            if char == "\\":
                parts.append(self._read_escape())
            elif char == "\n":
                raise self.error("newline in string literal")
            else:
                parts.append(char)
        self.tokens.append(Token("str", "".join(parts), start, line))

    def _read_escape(self) -> str:
        if self.position >= len(self.source):
            raise self.error("bad escape at end of input")
        char = self._advance()
        if char == "x":
            digits = self.source[self.position : self.position + 2]
            if len(digits) != 2:
                raise self.error("bad \\x escape")
            self.position += 2
            return chr(int(digits, 16))
        if char == "u":
            if self._peek() == "{":
                self._advance()
                digits = ""
                while self._peek() != "}":
                    digits += self._advance()
                self._advance()
                return chr(int(digits, 16))
            digits = self.source[self.position : self.position + 4]
            if len(digits) != 4:
                raise self.error("bad \\u escape")
            self.position += 4
            return chr(int(digits, 16))
        return _ESCAPES.get(char, char)

    def _read_template(self) -> None:
        """Template literal -> list of ('str', s) / ('expr', source) parts."""
        start, line = self.position, self.line
        self._advance()  # backtick
        parts: list[tuple[str, str]] = []
        current: list[str] = []
        while True:
            if self.position >= len(self.source):
                raise self.error("unterminated template literal")
            char = self._advance()
            if char == "`":
                break
            if char == "\\":
                current.append(self._read_escape())
            elif char == "$" and self._peek() == "{":
                self._advance()
                if current:
                    parts.append(("str", "".join(current)))
                    current = []
                depth = 1
                expr_chars: list[str] = []
                while depth > 0:
                    if self.position >= len(self.source):
                        raise self.error("unterminated template expression")
                    inner = self._advance()
                    if inner == "{":
                        depth += 1
                    elif inner == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    expr_chars.append(inner)
                parts.append(("expr", "".join(expr_chars)))
            else:
                current.append(char)
        if current:
            parts.append(("str", "".join(current)))
        self.tokens.append(Token("template", parts, start, line))

    def _read_number(self) -> None:
        start, line = self.position, self.line
        text = ""
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance()
            self._advance()
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                text += self._advance()
            if not text:
                raise self.error("bad hex literal")
            self.tokens.append(Token("num", float(int(text, 16)), start, line))
            return
        while self._peek().isdigit():
            text += self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            text += self._advance()
            while self._peek().isdigit():
                text += self._advance()
        elif self._peek() == ".":
            text += self._advance()
        if self._peek() and self._peek() in "eE":
            text += self._advance()
            if self._peek() and self._peek() in "+-":
                text += self._advance()
            if not self._peek().isdigit():
                raise self.error(f"missing exponent digits in numeric literal {text!r}")
            while self._peek().isdigit():
                text += self._advance()
        self.tokens.append(Token("num", float(text), start, line))

    def _read_identifier(self) -> None:
        start, line = self.position, self.line
        text = ""
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            text += self._advance()
        kind = "keyword" if text in KEYWORDS else "ident"
        self.tokens.append(Token(kind, text, start, line))

    def _read_punctuator(self) -> None:
        start, line = self.position, self.line
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.position):
                for _ in punct:
                    self._advance()
                self.tokens.append(Token("punct", punct, start, line))
                return
        raise self.error(f"unexpected character {self._peek()!r}")


def tokenize(source: str) -> list[Token]:
    """Tokenise PhishScript source."""
    return Lexer(source).tokenize()
