"""Recursive-descent parser for the PhishScript JavaScript subset.

Parsed programs are cached in a small LRU keyed by a hash of the script
source: phishing kits deploy the same cloaking/anti-debug scripts on
every page of a campaign, so a corpus run re-lexes and re-parses the
same few hundred distinct scripts thousands of times.  The cache
returns the *same* ``Program`` object for identical sources — safe
because AST nodes are plain dataclasses that the interpreter never
mutates (all mutable evaluation state lives in ``Environment``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.js import nodes as ast
from repro.js.lexer import JSSyntaxError, Token, tokenize

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "|": 5, "^": 6, "&": 7,
    "==": 8, "!=": 8, "===": 8, "!==": 8,
    "<": 9, ">": 9, "<=": 9, ">=": 9, "in": 9, "instanceof": 9,
    "<<": 10, ">>": 10, ">>>": 10,
    "+": 11, "-": 11,
    "*": 12, "/": 12, "%": 12,
    "**": 13,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


class Parser:
    """Parses a token stream into a :class:`~repro.js.nodes.Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def at(self, kind: str, value: object = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def expect(self, kind: str, value: object = None) -> Token:
        token = self.peek()
        if not self.at(kind, value):
            raise JSSyntaxError(
                f"line {token.line}: expected {value or kind}, got {token.value!r}"
            )
        return self.advance()

    def eat(self, kind: str, value: object = None) -> bool:
        if self.at(kind, value):
            self.advance()
            return True
        return False

    def _eat_semicolon(self) -> None:
        """Consume an optional statement terminator (ASI is forgiving)."""
        self.eat("punct", ";")

    # ------------------------------------------------------------------
    # Program and statements
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        body = []
        while not self.at("eof"):
            body.append(self.parse_statement())
        return ast.Program(body)

    def parse_statement(self) -> ast.Node:
        token = self.peek()
        if token.kind == "punct" and token.value == "{":
            return self.parse_block()
        if token.kind == "punct" and token.value == ";":
            self.advance()
            return ast.Empty()
        if token.kind == "keyword":
            keyword = token.value
            if keyword in ("var", "let", "const"):
                statement = self.parse_var_decl()
                self._eat_semicolon()
                return statement
            if keyword == "function":
                return self.parse_function_decl()
            if keyword == "if":
                return self.parse_if()
            if keyword == "while":
                return self.parse_while()
            if keyword == "do":
                return self.parse_do_while()
            if keyword == "for":
                return self.parse_for()
            if keyword == "return":
                self.advance()
                value = None
                if not self.at("punct", ";") and not self.at("punct", "}") and not self.at("eof"):
                    value = self.parse_expression()
                self._eat_semicolon()
                return ast.Return(value)
            if keyword == "break":
                self.advance()
                self._eat_semicolon()
                return ast.Break()
            if keyword == "continue":
                self.advance()
                self._eat_semicolon()
                return ast.Continue()
            if keyword == "throw":
                self.advance()
                value = self.parse_expression()
                self._eat_semicolon()
                return ast.Throw(value)
            if keyword == "try":
                return self.parse_try()
            if keyword == "debugger":
                self.advance()
                self._eat_semicolon()
                return ast.Debugger()
            if keyword == "switch":
                return self.parse_switch()
        expression = self.parse_expression()
        self._eat_semicolon()
        return ast.ExprStatement(expression)

    def parse_block(self) -> ast.Block:
        self.expect("punct", "{")
        body = []
        while not self.at("punct", "}"):
            if self.at("eof"):
                raise JSSyntaxError("unexpected end of input in block")
            body.append(self.parse_statement())
        self.expect("punct", "}")
        return ast.Block(body)

    def parse_var_decl(self) -> ast.VarDecl:
        kind = self.advance().value
        declarations = []
        while True:
            name = self.expect("ident").value
            initializer = None
            if self.eat("punct", "="):
                initializer = self.parse_assignment()
            declarations.append((name, initializer))
            if not self.eat("punct", ","):
                break
        return ast.VarDecl(str(kind), declarations)

    def parse_function_decl(self) -> ast.FunctionDecl:
        self.expect("keyword", "function")
        name = self.expect("ident").value
        params = self.parse_params()
        body = self.parse_block().body
        return ast.FunctionDecl(str(name), params, body)

    def parse_params(self) -> list[str]:
        self.expect("punct", "(")
        params = []
        while not self.at("punct", ")"):
            params.append(str(self.expect("ident").value))
            if not self.eat("punct", ","):
                break
        self.expect("punct", ")")
        return params

    def parse_if(self) -> ast.If:
        self.expect("keyword", "if")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        consequent = self.parse_statement()
        alternate = None
        if self.eat("keyword", "else"):
            alternate = self.parse_statement()
        return ast.If(test, consequent, alternate)

    def parse_while(self) -> ast.While:
        self.expect("keyword", "while")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        return ast.While(test, self.parse_statement())

    def parse_do_while(self) -> ast.DoWhile:
        self.expect("keyword", "do")
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        self._eat_semicolon()
        return ast.DoWhile(test, body)

    def parse_for(self) -> ast.Node:
        self.expect("keyword", "for")
        self.expect("punct", "(")
        # for (x in y) / for (var x of y) forms.
        kind = None
        checkpoint = self.position
        if self.peek().kind == "keyword" and self.peek().value in ("var", "let", "const"):
            kind = str(self.advance().value)
        if self.peek().kind == "ident" and self.peek(1).kind == "keyword" and self.peek(1).value in ("in", "of"):
            name = str(self.advance().value)
            of = self.advance().value == "of"
            iterable = self.parse_expression()
            self.expect("punct", ")")
            return ast.ForIn(kind, name, of, iterable, self.parse_statement())
        self.position = checkpoint

        init = None
        if not self.at("punct", ";"):
            if self.peek().kind == "keyword" and self.peek().value in ("var", "let", "const"):
                init = self.parse_var_decl()
            else:
                init = ast.ExprStatement(self.parse_expression())
        self.expect("punct", ";")
        test = None if self.at("punct", ";") else self.parse_expression()
        self.expect("punct", ";")
        update = None if self.at("punct", ")") else self.parse_expression()
        self.expect("punct", ")")
        return ast.For(init, test, update, self.parse_statement())

    def parse_try(self) -> ast.Try:
        self.expect("keyword", "try")
        block = self.parse_block()
        param = None
        handler = None
        finalizer = None
        if self.eat("keyword", "catch"):
            if self.eat("punct", "("):
                param = str(self.expect("ident").value)
                self.expect("punct", ")")
            handler = self.parse_block()
        if self.eat("keyword", "finally"):
            finalizer = self.parse_block()
        if handler is None and finalizer is None:
            raise JSSyntaxError("try without catch or finally")
        return ast.Try(block, param, handler, finalizer)

    def parse_switch(self) -> ast.Switch:
        self.expect("keyword", "switch")
        self.expect("punct", "(")
        discriminant = self.parse_expression()
        self.expect("punct", ")")
        self.expect("punct", "{")
        cases = []
        while not self.at("punct", "}"):
            if self.eat("keyword", "case"):
                test = self.parse_expression()
            else:
                self.expect("keyword", "default")
                test = None
            self.expect("punct", ":")
            statements = []
            while not (
                self.at("keyword", "case")
                or self.at("keyword", "default")
                or self.at("punct", "}")
            ):
                statements.append(self.parse_statement())
            cases.append((test, statements))
        self.expect("punct", "}")
        return ast.Switch(discriminant, cases)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Node:
        expression = self.parse_assignment()
        if self.at("punct", ","):
            expressions = [expression]
            while self.eat("punct", ","):
                expressions.append(self.parse_assignment())
            return ast.Sequence(expressions)
        return expression

    def parse_assignment(self) -> ast.Node:
        arrow = self._try_parse_arrow()
        if arrow is not None:
            return arrow
        target = self.parse_conditional()
        token = self.peek()
        if token.kind == "punct" and token.value in _ASSIGN_OPS:
            if not isinstance(target, (ast.Identifier, ast.Member)):
                raise JSSyntaxError(f"line {token.line}: invalid assignment target")
            op = str(self.advance().value)
            value = self.parse_assignment()
            return ast.Assign(op, target, value)
        return target

    def _try_parse_arrow(self) -> ast.FunctionExpr | None:
        """Detect ``ident =>`` and ``(a, b) =>`` arrow functions."""
        token = self.peek()
        if token.kind == "ident" and self.peek(1).kind == "punct" and self.peek(1).value == "=>":
            name = str(self.advance().value)
            self.advance()  # =>
            return self._finish_arrow([name])
        if token.kind == "punct" and token.value == "(":
            # Scan ahead for ') =>'.
            depth = 0
            offset = 0
            while True:
                scan = self.peek(offset)
                if scan.kind == "eof":
                    return None
                if scan.kind == "punct" and scan.value == "(":
                    depth += 1
                elif scan.kind == "punct" and scan.value == ")":
                    depth -= 1
                    if depth == 0:
                        break
                offset += 1
            after = self.peek(offset + 1)
            if not (after.kind == "punct" and after.value == "=>"):
                return None
            params = self.parse_params()
            self.expect("punct", "=>")
            return self._finish_arrow(params)
        return None

    def _finish_arrow(self, params: list[str]) -> ast.FunctionExpr:
        if self.at("punct", "{"):
            body = self.parse_block().body
        else:
            body = [ast.Return(self.parse_assignment())]
        return ast.FunctionExpr(None, params, body, is_arrow=True)

    def parse_conditional(self) -> ast.Node:
        test = self.parse_logical_or()
        if self.eat("punct", "?"):
            consequent = self.parse_assignment()
            self.expect("punct", ":")
            alternate = self.parse_assignment()
            return ast.Conditional(test, consequent, alternate)
        return test

    def parse_logical_or(self) -> ast.Node:
        left = self.parse_logical_and()
        while self.at("punct", "||") or self.at("punct", "??"):
            op = str(self.advance().value)
            left = ast.Logical(op, left, self.parse_logical_and())
        return left

    def parse_logical_and(self) -> ast.Node:
        left = self.parse_binary(0)
        while self.at("punct", "&&"):
            self.advance()
            left = ast.Logical("&&", left, self.parse_binary(0))
        return left

    def parse_binary(self, min_precedence: int) -> ast.Node:
        left = self.parse_unary()
        while True:
            token = self.peek()
            op = None
            if token.kind == "punct" and token.value in _BINARY_PRECEDENCE:
                op = str(token.value)
            elif token.kind == "keyword" and token.value in ("in", "instanceof"):
                op = str(token.value)
            if op is None:
                return left
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            self.advance()
            right = self.parse_binary(precedence + 1)
            left = ast.Binary(op, left, right)

    def parse_unary(self) -> ast.Node:
        token = self.peek()
        if token.kind == "punct" and token.value in ("!", "-", "+", "~"):
            self.advance()
            return ast.Unary(str(token.value), self.parse_unary())
        if token.kind == "keyword" and token.value in ("typeof", "void", "delete"):
            self.advance()
            return ast.Unary(str(token.value), self.parse_unary())
        if token.kind == "punct" and token.value in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Update(str(token.value), operand, prefix=True)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Node:
        expression = self.parse_call_member()
        token = self.peek()
        if token.kind == "punct" and token.value in ("++", "--"):
            self.advance()
            return ast.Update(str(token.value), expression, prefix=False)
        return expression

    def parse_call_member(self) -> ast.Node:
        if self.at("keyword", "new"):
            self.advance()
            callee = self.parse_call_member_base()
            args: list = []
            if self.at("punct", "("):
                args = self.parse_args()
            expression: ast.Node = ast.New(callee, args)
        else:
            expression = self.parse_call_member_base()
        while True:
            if self.eat("punct", "."):
                name_token = self.peek()
                if name_token.kind not in ("ident", "keyword"):
                    raise JSSyntaxError(f"line {name_token.line}: expected property name")
                self.advance()
                expression = ast.Member(expression, ast.Identifier(str(name_token.value)), computed=False)
            elif self.at("punct", "["):
                self.advance()
                prop = self.parse_expression()
                self.expect("punct", "]")
                expression = ast.Member(expression, prop, computed=True)
            elif self.at("punct", "("):
                expression = ast.Call(expression, self.parse_args())
            else:
                return expression

    def parse_call_member_base(self) -> ast.Node:
        """Primary expression that may itself contain member accesses."""
        return self.parse_primary()

    def parse_args(self) -> list:
        self.expect("punct", "(")
        args = []
        while not self.at("punct", ")"):
            args.append(self.parse_assignment())
            if not self.eat("punct", ","):
                break
        self.expect("punct", ")")
        return args

    def parse_primary(self) -> ast.Node:
        token = self.peek()
        if token.kind == "num" or token.kind == "str":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "template":
            self.advance()
            parts: list = []
            for kind, text in token.value:  # type: ignore[union-attr]
                if kind == "str":
                    parts.append(("str", text))
                else:
                    parts.append(("expr", parse_expression_source(text)))
            return ast.TemplateLiteral(parts)
        if token.kind == "keyword":
            keyword = token.value
            if keyword == "true":
                self.advance()
                return ast.Literal(True)
            if keyword == "false":
                self.advance()
                return ast.Literal(False)
            if keyword == "null":
                self.advance()
                return ast.Literal(None)
            if keyword == "undefined":
                self.advance()
                return ast.Identifier("undefined")
            if keyword == "this":
                self.advance()
                return ast.ThisExpr()
            if keyword == "function":
                self.advance()
                name = None
                if self.peek().kind == "ident":
                    name = str(self.advance().value)
                params = self.parse_params()
                body = self.parse_block().body
                return ast.FunctionExpr(name, params, body)
        if token.kind == "ident":
            self.advance()
            return ast.Identifier(str(token.value))
        if token.kind == "punct":
            if token.value == "(":
                self.advance()
                expression = self.parse_expression()
                self.expect("punct", ")")
                return expression
            if token.value == "[":
                self.advance()
                elements = []
                while not self.at("punct", "]"):
                    elements.append(self.parse_assignment())
                    if not self.eat("punct", ","):
                        break
                self.expect("punct", "]")
                return ast.ArrayLiteral(elements)
            if token.value == "{":
                return self.parse_object_literal()
        raise JSSyntaxError(f"line {token.line}: unexpected token {token.value!r}")

    def parse_object_literal(self) -> ast.ObjectLiteral:
        self.expect("punct", "{")
        entries = []
        while not self.at("punct", "}"):
            key_token = self.peek()
            if key_token.kind in ("ident", "keyword", "str"):
                key = str(self.advance().value)
            elif key_token.kind == "num":
                value = self.advance().value
                key = str(int(value)) if float(value).is_integer() else str(value)  # type: ignore[arg-type]
            else:
                raise JSSyntaxError(f"line {key_token.line}: bad object key")
            if self.at("punct", "("):  # shorthand method: name() {}
                params = self.parse_params()
                body = self.parse_block().body
                entries.append((key, ast.FunctionExpr(key, params, body)))
            elif self.eat("punct", ":"):
                entries.append((key, self.parse_assignment()))
            else:  # shorthand property {name}
                entries.append((key, ast.Identifier(key)))
            if not self.eat("punct", ","):
                break
        self.expect("punct", "}")
        return ast.ObjectLiteral(entries)


class _ParseCache:
    """Thread-safe LRU of parsed programs keyed by source hash."""

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._programs: OrderedDict[bytes, ast.Program] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(source: str) -> bytes:
        return hashlib.blake2b(source.encode("utf-8"), digest_size=16).digest()

    def get(self, key: bytes) -> ast.Program | None:
        with self._lock:
            program = self._programs.get(key)
            if program is None:
                self.misses += 1
                return None
            self._programs.move_to_end(key)
            self.hits += 1
            return program

    def put(self, key: bytes, program: ast.Program) -> None:
        with self._lock:
            self._programs[key] = program
            self._programs.move_to_end(key)
            while len(self._programs) > self.maxsize:
                self._programs.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._programs),
                "maxsize": self.maxsize,
            }


_PARSE_CACHE = _ParseCache()


def parse_cache_info() -> dict:
    """Hit/miss/size counters of the shared parse cache."""
    return _PARSE_CACHE.info()


def clear_parse_cache() -> None:
    """Drop all cached programs and reset the counters."""
    _PARSE_CACHE.clear()


def parse(source: str, use_cache: bool = True) -> ast.Program:
    """Parse PhishScript source into a program AST (LRU-cached)."""
    if not use_cache:
        return Parser(tokenize(source)).parse_program()
    key = _ParseCache.key(source)
    program = _PARSE_CACHE.get(key)
    if program is None:
        program = Parser(tokenize(source)).parse_program()
        _PARSE_CACHE.put(key, program)
    return program


def parse_expression_source(source: str) -> ast.Node:
    """Parse a standalone expression (used for template interpolations)."""
    parser = Parser(tokenize(source))
    expression = parser.parse_expression()
    parser.expect("eof")
    return expression
