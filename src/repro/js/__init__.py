"""PhishScript: a JavaScript-subset engine for client-side cloaking.

The paper's phishing kits hide their logic in (frequently base64-
obfuscated) JavaScript executed in the victim's browser: fingerprint
checks on ``navigator``/``Intl``, console-method hijacking, ``debugger``
timing loops, victim-email validation with AJAX calls to C2 servers.
Section IV-B stresses that "dynamic analysis in our case is fundamental
given the use of obfuscation to hide malicious URLs".

To make that dynamic-analysis requirement real, this subpackage
implements a small JavaScript interpreter:

- :mod:`~repro.js.lexer` — tokeniser (strings, template literals,
  numbers, comments, multi-character operators).
- :mod:`~repro.js.nodes` — AST node definitions.
- :mod:`~repro.js.parser` — recursive-descent parser for the subset
  (functions, closures, control flow, objects/arrays, ``new``, ternary,
  ``typeof``, ``debugger``, try/catch).
- :mod:`~repro.js.interp` — tree-walking evaluator with host-object
  interop, a step budget, and a working ``eval`` (needed to run the
  base64-``eval`` droppers found in the wild).
- :mod:`~repro.js.stdlib` — ``atob``/``btoa``, ``console``, ``JSON``,
  ``Math``, string/array methods, ``RegExp``.
- :mod:`~repro.js.obfuscate` — the obfuscation transforms kits apply
  (base64-eval wrapping, string splitting, hex escapes).
"""

from repro.js.interp import Interpreter, JSError, JSObject, JSTimeoutError, UNDEFINED
from repro.js.obfuscate import base64_eval_wrap, split_string_obfuscate

__all__ = [
    "Interpreter",
    "JSObject",
    "JSError",
    "JSTimeoutError",
    "UNDEFINED",
    "base64_eval_wrap",
    "split_string_obfuscate",
]
