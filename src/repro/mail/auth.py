"""Email authentication: SPF, DKIM, and DMARC.

Section V-C.1: "All the reported messages pass the three email
authentication methods [...] This means that they are either sent from
legitimate, well established email addresses or from compromised or
malicious accounts."  Attackers control or compromise the sending
infrastructure, so authentication *succeeds* — which is exactly why it
cannot be relied on as a phishing signal.

The evaluation is a real (if compact) implementation: SPF checks the
sending IP against the domain's published senders, DKIM checks the
signature's validity and signing domain, DMARC requires alignment of
one passing mechanism with the From: domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DomainMailPolicy:
    """What a domain publishes in DNS (SPF record, DKIM keys, DMARC)."""

    domain: str
    spf_allowed_ips: frozenset[str] = frozenset()
    dkim_selectors: frozenset[str] = frozenset({"default"})
    dmarc_policy: str = "reject"  # 'none' | 'quarantine' | 'reject'


@dataclass
class MailAuthDns:
    """The DNS-published mail policies of the simulated internet."""

    policies: dict[str, DomainMailPolicy] = field(default_factory=dict)

    def publish(self, policy: DomainMailPolicy) -> None:
        self.policies[policy.domain.lower()] = policy

    def lookup(self, domain: str) -> DomainMailPolicy | None:
        return self.policies.get(domain.lower())


@dataclass(frozen=True)
class AuthResults:
    """The Authentication-Results a receiving server would stamp."""

    spf: str  # 'pass' | 'fail' | 'none'
    dkim: str
    dmarc: str

    @property
    def all_pass(self) -> bool:
        return self.spf == "pass" and self.dkim == "pass" and self.dmarc == "pass"


def evaluate_authentication(message, dns: MailAuthDns) -> AuthResults:
    """Evaluate SPF/DKIM/DMARC for a message against published policies."""
    from_domain = message.sender_domain
    sending_domain = (message.sending_domain or from_domain).lower()

    policy = dns.lookup(sending_domain)
    if policy is None:
        spf = "none"
        dkim = "none"
    else:
        spf = "pass" if message.sending_ip in policy.spf_allowed_ips else "fail"
        dkim = "pass" if message.dkim_signed and policy.dkim_selectors else "fail"

    # DMARC: at least one of SPF/DKIM must pass *and* align with From:.
    aligned = sending_domain == from_domain or sending_domain.endswith("." + from_domain)
    if aligned and (spf == "pass" or dkim == "pass"):
        dmarc = "pass"
    else:
        from_policy = dns.lookup(from_domain)
        dmarc = "fail" if from_policy is not None else "none"
    return AuthResults(spf=spf, dkim=dkim, dmarc=dmarc)
