"""Real-world RFC-822 ingestion: ``.eml`` files -> :class:`EmailMessage`.

The corpus generator fabricates messages; this module maps *real*
reported samples (e.g. the ``phishing_pot`` collection of user-reported
phishing, one RFC-822 file per message) onto the same
:class:`~repro.mail.message.EmailMessage` model, so the runner can
analyze real-world corpora with the exact pipeline used for the
calibrated study.

Mapping notes:

- ``Date:`` becomes :attr:`EmailMessage.delivered_at` in hours relative
  to a study epoch (default: 2024-01-01 UTC, the start of the paper's
  measurement window).  Messages without a parseable date land at 0.0.
- Base64 content-transfer-encoded text parts stay base64-encoded in the
  part model — that encoding *is* one of the Section III-A message
  evasions, and the parser's decode step must see it.
- Binary attachments (images, PDFs, archives) are wrapped as
  :class:`~repro.mail.attachments.FileBlob` with their genuine leading
  bytes, so magic-number sniffing works; their payloads stay raw bytes
  (real PNG/PDF internals are outside the simulated formats, and the
  parser skips payloads it cannot model).
- ``message/rfc822`` attachments recurse into nested EmailMessages.
"""

from __future__ import annotations

import email
import email.policy
import email.utils
import pathlib
import re
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.mail.attachments import FileBlob
from repro.mail.message import ContentType, EmailMessage, MessagePart

#: Start of the paper's measurement window (hours are counted from here).
DEFAULT_EPOCH = datetime(2024, 1, 1, tzinfo=timezone.utc)


class IngestError(ValueError):
    """One input that cannot be mapped onto the message model.

    Raised per *file*, never per directory: corpus ingestion treats an
    undecodable sample as that sample's problem (it lands in the ingest
    report's quarantine list) and keeps going — one hostile or truncated
    ``.eml`` must not abort a 10k-message corpus."""

_RECEIVED_IP_RE = re.compile(r"\[(\d{1,3}(?:\.\d{1,3}){3})\]")


def _address(value: str | None, fallback: str) -> str:
    if not value:
        return fallback
    _, address = email.utils.parseaddr(str(value))
    return address or fallback


def _delivered_hours(message, epoch: datetime) -> float:
    raw = message.get("Date")
    if not raw:
        return 0.0
    try:
        moment = email.utils.parsedate_to_datetime(str(raw))
    except (TypeError, ValueError):
        return 0.0
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    return (moment - epoch).total_seconds() / 3600.0


def _sending_ip(message) -> str:
    """The first relay IP in the Received chain, when present."""
    for received in message.get_all("Received", []):
        match = _RECEIVED_IP_RE.search(str(received))
        if match:
            return match.group(1)
    return "198.51.100.10"


def _text_part(part, content_type_label: str) -> MessagePart:
    body = part.get_content()
    base64_encoded = (part.get("Content-Transfer-Encoding") or "").strip().lower() == "base64"
    filename = part.get_filename() or ""
    inline = part.get_content_disposition() != "attachment"
    if content_type_label == ContentType.HTML:
        return MessagePart.html(body, base64_encode=base64_encoded, filename=filename, inline=inline)
    return MessagePart.text(body, base64_encode=base64_encoded, filename=filename, inline=inline)


def _binary_part(part) -> MessagePart:
    payload = part.get_payload(decode=True) or b""
    filename = part.get_filename() or "attachment.bin"
    blob = FileBlob(name=filename, leading_bytes=payload[:16], payload=payload)
    return MessagePart(
        ContentType.OCTET_STREAM,
        blob,
        filename=filename,
        inline=part.get_content_disposition() != "attachment",
    )


def _convert_leaf(part) -> MessagePart | None:
    content_type = part.get_content_type()
    if content_type == "text/plain":
        return _text_part(part, ContentType.TEXT)
    if content_type == "text/html":
        return _text_part(part, ContentType.HTML)
    if content_type == "message/rfc822":
        payload = part.get_payload()
        inner = payload[0] if isinstance(payload, list) else payload
        nested = _convert_message(inner, DEFAULT_EPOCH)
        return MessagePart(
            ContentType.EML, nested, filename=part.get_filename() or "", inline=False
        )
    if content_type.startswith("multipart/"):
        return None  # containers are walked, never emitted
    return _binary_part(part)


def _convert_message(parsed, epoch: datetime) -> EmailMessage:
    sender = _address(parsed.get("From"), "unknown@example.com")
    recipient = _address(
        parsed.get("To") or parsed.get("Delivered-To"), "employee@corp.example"
    )
    headers: dict[str, str] = {}
    for name, value in parsed.items():
        headers.setdefault(name, str(value))

    message = EmailMessage(
        sender=sender,
        recipient=recipient,
        subject=str(parsed.get("Subject") or ""),
        delivered_at=_delivered_hours(parsed, epoch),
        headers=headers,
        sending_domain=_address(parsed.get("Return-Path"), sender).rsplit("@", 1)[-1].lower(),
        sending_ip=_sending_ip(parsed),
        dkim_signed="DKIM-Signature" in parsed,
        ground_truth={"source": "eml"},
    )

    for leaf in _iter_leaves(parsed):
        converted = _convert_leaf(leaf)
        if converted is not None:
            message.add_part(converted)
    return message


def _iter_leaves(parsed):
    """Direct leaves only: unlike ``Message.walk`` this does NOT descend
    into ``message/rfc822`` attachments — those convert recursively into
    nested EmailMessages, and descending here would duplicate their
    parts at the top level."""
    if parsed.get_content_maintype() == "multipart":
        for sub in parsed.get_payload():
            yield from _iter_leaves(sub)
    else:
        yield parsed


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def ingest_eml_bytes(data: bytes, epoch: datetime = DEFAULT_EPOCH) -> EmailMessage:
    """Parse one RFC-822 message from raw bytes.

    Raises :class:`IngestError` when the bytes are not a message at all
    (no header could be parsed — e.g. a binary blob or an empty file)
    or when conversion onto the message model fails (undeclared
    charsets, hopelessly malformed MIME structure).
    """
    try:
        parsed = email.message_from_bytes(data, policy=email.policy.default)
    except Exception as error:  # the compat parser can still choke on NULs etc.
        raise IngestError(f"unparseable RFC-822 input: {error!r}") from error
    if not parsed.keys():
        raise IngestError("not an RFC-822 message: no headers parsed")
    try:
        return _convert_message(parsed, epoch)
    except IngestError:
        raise
    except Exception as error:  # noqa: BLE001 - any conversion crash is this file's defect
        raise IngestError(f"message conversion failed: {error!r}") from error


def ingest_eml_text(text: str, epoch: datetime = DEFAULT_EPOCH) -> EmailMessage:
    """Parse one RFC-822 message from text (useful in tests)."""
    return ingest_eml_bytes(text.encode("utf-8", errors="replace"), epoch=epoch)


def ingest_eml_file(path: str | pathlib.Path, epoch: datetime = DEFAULT_EPOCH) -> EmailMessage:
    """Parse one ``.eml`` file."""
    message = ingest_eml_bytes(pathlib.Path(path).read_bytes(), epoch=epoch)
    message.ground_truth["source"] = str(path)
    return message


@dataclass
class IngestReport:
    """What a directory ingestion produced: messages plus the files it
    had to skip, each with a machine-readable reason."""

    messages: list[EmailMessage] = field(default_factory=list)
    #: One ``{"path": ..., "reason": ...}`` entry per skipped file — the
    #: ingest-side analogue of a pipeline quarantine record.
    skipped: list[dict] = field(default_factory=list)


def ingest_directory_report(
    directory: str | pathlib.Path,
    pattern: str = "*.eml",
    epoch: datetime = DEFAULT_EPOCH,
) -> IngestReport:
    """Ingest every matching file under ``directory`` (sorted by name),
    skipping — not aborting on — files that cannot be read or parsed.

    The message list feeds straight into
    :meth:`repro.runner.runner.CorpusRunner.run` — message index is
    position among the *successfully ingested* files in the sorted
    listing, so resume semantics hold as long as the directory contents
    do not change between runs.
    """
    report = IngestReport()
    for path in sorted(pathlib.Path(directory).glob(pattern)):
        try:
            report.messages.append(ingest_eml_file(path, epoch=epoch))
        except (OSError, IngestError) as error:
            reason = (
                str(error) if isinstance(error, IngestError) else f"unreadable: {error!r}"
            )
            report.skipped.append({"path": str(path), "reason": reason})
    return report


def ingest_directory(
    directory: str | pathlib.Path,
    pattern: str = "*.eml",
    epoch: datetime = DEFAULT_EPOCH,
) -> list[EmailMessage]:
    """:func:`ingest_directory_report` without the skip list (legacy
    shape); defective files are skipped silently here."""
    return ingest_directory_report(directory, pattern=pattern, epoch=epoch).messages
