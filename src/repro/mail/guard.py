"""Quarantine ingestion guard: structural limits on hostile messages.

The pipeline analyzes *adversarial* artifacts; related measurement work
shows malformed and deliberately pathological message bodies are
pervasive in the wild.  Before a message enters the stage plan, the
guard walks its part tree **iteratively** (a recursive walk is exactly
what a 1000-deep MIME chain attacks) and checks structural limits:

=====================  =============================================
limit                  attack it stops
=====================  =============================================
``mime-depth``         deeply nested multipart/EML chains that blow
                       the parser's recursion
``part-count``         part-count bombs (thousands of leaves)
``rfc822-depth``       ``message/rfc822`` recursion chains
``header-count``       header-count bombs
``header-bytes``       single multi-megabyte header values
``decoded-bytes``      one part whose decoded payload is huge
                       (base64 bombs — estimated *without* decoding)
``total-decoded-bytes`` whole-message decompression amplification
``archive-entries``    zip bombs: archives expanding into thousands
                       of recursive entries
=====================  =============================================

A violation never raises: :meth:`MessageGuard.inspect` returns a
structured :class:`QuarantineReport` (headline reason, every violation
with observed-vs-limit, partial headers for triage) that the pipeline
attaches to a ``quarantined`` MessageRecord.  The guard itself is
bounded: size estimates never materialize decoded payloads, and the
walk stops charging past ``2 * max_parts`` objects.

Determinism: the report is a pure function of the message, so
quarantine decisions are byte-identical across workers and backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.mail.attachments import ArchiveFile, FileBlob, HtaFile
from repro.mail.message import EmailMessage, MessagePart

#: Headers preserved (truncated) on a quarantined record for triage.
_TRIAGE_HEADERS = ("From", "To", "Subject", "Date", "Message-ID", "Return-Path")
_TRIAGE_VALUE_LIMIT = 256


@dataclass(frozen=True)
class GuardLimits:
    """Structural caps; defaults are far above anything the calibrated
    corpus generator (or a legitimate reporter) produces."""

    max_depth: int = 16
    max_parts: int = 512
    max_rfc822_depth: int = 8
    max_headers: int = 256
    max_header_bytes: int = 16_384
    max_decoded_bytes: int = 4 << 20
    max_total_decoded_bytes: int = 16 << 20
    max_archive_entries: int = 512


#: Every tunable limit name, in declaration order — the vocabulary the
#: CLI's repeatable ``--guard-limit key=value`` validates against.
GUARD_LIMIT_KEYS: tuple[str, ...] = tuple(f.name for f in fields(GuardLimits))


class GuardLimitError(ValueError):
    """An override names an unknown limit or a non-positive value."""


def parse_guard_limit(spec: str) -> tuple[str, int]:
    """One ``key=value`` override -> a validated ``(key, value)`` pair.

    Unknown keys are rejected with the full vocabulary in the message so
    a typo (``max_part=...``) fails loudly instead of silently leaving
    the default cap in place.
    """
    key, separator, value = spec.partition("=")
    key = key.strip()
    if not separator:
        raise GuardLimitError(
            f"expected key=value, got {spec!r} (keys: {', '.join(GUARD_LIMIT_KEYS)})"
        )
    if key not in GUARD_LIMIT_KEYS:
        raise GuardLimitError(
            f"unknown guard limit {key!r}; valid keys: {', '.join(GUARD_LIMIT_KEYS)}"
        )
    try:
        cap = int(value)
    except ValueError:
        raise GuardLimitError(f"guard limit {key} needs an integer, got {value!r}") from None
    if cap < 1:
        raise GuardLimitError(f"guard limit {key} must be >= 1, got {cap}")
    return key, cap


def guard_limits_from_overrides(
    overrides: tuple[tuple[str, int], ...] | None,
) -> GuardLimits | None:
    """Apply ``(key, value)`` overrides to the default caps.

    ``None``/empty means "no overrides" and returns None so callers can
    distinguish "defaults" from "explicitly the default values" (the
    pipeline treats a None limits object as the stock GuardLimits).
    The pair form — rather than a GuardLimits instance — is what travels
    inside the picklable RunnerConfig to process workers.
    """
    if not overrides:
        return None
    limits = GuardLimits()
    for key, cap in overrides:
        if key not in GUARD_LIMIT_KEYS:
            raise GuardLimitError(
                f"unknown guard limit {key!r}; valid keys: {', '.join(GUARD_LIMIT_KEYS)}"
            )
        limits = replace(limits, **{key: int(cap)})
    return limits


@dataclass(frozen=True)
class GuardViolation:
    """One exceeded limit: what was observed, where, and the cap."""

    limit: str
    observed: int
    cap: int
    path: str = ""

    def as_dict(self) -> dict:
        return {"limit": self.limit, "observed": self.observed, "cap": self.cap, "path": self.path}

    @classmethod
    def from_dict(cls, data: dict) -> "GuardViolation":
        return cls(
            limit=data["limit"],
            observed=data["observed"],
            cap=data["cap"],
            path=data.get("path", ""),
        )


@dataclass
class QuarantineReport:
    """Why a message was quarantined instead of analyzed."""

    reason: str
    violations: tuple[GuardViolation, ...] = ()
    headers: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "reason": self.reason,
            "violations": [violation.as_dict() for violation in self.violations],
            "headers": dict(self.headers),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineReport":
        return cls(
            reason=data["reason"],
            violations=tuple(
                GuardViolation.from_dict(item) for item in data.get("violations") or ()
            ),
            headers=dict(data.get("headers") or {}),
        )


def triage_headers(message: EmailMessage) -> dict[str, str]:
    """The partial header set preserved on a quarantined record."""
    headers: dict[str, str] = {
        "From": message.sender,
        "To": message.recipient,
        "Subject": message.subject,
    }
    for name in _TRIAGE_HEADERS:
        value = message.headers.get(name)
        if value is not None:
            headers[name] = str(value)
    return {name: value[:_TRIAGE_VALUE_LIMIT] for name, value in headers.items()}


def _estimated_decoded_size(part: MessagePart) -> int:
    """Upper-bound decoded size of one part *without* decoding it.

    Base64 text decodes to ~3/4 of its encoded length; structured
    payloads (images, PDFs) are sized from their dimensions.  Container
    payloads (archives, nested messages) are sized by the walk itself,
    so they contribute 0 here.
    """
    content = part.content
    if isinstance(content, str):
        if part.transfer_encoding == "base64":
            return len(content) * 3 // 4
        return len(content)
    return _object_size(content)


def _object_size(obj: object) -> int:
    if isinstance(obj, (str, bytes)):
        return len(obj)
    pixels = getattr(obj, "pixels", None)
    if pixels is not None:  # imaging.Image: one byte per channel sample
        return int(pixels.size)
    pages = getattr(obj, "pages", None)
    if pages is not None:  # PdfDocument: text + embedded images
        total = 0
        for page in pages:
            total += sum(len(line) for line in getattr(page, "text_lines", ()))
            total += sum(int(image.pixels.size) for image in getattr(page, "images", ()))
        return total
    if isinstance(obj, HtaFile):
        return len(obj.markup)
    return 0


class MessageGuard:
    """Validates one message against :class:`GuardLimits`."""

    def __init__(self, limits: GuardLimits | None = None):
        self.limits = limits or GuardLimits()

    # ------------------------------------------------------------------
    def inspect(self, message: EmailMessage) -> QuarantineReport | None:
        """A :class:`QuarantineReport` when any limit is exceeded, else None."""
        limits = self.limits
        violations: list[GuardViolation] = []

        n_headers = len(message.headers)
        if n_headers > limits.max_headers:
            violations.append(
                GuardViolation("header-count", n_headers, limits.max_headers)
            )
        for name, value in message.headers.items():
            size = len(name) + len(str(value))
            if size > limits.max_header_bytes:
                violations.append(
                    GuardViolation("header-bytes", size, limits.max_header_bytes, path=name)
                )
                break  # one oversized header is reason enough

        violations.extend(self._walk(message))
        if not violations:
            return None
        head = violations[0]
        reason = f"{head.limit} {head.observed} exceeds limit {head.cap}"
        if head.path:
            reason += f" at {head.path}"
        return QuarantineReport(
            reason=reason,
            violations=tuple(violations),
            headers=triage_headers(message),
        )

    # ------------------------------------------------------------------
    def _walk(self, message: EmailMessage) -> list[GuardViolation]:
        """Iterative part-tree walk collecting structural violations.

        Each stack entry is ``(object, depth, rfc822_depth, path)``;
        depth counts every container nesting level, rfc822_depth only
        nested messages.  The walk is bounded: it stops enumerating
        once ``2 * max_parts`` objects have been visited (the count
        violation is already recorded by then).
        """
        limits = self.limits
        violations: list[GuardViolation] = []
        seen_limits: set[str] = set()

        def note(limit: str, observed: int, cap: int, path: str) -> None:
            if limit in seen_limits:
                return  # first occurrence carries the diagnosis
            seen_limits.add(limit)
            violations.append(GuardViolation(limit, observed, cap, path=path))

        stack: list[tuple[object, int, int, str]] = [(message, 0, 0, "")]
        visited = 0
        total_decoded = 0
        hard_stop = 2 * limits.max_parts
        while stack:
            obj, depth, rfc_depth, path = stack.pop()
            visited += 1
            if visited > limits.max_parts:
                note("part-count", visited, limits.max_parts, path)
                if visited > hard_stop:
                    break
            if depth > limits.max_depth:
                note("mime-depth", depth, limits.max_depth, path)
                continue  # no need to enumerate deeper levels
            if rfc_depth > limits.max_rfc822_depth:
                note("rfc822-depth", rfc_depth, limits.max_rfc822_depth, path)
                continue

            if isinstance(obj, EmailMessage):
                for position, part in enumerate(obj.parts):
                    stack.append((part, depth + 1, rfc_depth, f"{path}/{position}"))
            elif isinstance(obj, MessagePart):
                size = _estimated_decoded_size(obj)
                total_decoded += size
                if size > limits.max_decoded_bytes:
                    note("decoded-bytes", size, limits.max_decoded_bytes, path)
                if isinstance(obj.content, EmailMessage):
                    # The part itself consumed the mime-depth level;
                    # message recursion is tracked by its own counter so
                    # an rfc822 chain is diagnosed as rfc822-depth, not
                    # as generic nesting.
                    stack.append((obj.content, depth, rfc_depth + 1, path))
                elif isinstance(obj.content, (ArchiveFile, FileBlob)):
                    stack.append((obj.content, depth, rfc_depth, path))
            elif isinstance(obj, ArchiveFile):
                n_entries = len(obj.entries)
                if n_entries > limits.max_archive_entries:
                    note("archive-entries", n_entries, limits.max_archive_entries, path)
                for position, (name, content) in enumerate(obj.entries):
                    stack.append((content, depth + 1, rfc_depth, f"{path}/{name or position}"))
            elif isinstance(obj, FileBlob):
                payload = obj.payload
                if isinstance(payload, EmailMessage):
                    stack.append((payload, depth, rfc_depth + 1, path))
                elif isinstance(payload, (ArchiveFile, FileBlob)):
                    stack.append((payload, depth + 1, rfc_depth, path))
                else:
                    size = _object_size(payload)
                    total_decoded += size
                    if size > limits.max_decoded_bytes:
                        note("decoded-bytes", size, limits.max_decoded_bytes, path)
            else:
                size = _object_size(obj)
                total_decoded += size
                if size > limits.max_decoded_bytes:
                    note("decoded-bytes", size, limits.max_decoded_bytes, path)

            if total_decoded > limits.max_total_decoded_bytes:
                note(
                    "total-decoded-bytes",
                    total_decoded,
                    limits.max_total_decoded_bytes,
                    path,
                )
                break
        return violations
