"""Email substrate: messages, authentication, and the parsing phase.

Models the structures CrawlerBox consumes (Section IV-B): multipart
messages whose parts may be text, HTML, images (with OCR'd text or QR
codes), PDFs, ZIP archives, binary blobs identified by magic numbers,
or nested EML messages — processed recursively.

- :mod:`~repro.mail.message` — the message/part model.
- :mod:`~repro.mail.auth` — SPF/DKIM/DMARC evaluation (every reported
  message in the paper passed all three).
- :mod:`~repro.mail.attachments` — PDF documents, archives, file blobs
  with magic numbers, HTA droppers.
- :mod:`~repro.mail.textscan` — static URL extraction from text.
- :mod:`~repro.mail.parser` — the recursive walker producing an
  :class:`~repro.mail.parser.ExtractionReport` with full provenance for
  every URL found.
"""

from repro.mail.message import EmailMessage, MessagePart, ContentType
from repro.mail.auth import AuthResults, evaluate_authentication
from repro.mail.attachments import ArchiveFile, FileBlob, HtaFile
from repro.mail.ingest import ingest_directory, ingest_eml_bytes, ingest_eml_file, ingest_eml_text
from repro.mail.parser import EmailParser, ExtractedUrl, ExtractionReport
from repro.mail.textscan import extract_urls_from_text

__all__ = [
    "ingest_directory",
    "ingest_eml_bytes",
    "ingest_eml_file",
    "ingest_eml_text",
    "EmailMessage",
    "MessagePart",
    "ContentType",
    "AuthResults",
    "evaluate_authentication",
    "ArchiveFile",
    "FileBlob",
    "HtaFile",
    "EmailParser",
    "ExtractionReport",
    "ExtractedUrl",
    "extract_urls_from_text",
]
