"""Static URL extraction from text and markup."""

from __future__ import annotations

import re

from repro.web.urls import UrlError, parse_url

#: URLs in free text: scheme through the last URL-safe character.
_TEXT_URL_RE = re.compile(r"https?://[^\s\"'<>()\[\]{}]+", re.IGNORECASE)

#: href/src/action attribute values in markup.
_ATTR_URL_RE = re.compile(
    r"""(?:href|src|action)\s*=\s*["']?(https?://[^\s"'<>]+)""", re.IGNORECASE
)


def normalize_url(candidate: str) -> str | None:
    """Parse and canonicalise a URL (lowercase scheme and host)."""
    try:
        parsed = parse_url(candidate)
    except UrlError:
        return None
    rest = candidate.split("://", 1)[1]
    host_end = len(rest.split("/", 1)[0].split("?", 1)[0].split("#", 1)[0])
    tail = rest[host_end:]
    port = "" if parsed.port in (80, 443) else f":{parsed.port}"
    if ":" in rest[:host_end]:
        return f"{parsed.scheme}://{parsed.host}{port}{tail}"
    return f"{parsed.scheme}://{parsed.host}{tail}"


def extract_urls_from_text(text: str) -> list[str]:
    """All http(s) URLs appearing in free text, deduplicated in order."""
    found: list[str] = []
    seen: set[str] = set()
    for match in _TEXT_URL_RE.finditer(text):
        normalized = normalize_url(match.group(0).rstrip(".,;:!?"))
        if normalized is not None and normalized not in seen:
            seen.add(normalized)
            found.append(normalized)
    return found


def extract_urls_from_markup(markup: str) -> list[str]:
    """URLs in markup: attributes first, then any free-text occurrences."""
    found: list[str] = []
    seen: set[str] = set()
    for match in _ATTR_URL_RE.finditer(markup):
        normalized = normalize_url(match.group(1))
        if normalized is not None and normalized not in seen:
            seen.add(normalized)
            found.append(normalized)
    for url in extract_urls_from_text(markup):
        if url not in seen:
            seen.add(url)
            found.append(url)
    return found
