"""CrawlerBox's parsing phase: recursive part walking + URL extraction.

Implements the methodology list of Section IV-B verbatim:

- URLs are statically extracted from text-based formats.
- Images are scanned with OCR and for QR codes (URLs carved from QR
  payloads with the *lenient* mobile-style extractor, so faulty QR codes
  do not escape analysis).
- PDFs: (1) URI annotations and text URLs, (2) per-page screenshots
  analysed like images.
- Octet-stream blobs are classified by magic number and re-dispatched.
- HTML/JavaScript is collected for dynamic loading by the crawler (the
  pipeline stage; the parser also performs static markup extraction).
- ZIP archives are unpacked and every entry analysed appropriately.
- EML attachments are processed recursively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.imaging.image import Image
from repro.imaging.ocr import ocr_image
from repro.mail.attachments import ArchiveFile, FileBlob, HtaFile
from repro.mail.message import ContentType, EmailMessage, MessagePart
from repro.mail.textscan import extract_urls_from_markup, extract_urls_from_text
from repro.pdfdoc.document import PdfDocument
from repro.qr.decoder import QRDecodeError
from repro.qr.locator import QRLocateError
from repro.qr.scanner import decode_qr_image, extract_url_lenient, extract_url_strict


@dataclass(frozen=True)
class ExtractedUrl:
    """A URL with full provenance."""

    url: str
    method: str  # 'text' | 'html-static' | 'ocr' | 'qr' | 'pdf-annotation' | ...
    part_path: str  # e.g. 'part[1]/zip:invoice.html'


@dataclass
class ExtractionReport:
    """Everything the parsing phase recovered from one message."""

    urls: list[ExtractedUrl] = field(default_factory=list)
    #: (part_path, markup) pairs queued for dynamic browser analysis.
    html_documents: list[tuple[str, str]] = field(default_factory=list)
    #: Part paths whose HTML is an *attachment* the victim opens locally
    #: (as opposed to the rendered message body).
    html_attachment_paths: set[str] = field(default_factory=set)
    #: QR payloads seen, with the part path (faulty payloads included).
    qr_payloads: list[tuple[str, str]] = field(default_factory=list)
    #: HTA droppers found (recorded, never executed).
    hta_files: list[tuple[str, HtaFile]] = field(default_factory=list)
    #: Concatenated visible text across all parts.
    text: str = ""
    #: Content types encountered (for the prevalence statistics).
    content_types: list[str] = field(default_factory=list)

    def unique_urls(self) -> list[str]:
        seen: set[str] = set()
        ordered: list[str] = []
        for item in self.urls:
            if item.url not in seen:
                seen.add(item.url)
                ordered.append(item.url)
        return ordered

    def add_url(self, url: str | None, method: str, path: str) -> None:
        if url:
            self.urls.append(ExtractedUrl(url=url, method=method, part_path=path))


class EmailParser:
    """The recursive message parser.

    ``lenient_qr`` selects the QR payload-to-URL policy: CrawlerBox uses
    the lenient mobile-style extraction; setting it False reproduces the
    strict behaviour of the email filters the faulty-QR bug defeats.
    """

    def __init__(self, lenient_qr: bool = True, decode_base64_text: bool = True):
        self.lenient_qr = lenient_qr
        self.decode_base64_text = decode_base64_text

    # ------------------------------------------------------------------
    def parse(self, message: EmailMessage) -> ExtractionReport:
        report = ExtractionReport()
        text_chunks: list[str] = []
        self._walk_message(message, "", report, text_chunks)
        report.text = "\n".join(chunk for chunk in text_chunks if chunk)
        return report

    # ------------------------------------------------------------------
    def _walk_message(
        self,
        message: EmailMessage,
        prefix: str,
        report: ExtractionReport,
        text_chunks: list[str],
    ) -> None:
        for index, part in enumerate(message.parts):
            path = f"{prefix}part[{index}]"
            self._walk_part(part, path, report, text_chunks)

    def _walk_part(
        self,
        part: MessagePart,
        path: str,
        report: ExtractionReport,
        text_chunks: list[str],
    ) -> None:
        report.content_types.append(part.content_type)
        content = part.content

        if part.content_type in (ContentType.TEXT, ContentType.RTF):
            text = part.decoded_text() if self.decode_base64_text else str(content)
            text_chunks.append(text)
            for url in extract_urls_from_text(text):
                report.add_url(url, "text", path)
        elif part.content_type == ContentType.HTML:
            markup = part.decoded_text() if self.decode_base64_text else str(content)
            report.html_documents.append((path, markup))
            if not part.inline or part.filename:
                report.html_attachment_paths.add(path)
            for url in extract_urls_from_markup(markup):
                report.add_url(url, "html-static", path)
        elif part.content_type.startswith("image/"):
            if isinstance(content, Image):
                self._scan_image(content, path, report, text_chunks)
        elif part.content_type == ContentType.PDF:
            if isinstance(content, PdfDocument):
                self._scan_pdf(content, path, report, text_chunks)
        elif part.content_type == ContentType.ZIP:
            if isinstance(content, ArchiveFile):
                self._scan_archive(content, path, report, text_chunks)
        elif part.content_type == ContentType.OCTET_STREAM:
            if isinstance(content, FileBlob):
                self._scan_blob(content, path, report, text_chunks)
        elif part.content_type == ContentType.EML:
            if isinstance(content, EmailMessage):
                self._walk_message(content, f"{path}/eml:", report, text_chunks)

    # ------------------------------------------------------------------
    def _scan_image(
        self, image: Image, path: str, report: ExtractionReport, text_chunks: list[str]
    ) -> None:
        # OCR pass: text rendered into the image (including URLs).
        result = ocr_image(image)
        if result.text.strip():
            text_chunks.append(result.text)
            for url in extract_urls_from_text(result.text.lower()):
                report.add_url(url, "ocr", path)
        # QR pass.
        try:
            payload = decode_qr_image(image)
        except (QRLocateError, QRDecodeError):
            return
        report.qr_payloads.append((path, payload))
        extractor = extract_url_lenient if self.lenient_qr else extract_url_strict
        report.add_url(extractor(payload), "qr", path)

    def _scan_pdf(
        self, pdf: PdfDocument, path: str, report: ExtractionReport, text_chunks: list[str]
    ) -> None:
        # Strategy 1: embedded URI annotations and text URLs.
        for uri in pdf.all_uri_annotations():
            report.add_url(uri, "pdf-annotation", path)
        text = pdf.all_text()
        text_chunks.append(text)
        for url in extract_urls_from_text(text):
            report.add_url(url, "pdf-text", path)
        # Strategy 2: rasterise each page, analyse like an image.
        for page_index, raster in enumerate(pdf.rasterize_pages()):
            self._scan_image(raster, f"{path}/page[{page_index}]", report, text_chunks)

    def _scan_archive(
        self, archive: ArchiveFile, path: str, report: ExtractionReport, text_chunks: list[str]
    ) -> None:
        for name, entry in archive.entries:
            entry_path = f"{path}/zip:{name}"
            self._dispatch_object(entry, name, entry_path, report, text_chunks)

    def _scan_blob(
        self, blob: FileBlob, path: str, report: ExtractionReport, text_chunks: list[str]
    ) -> None:
        kind = blob.sniffed_kind()
        blob_path = f"{path}/blob:{blob.name}({kind})"
        if kind == "unknown":
            return
        self._dispatch_object(blob.payload, blob.name, blob_path, report, text_chunks)

    def _dispatch_object(
        self, obj: object, name: str, path: str, report: ExtractionReport, text_chunks: list[str]
    ) -> None:
        """Route an extracted file object to the appropriate scanner."""
        if isinstance(obj, Image):
            self._scan_image(obj, path, report, text_chunks)
        elif isinstance(obj, PdfDocument):
            self._scan_pdf(obj, path, report, text_chunks)
        elif isinstance(obj, ArchiveFile):
            self._scan_archive(obj, path, report, text_chunks)
        elif isinstance(obj, EmailMessage):
            self._walk_message(obj, f"{path}/eml:", report, text_chunks)
        elif isinstance(obj, HtaFile):
            report.hta_files.append((path, obj))
            # Record (but never fetch or execute) the remote script URL.
            report.add_url(obj.remote_script_url, "hta-reference", path)
        elif isinstance(obj, FileBlob):
            self._scan_blob(obj, path, report, text_chunks)
        elif isinstance(obj, str):
            lowered = obj.lstrip().lower()
            if lowered.startswith(("<html", "<!doctype")) or name.lower().endswith((".html", ".htm")):
                report.html_documents.append((path, obj))
                report.html_attachment_paths.add(path)
                for url in extract_urls_from_markup(obj):
                    report.add_url(url, "html-static", path)
            else:
                text_chunks.append(obj)
                for url in extract_urls_from_text(obj):
                    report.add_url(url, "text", path)
