"""The email message / MIME-part model.

A message is a header map plus a list of parts; parts may nest (EML
attachments contain whole messages, ZIP archives contain files that may
themselves be parsed).  Text parts may carry a base64
content-transfer-encoding — one of the message-level evasions of
Section III-A ("parts of the message are encoded in Base64") that naive
filters fail to decode.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field


class ContentType:
    """The content types the paper lists as most prevalent (Section IV-B)."""

    TEXT = "text/plain"
    HTML = "text/html"
    IMAGE = "image/png"
    PDF = "application/pdf"
    ZIP = "application/zip"
    OCTET_STREAM = "application/octet-stream"
    EML = "message/rfc822"
    RTF = "text/rtf"


@dataclass
class MessagePart:
    """One MIME part.

    ``content`` is typed by ``content_type``:

    - text/plain, text/rtf, text/html -> ``str`` (possibly base64-encoded
      when ``transfer_encoding == 'base64'``)
    - image/* -> :class:`repro.imaging.image.Image`
    - application/pdf -> :class:`repro.pdfdoc.document.PdfDocument`
    - application/zip -> :class:`repro.mail.attachments.ArchiveFile`
    - application/octet-stream -> :class:`repro.mail.attachments.FileBlob`
    - message/rfc822 -> :class:`EmailMessage`
    """

    content_type: str
    content: object
    filename: str = ""
    transfer_encoding: str = ""  # '' or 'base64'
    inline: bool = True

    def decoded_text(self) -> str:
        """The text content with any transfer encoding removed."""
        if not isinstance(self.content, str):
            raise TypeError(f"part {self.content_type} does not hold text")
        if self.transfer_encoding == "base64":
            return base64.b64decode(self.content.encode("ascii")).decode("utf-8", errors="replace")
        return self.content

    @classmethod
    def text(cls, body: str, base64_encode: bool = False, **kwargs) -> "MessagePart":
        if base64_encode:
            encoded = base64.b64encode(body.encode("utf-8")).decode("ascii")
            return cls(ContentType.TEXT, encoded, transfer_encoding="base64", **kwargs)
        return cls(ContentType.TEXT, body, **kwargs)

    @classmethod
    def html(cls, markup: str, base64_encode: bool = False, **kwargs) -> "MessagePart":
        if base64_encode:
            encoded = base64.b64encode(markup.encode("utf-8")).decode("ascii")
            return cls(ContentType.HTML, encoded, transfer_encoding="base64", **kwargs)
        return cls(ContentType.HTML, markup, **kwargs)


@dataclass
class EmailMessage:
    """A delivered email as the reporting pipeline sees it."""

    sender: str = "unknown@example.com"
    recipient: str = "employee@corp.example"
    subject: str = ""
    #: Delivery timestamp in hours since the study epoch.
    delivered_at: float = 0.0
    headers: dict[str, str] = field(default_factory=dict)
    parts: list[MessagePart] = field(default_factory=list)
    #: Domain whose infrastructure sent the message (for SPF/DKIM).
    sending_domain: str = ""
    sending_ip: str = "198.51.100.10"
    #: Whether the sending service signed the message (DKIM).
    dkim_signed: bool = True
    #: Ground-truth metadata attached by the corpus generator; the
    #: pipeline never reads it — tests and calibration checks do.
    ground_truth: dict = field(default_factory=dict)

    @property
    def sender_domain(self) -> str:
        return self.sender.rsplit("@", 1)[-1].lower() if "@" in self.sender else ""

    def add_part(self, part: MessagePart) -> "EmailMessage":
        self.parts.append(part)
        return self

    def body_text(self) -> str:
        """Concatenated decoded text of all top-level text parts."""
        chunks = []
        for part in self.parts:
            if part.content_type in (ContentType.TEXT, ContentType.RTF) and isinstance(part.content, str):
                chunks.append(part.decoded_text())
        return "\n".join(chunks)
