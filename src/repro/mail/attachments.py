"""Attachment containers: archives, typed blobs, HTA droppers.

Octet-stream attachments are "analyzed according to their file
signature determined by magic numbers" (Section IV-B): a
:class:`FileBlob` carries genuine leading bytes for sniffing plus the
structured payload.  ZIP archives unpack into named entries that are
re-dispatched; the five download-leading messages of Section V
contained archives with HTA files that fetch remote JavaScript — which
CrawlerBox deliberately does **not** execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ZIP_MAGIC = b"PK\x03\x04"
HTML_MAGICS = (b"<html", b"<!DOCTYPE", b"<HTML")
EML_MAGICS = (b"Received:", b"From:", b"Return-Path:")


@dataclass
class ArchiveFile:
    """A ZIP-style archive: named entries with typed contents."""

    entries: list[tuple[str, object]] = field(default_factory=list)

    def add(self, name: str, content: object) -> "ArchiveFile":
        self.entries.append((name, content))
        return self

    @property
    def magic_bytes(self) -> bytes:
        return ZIP_MAGIC

    def names(self) -> list[str]:
        return [name for name, _ in self.entries]


@dataclass
class HtaFile:
    """An HTML Application dropper.

    HTAs run with full user privileges under mshta.exe; the observed
    samples fetch a JavaScript payload from a malicious domain.
    CrawlerBox records the remote URL but never executes the file.
    """

    name: str
    remote_script_url: str
    markup: str = ""

    def __post_init__(self):
        if not self.markup:
            self.markup = (
                "<html><head><hta:application id=\"dropper\"/>"
                f"<script src=\"{self.remote_script_url}\"></script>"
                "</head><body></body></html>"
            )


@dataclass
class FileBlob:
    """An application/octet-stream attachment with sniffable leading bytes."""

    name: str
    leading_bytes: bytes
    payload: object  # the structured content behind the magic

    def sniffed_kind(self) -> str:
        """Classify by magic number, as the parser does."""
        from repro.pdfdoc.document import PDF_MAGIC

        if self.leading_bytes.startswith(PDF_MAGIC):
            return "pdf"
        if self.leading_bytes.startswith(ZIP_MAGIC):
            return "zip"
        for magic in HTML_MAGICS:
            if self.leading_bytes.lstrip().lower().startswith(magic.lower()):
                return "html"
        for magic in EML_MAGICS:
            if self.leading_bytes.startswith(magic):
                return "eml"
        if self.leading_bytes.startswith(b"\x89PNG"):
            return "image"
        return "unknown"

    @classmethod
    def wrapping(cls, name: str, payload: object) -> "FileBlob":
        """Build a blob with leading bytes matching the payload's type."""
        from repro.imaging.image import Image
        from repro.mail.message import EmailMessage
        from repro.pdfdoc.document import PdfDocument

        if isinstance(payload, PdfDocument):
            return cls(name, payload.magic_bytes + b"1.7", payload)
        if isinstance(payload, ArchiveFile):
            return cls(name, payload.magic_bytes, payload)
        if isinstance(payload, Image):
            return cls(name, b"\x89PNG\r\n\x1a\n", payload)
        if isinstance(payload, EmailMessage):
            return cls(name, b"Received: from simulated", payload)
        if isinstance(payload, str) and payload.lstrip().lower().startswith(("<html", "<!doctype")):
            return cls(name, payload[:16].encode("utf-8", errors="replace"), payload)
        return cls(name, b"\x00\x01\x02\x03", payload)
