"""repro — reproduction of "A Closer Look At Modern Evasive Phishing Emails".

A full re-implementation of the paper's analysis infrastructure
(CrawlerBox + NotABot) together with the simulated substrates needed to
run the ten-month measurement study offline: a synthetic internet with
DNS/TLS/WHOIS, a scriptable browser with a JavaScript-subset engine,
bot-detection services (BotD, Turnstile, a commercial WAF, reCAPTCHA
v3), phishing-kit families implementing every observed evasion, and a
corpus generator calibrated to the paper's published numbers.

Quickstart::

    from repro import CorpusGenerator, CrawlerBox
    from repro.core.report import summarize

    corpus = CorpusGenerator(seed=2024, scale=0.05).generate()
    box = CrawlerBox.for_world(corpus.world)
    records = box.analyze_corpus(corpus.messages)
    print(summarize(records).category_counts)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.core import CrawlerBox, PipelineConfig
from repro.core.report import KeyFindings, summarize
from repro.crawlers import NotABot, assess_all_crawlers
from repro.dataset import CALIBRATION, CorpusGenerator, World
from repro.mail import EmailMessage, EmailParser
from repro.runner import CheckpointStore, CorpusRunner, RetryPolicy, RunningStats

__version__ = "1.1.0"

__all__ = [
    "CrawlerBox",
    "PipelineConfig",
    "NotABot",
    "assess_all_crawlers",
    "CorpusGenerator",
    "World",
    "CALIBRATION",
    "CheckpointStore",
    "CorpusRunner",
    "RetryPolicy",
    "RunningStats",
    "EmailMessage",
    "EmailParser",
    "KeyFindings",
    "summarize",
    "__version__",
]
