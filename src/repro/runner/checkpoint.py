"""Durable run state: an append-only JSONL record store + a manifest.

Layout of a checkpoint directory::

    <checkpoint>/
        records.jsonl   one serialized MessageRecord per line, written
                        in completion order (NOT message order)
        manifest.json   run identity (seed, scale, jobs, config) and
                        progress (total / completed / dead letters)

Records reuse the exact serialization of :mod:`repro.core.export`, so a
checkpoint can be promoted to the monolithic artifact format (or the
Section V statistics recomputed) without re-crawling anything.  Appends
flush per line: a killed run loses at most the line being written, and
:meth:`CheckpointStore.completed_indices` ignores a torn final line.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass, field

from repro.core.artifacts import MessageRecord
from repro.core.export import record_from_dict, record_to_line

MANIFEST_VERSION = 1


@dataclass
class RunManifest:
    """Everything needed to reconstruct and resume a run."""

    seed: int = 0
    scale: float = 0.0
    jobs: int = 1
    total_messages: int = 0
    completed: int = 0
    status: str = "running"  # 'running' | 'complete' | 'failed'
    dead_letters: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    faults: str = "off"
    fault_seed: int = 0
    manifest_version: int = MANIFEST_VERSION

    def as_dict(self) -> dict:
        return {
            "manifest_version": self.manifest_version,
            "seed": self.seed,
            "scale": self.scale,
            "jobs": self.jobs,
            "total_messages": self.total_messages,
            "completed": self.completed,
            "status": self.status,
            "dead_letters": self.dead_letters,
            "stats": self.stats,
            "faults": self.faults,
            "fault_seed": self.fault_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {version!r}")
        return cls(
            seed=data["seed"],
            scale=data["scale"],
            jobs=data["jobs"],
            total_messages=data["total_messages"],
            completed=data["completed"],
            status=data["status"],
            dead_letters=list(data["dead_letters"]),
            stats=dict(data["stats"]),
            # Absent in manifests written before fault injection existed.
            faults=data.get("faults", "off"),
            fault_seed=data.get("fault_seed", 0),
        )


class CheckpointStore:
    """One run's durable state under a single directory."""

    RECORDS_NAME = "records.jsonl"
    MANIFEST_NAME = "manifest.json"

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.records_path = self.directory / self.RECORDS_NAME
        self.manifest_path = self.directory / self.MANIFEST_NAME
        self._lock = threading.Lock()
        self._handle = None

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def append(self, record: MessageRecord) -> None:
        """Append one finished record, flushed so a kill loses <= 1 line."""
        line = record_to_line(record)
        with self._lock:
            if self._handle is None:
                self._handle = self.records_path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def _iter_lines(self):
        if not self.records_path.exists():
            return
        with self.records_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line from a killed writer: everything
                    # before it is intact, the interrupted record will
                    # simply be re-analyzed on resume.
                    continue

    def completed_indices(self) -> set[int]:
        """Message indices with a durable record (resume skips these)."""
        return {data["message_index"] for data in self._iter_lines()}

    def load_records(self) -> list[MessageRecord]:
        """All durable records, sorted into corpus (message index) order.

        If a record was appended twice (a job finished right as the run
        was killed, then re-ran on resume), the last append wins.
        """
        by_index: dict[int, MessageRecord] = {}
        for data in self._iter_lines():
            record = record_from_dict(data)
            by_index[record.message_index] = record
        return [by_index[index] for index in sorted(by_index)]

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, manifest: RunManifest) -> None:
        payload = json.dumps(manifest.as_dict(), indent=2, sort_keys=True)
        with self._lock:
            # Atomic replace: readers never observe a half-written manifest.
            temp = self.manifest_path.with_suffix(".json.tmp")
            temp.write_text(payload, encoding="utf-8")
            temp.replace(self.manifest_path)

    def read_manifest(self) -> RunManifest | None:
        if not self.manifest_path.exists():
            return None
        return RunManifest.from_dict(json.loads(self.manifest_path.read_text(encoding="utf-8")))
