"""Durable run state: an append-only JSONL record store + a manifest.

Layout of a checkpoint directory::

    <checkpoint>/
        records.jsonl   one serialized MessageRecord per line, written
                        in completion order (NOT message order)
        manifest.json   run identity (seed, scale, jobs, config) and
                        progress (total / completed / dead letters)

Records reuse the exact serialization of :mod:`repro.core.export`, so a
checkpoint can be promoted to the monolithic artifact format (or the
Section V statistics recomputed) without re-crawling anything.  Appends
flush per line: a killed run loses at most the line being written.

Line format (v2): every appended line carries a CRC32 suffix ::

    {"message_index":17,...}\t#crc32=9f3a1c02

The separator is a literal TAB — impossible inside the compact JSON
payload (``json.dumps`` escapes control characters) — so the suffix is
unambiguous.  Lines without a suffix are v1 (pre-CRC checkpoints) and
remain fully readable.  The checksum lets :meth:`CheckpointStore.scan`
distinguish two failure modes that look identical to a plain JSON
parse:

- **torn tail** — the *final* line is incomplete because the writer was
  killed mid-append.  Expected and tolerated: the interrupted record is
  simply re-analyzed on resume.
- **interior corruption** — a non-final line fails its CRC or does not
  parse (bit rot, truncation followed by further appends, hostile
  editing).  Silent data loss if ignored: resume would re-analyze the
  missing index (best case) or ``load_records`` would silently drop a
  completed result.  ``scan`` reports these; ``repro fsck`` (see
  :mod:`repro.cli`) validates, salvages intact lines to a repaired
  checkpoint, and prints exactly what was lost.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass, field

from repro.core.artifacts import MessageRecord
from repro.core.export import (
    CRC_SEPARATOR_BYTES as _CRC_SEPARATOR_BYTES,
)
from repro.core.export import (
    CRC_SEPARATOR as _CRC_SEPARATOR,
)
from repro.core.export import (
    crc_suffix as _crc_suffix,
)
from repro.core.export import (
    encode_record_line,
    record_from_dict,
    record_to_line,
    record_to_wire,
)
from repro.storage.durable import (
    DEFAULT_DURABILITY,
    DurableFile,
    durable_write_text,
    note_durable_record,
    retrying,
    validate_durability,
)

MANIFEST_VERSION = 1

#: Line-format generation written by :meth:`CheckpointStore.append`.
#: v1 = bare compact JSON; v2 = JSON + TAB + ``#crc32=<8 hex digits>``.
#: The framing primitives themselves (separator, CRC, encoder) live in
#: :mod:`repro.core.export` so workers can render records to their
#: final wire bytes; ``encode_record_line`` is re-exported here.
RECORDS_FORMAT_VERSION = 2


class ManifestCorrupt(ValueError):
    """``manifest.json`` exists but does not parse (torn write, bit rot).

    Carries an actionable hint instead of a raw ``JSONDecodeError`` so
    ``resume``/``fsck`` can tell the operator what to do next.
    """

    def __init__(self, path: pathlib.Path, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(
            f"{path} is torn or corrupt ({reason}); run "
            f"`repro fsck {path.parent} --repair <dest>` to salvage the "
            f"intact records, then resume the repaired checkpoint"
        )


def parse_record_line(line: str) -> tuple[dict | None, str | None]:
    """Decode one checkpoint line -> ``(data, issue)``.

    Exactly one of the pair is None: ``data`` is the parsed record dict
    for a valid line (v1 or v2), ``issue`` a short machine-readable
    defect kind (``crc-mismatch`` | ``bad-json``) otherwise.
    """
    payload, separator, crc = line.rpartition(_CRC_SEPARATOR)
    if separator:
        if _crc_suffix(payload) != crc:
            return None, "crc-mismatch"
        source = payload
    else:
        source = line  # v1 line from a pre-CRC checkpoint
    try:
        return json.loads(source), None
    except json.JSONDecodeError:
        return None, "bad-json"


@dataclass(frozen=True)
class LineIssue:
    """One defective line found by :meth:`CheckpointStore.scan`."""

    line_number: int  # 1-based position in records.jsonl
    kind: str  # 'crc-mismatch' | 'bad-json' | 'bad-encoding' | 'missing-index'
    detail: str = ""
    #: True for the expected kill-mid-append artifact: the *final* line
    #: failed to decode.  Tolerated (the record re-runs on resume);
    #: everything else is interior corruption.
    torn_tail: bool = False


@dataclass
class CheckpointScan:
    """Full integrity pass over ``records.jsonl``."""

    entries: list[dict] = field(default_factory=list)
    issues: list[LineIssue] = field(default_factory=list)
    total_lines: int = 0

    @property
    def corruption(self) -> list[LineIssue]:
        """Issues that are NOT the tolerated torn tail."""
        return [issue for issue in self.issues if not issue.torn_tail]

    @property
    def indices(self) -> set[int]:
        return {entry["message_index"] for entry in self.entries}


@dataclass(frozen=True)
class CompactionResult:
    """What one :meth:`CheckpointStore.compact` pass did."""

    lines_before: int
    lines_after: int
    #: Superseded appends dropped (an older record for a message index
    #: that was appended again later — last append wins).
    duplicates_dropped: int
    #: Defective lines dropped (CRC mismatch, bad JSON, bad encoding,
    #: missing index) — the compacted file is ``fsck``-clean.
    corrupt_dropped: int
    #: Oldest-index records dropped by a ``retain`` cap (0 = no cap hit).
    retired: int
    bytes_before: int
    bytes_after: int

    @property
    def reclaimed_bytes(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)


@dataclass
class RunManifest:
    """Everything needed to reconstruct and resume a run."""

    seed: int = 0
    scale: float = 0.0
    jobs: int = 1
    total_messages: int = 0
    completed: int = 0
    #: Batch lifecycle: 'running' | 'complete' | 'failed' | 'interrupted'.
    #: Service lifecycle (``repro serve``): 'serving' while the daemon is
    #: live, 'stopped' after a clean drain — distinct states so a daemon
    #: restart is distinguishable from an interrupted batch run (a bare
    #: ``resume`` on either service state is an actionable error).
    status: str = "running"
    dead_letters: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    faults: str = "off"
    fault_seed: int = 0
    #: Storage fault weather (``--storage-faults``), kept so a bare
    #: ``resume`` reproduces the interrupted run's disk weather the
    #: same way ``faults`` reproduces its network weather.  Emitted
    #: only when not "off" so default-path manifests stay byte-
    #: identical to pre-storage-fault ones.
    storage_faults: str = "off"
    storage_fault_seed: int = 0
    #: Message indices checkpointed *after* a drain was requested — the
    #: in-flight work a graceful shutdown waited for.  Only populated
    #: when ``status == 'interrupted'``.
    drained: list[int] = field(default_factory=list)
    #: ``--budget`` work-unit override (None = pipeline default), kept
    #: so a bare ``resume`` reproduces the interrupted run's limits.
    budget: int | None = None
    #: ``--guard-limit`` overrides as ``[key, value]`` pairs, kept for
    #: the same reason as ``budget``.  None/empty = guard defaults.
    guard_limits: list | None = None
    #: Service-mode state (``repro serve`` only): submission counters,
    #: the next message index, and the admission-controller snapshot a
    #: restarted daemon restores so replaying the remaining transcript
    #: sheds and accepts exactly as an uninterrupted daemon would.
    #: None for batch runs — the key is omitted so batch manifests stay
    #: byte-identical to pre-service ones.
    service: dict | None = None
    manifest_version: int = MANIFEST_VERSION

    def as_dict(self) -> dict:
        data = {
            "manifest_version": self.manifest_version,
            "seed": self.seed,
            "scale": self.scale,
            "jobs": self.jobs,
            "total_messages": self.total_messages,
            "completed": self.completed,
            "status": self.status,
            "dead_letters": self.dead_letters,
            "stats": self.stats,
            "faults": self.faults,
            "fault_seed": self.fault_seed,
        }
        # Optional keys are emitted only when they carry information so
        # pre-existing manifests' key sets are preserved byte-for-byte.
        if self.storage_faults != "off":
            data["storage_faults"] = self.storage_faults
            data["storage_fault_seed"] = self.storage_fault_seed
        if self.drained:
            data["drained"] = list(self.drained)
        if self.budget is not None:
            data["budget"] = self.budget
        if self.guard_limits:
            data["guard_limits"] = [list(pair) for pair in self.guard_limits]
        if self.service is not None:
            data["service"] = self.service
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {version!r}")
        return cls(
            seed=data["seed"],
            scale=data["scale"],
            jobs=data["jobs"],
            total_messages=data["total_messages"],
            completed=data["completed"],
            status=data["status"],
            dead_letters=list(data["dead_letters"]),
            stats=dict(data["stats"]),
            # Absent in manifests written before fault injection existed.
            faults=data.get("faults", "off"),
            fault_seed=data.get("fault_seed", 0),
            storage_faults=data.get("storage_faults", "off"),
            storage_fault_seed=data.get("storage_fault_seed", 0),
            drained=list(data.get("drained") or ()),
            budget=data.get("budget"),
            guard_limits=data.get("guard_limits"),
            service=data.get("service"),
        )

    @property
    def is_service(self) -> bool:
        """True when this checkpoint belongs to a ``repro serve`` daemon."""
        return self.service is not None or self.status in ("serving", "stopped")


class CheckpointStore:
    """One run's durable state under a single directory."""

    RECORDS_NAME = "records.jsonl"
    MANIFEST_NAME = "manifest.json"

    #: Temp-file name left behind when a compaction pass crashes (or a
    #: torn-rename fault fires) — kept for post-crash inspection; the
    #: live records file is never half-written.
    COMPACT_TMP_SUFFIX = ".compact.tmp"

    def __init__(
        self,
        directory: str | pathlib.Path,
        crc: bool = True,
        durability: str = DEFAULT_DURABILITY,
    ):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.records_path = self.directory / self.RECORDS_NAME
        self.manifest_path = self.directory / self.MANIFEST_NAME
        #: Write v2 CRC-suffixed lines (readers accept both formats
        #: regardless); ``crc=False`` exists for writing v1 fixtures
        #: and for overhead benchmarking.
        self.crc = crc
        self.durability = validate_durability(durability)
        self._lock = threading.Lock()
        self._durable = DurableFile(self.records_path, durability=durability)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def append(self, record: MessageRecord) -> None:
        """Append one finished record, flushed so a kill loses <= 1 line."""
        if self.crc:
            self._append_bytes(record_to_wire(record))
        else:
            self._append_bytes(record_to_line(record).encode("utf-8"))

    def append_wire(self, wire: bytes) -> None:
        """Append one *worker-serialized* record line (compact JSON +
        CRC suffix, no newline) without parsing or re-rendering it —
        the parent side of the process backend's hot loop."""
        if not self.crc:
            payload, separator, _ = wire.rpartition(_CRC_SEPARATOR_BYTES)
            if separator:
                wire = payload
        self._append_bytes(wire)

    def _append_bytes(self, data: bytes) -> None:
        # Bounded retry rides out transient ENOSPC/EIO (DurableFile
        # truncated the partial write, so the retry appends onto a
        # clean tail); a persistent failure propagates to the caller.
        with self._lock:
            retrying(lambda: self._durable.append(data + b"\n"))
        note_durable_record()

    def sync(self) -> None:
        """Force records to stable storage now (manifest boundaries)."""
        with self._lock:
            retrying(self._durable.sync)

    def close(self) -> None:
        with self._lock:
            self._durable.close()

    # ------------------------------------------------------------------
    def scan(self) -> CheckpointScan:
        """Validate every line of ``records.jsonl``.

        Returns the parsed entries plus a :class:`LineIssue` per
        defective line; only a defect on the *final* line is classified
        as a tolerated torn tail.  A well-formed line without a
        ``message_index`` is reported as ``missing-index`` corruption —
        it cannot be resumed from or loaded, no matter how valid its
        JSON is.  The file is read as bytes and decoded line by line:
        corruption that destroys the UTF-8 encoding itself (a flipped
        high bit, for instance) is reported as ``bad-encoding`` rather
        than aborting the whole pass.
        """
        scan = CheckpointScan()
        if not self.records_path.exists():
            return scan
        chunks = self.records_path.read_bytes().split(b"\n")
        if chunks and not chunks[-1]:
            chunks.pop()  # trailing newline, not an empty final line
        raw_lines: list[tuple[int, str | None, bytes]] = []
        for line_number, chunk in enumerate(chunks, start=1):
            scan.total_lines = line_number
            try:
                text = chunk.decode("utf-8").strip()
            except UnicodeDecodeError:
                raw_lines.append((line_number, None, chunk))
                continue
            if text:
                raw_lines.append((line_number, text, chunk))
        last_line_number = raw_lines[-1][0] if raw_lines else 0
        for line_number, line, chunk in raw_lines:
            if line is None:
                scan.issues.append(
                    LineIssue(
                        line_number=line_number,
                        kind="bad-encoding",
                        detail=repr(chunk[:60]),
                        torn_tail=line_number == last_line_number,
                    )
                )
                continue
            data, defect = parse_record_line(line)
            if defect is not None:
                scan.issues.append(
                    LineIssue(
                        line_number=line_number,
                        kind=defect,
                        detail=line[:80],
                        torn_tail=line_number == last_line_number,
                    )
                )
                continue
            if data.get("message_index") is None:
                scan.issues.append(
                    LineIssue(
                        line_number=line_number,
                        kind="missing-index",
                        detail=line[:80],
                    )
                )
                continue
            scan.entries.append(data)
        return scan

    def _iter_lines(self):
        """Parsed dicts of every intact, indexable line (legacy shim:
        silently skips defective lines — use :meth:`scan` to *see*
        them)."""
        yield from self.scan().entries

    def completed_indices(self) -> set[int]:
        """Message indices with a durable record (resume skips these)."""
        return self.scan().indices

    def load_records(self) -> list[MessageRecord]:
        """All durable records, sorted into corpus (message index) order.

        If a record was appended twice (a job finished right as the run
        was killed, then re-ran on resume), the last append wins.
        """
        by_index: dict[int, MessageRecord] = {}
        for data in self._iter_lines():
            record = record_from_dict(data)
            by_index[record.message_index] = record
        return [by_index[index] for index in sorted(by_index)]

    # ------------------------------------------------------------------
    # fsck / repair
    # ------------------------------------------------------------------
    def salvage_to(self, destination: str | pathlib.Path) -> "CheckpointStore":
        """Write every intact record (last append wins) plus an adjusted
        manifest to a fresh checkpoint directory, and return its store.

        The repaired manifest keeps the source's identity (seed, scale,
        faults, budget) but recomputes ``completed`` from the salvaged
        records and marks the run ``interrupted`` so a bare ``resume``
        re-analyzes whatever corruption destroyed.  A torn/corrupt
        source manifest does not block the salvage: the records are
        copied and the repaired checkpoint is left without a manifest
        (``repro run --checkpoint <dest> --seed/--scale`` re-creates
        one and resumes from the salvaged records).
        """
        repaired = CheckpointStore(destination, durability=self.durability)
        by_index: dict[int, MessageRecord] = {}
        for data in self.scan().entries:
            record = record_from_dict(data)
            by_index[record.message_index] = record
        for index in sorted(by_index):
            repaired.append(by_index[index])
        repaired.close()
        try:
            manifest = self.read_manifest()
        except ValueError:
            manifest = None  # corrupt manifest: salvage records anyway
        if manifest is not None:
            manifest.completed = len(by_index)
            manifest.status = "interrupted"
            manifest.drained = []
            repaired.write_manifest(manifest)
        return repaired

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, retain: int | None = None) -> CompactionResult:
        """Rewrite ``records.jsonl`` keeping the *last* record per
        message index, in ascending index order.

        Always-on daemons (``repro serve``) append one line per verdict
        plus one per crash-retry re-delivery; over a month the file
        accumulates superseded appends and tolerated torn tails without
        bound.  Compaction rewrites it in place — atomically, via a
        temp file and ``os.replace`` — so that:

        - every surviving line is the newest append for its index
          (exactly the record :meth:`load_records` would have chosen);
        - surviving payload bytes are preserved verbatim (the JSON is
          *not* re-serialized; v1 lines are upgraded to the v2 CRC
          format around their original payload);
        - defective lines (including the torn tail) are dropped, so the
          output is ``fsck``-clean;
        - with ``retain=N``, only the N highest message indices survive
          (service mode: verdicts were already streamed to submitters,
          so the live file is a rolling window, not an archive).

        Thread-safe against concurrent :meth:`append`: the store lock is
        held for the whole rewrite, so an appender blocks rather than
        writing into the file being replaced.
        """
        with self._lock:
            self._durable.close()
            if not self.records_path.exists():
                return CompactionResult(0, 0, 0, 0, 0, 0, 0)
            raw = self.records_path.read_bytes()
            bytes_before = len(raw)
            chunks = raw.split(b"\n")
            if chunks and not chunks[-1]:
                chunks.pop()
            lines_before = len(chunks)
            corrupt = 0
            #: index -> verbatim JSON payload of its newest append.
            payloads: dict[int, str] = {}
            for chunk in chunks:
                try:
                    text = chunk.decode("utf-8").strip()
                except UnicodeDecodeError:
                    corrupt += 1
                    continue
                if not text:
                    continue
                payload, separator, crc = text.rpartition(_CRC_SEPARATOR)
                if separator:
                    if _crc_suffix(payload) != crc:
                        corrupt += 1
                        continue
                else:
                    payload = text  # v1 line: no suffix to verify
                try:
                    index = json.loads(payload).get("message_index")
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if not isinstance(index, int):
                    corrupt += 1
                    continue
                payloads[index] = payload
            duplicates = lines_before - corrupt - len(payloads)
            survivors = sorted(payloads)
            retired = 0
            if retain is not None and len(survivors) > retain:
                retired = len(survivors) - retain
                survivors = survivors[retired:]
            # Temp write -> fsync -> atomic rename -> *directory* fsync
            # (rename alone is not power-loss durable).  A crash — real
            # or injected torn-rename — leaves records.jsonl untouched
            # and the .compact.tmp behind for post-crash inspection.
            content = "".join(
                encode_record_line(payloads[index]) + "\n" for index in survivors
            )
            durable_write_text(
                self.records_path,
                content,
                durability=self.durability,
                suffix=self.COMPACT_TMP_SUFFIX,
            )
            bytes_after = self.records_path.stat().st_size
            return CompactionResult(
                lines_before=lines_before,
                lines_after=len(survivors),
                duplicates_dropped=duplicates,
                corrupt_dropped=corrupt,
                retired=retired,
                bytes_before=bytes_before,
                bytes_after=bytes_after,
            )

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, manifest: RunManifest) -> None:
        payload = json.dumps(manifest.as_dict(), indent=2, sort_keys=True)
        with self._lock:
            # Atomic replace: readers never observe a half-written
            # manifest, even across power loss (temp fsync + rename +
            # directory fsync).  Bounded retry rides out an ENOSPC
            # episode; torn-rename faults leave manifest.json.tmp
            # behind and the previous manifest intact.
            retrying(
                lambda: durable_write_text(
                    self.manifest_path, payload, durability=self.durability
                )
            )

    def read_manifest(self) -> RunManifest | None:
        if not self.manifest_path.exists():
            return None
        raw = self.manifest_path.read_text(encoding="utf-8")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as err:
            raise ManifestCorrupt(self.manifest_path, str(err)) from None
        if not isinstance(data, dict):
            raise ManifestCorrupt(self.manifest_path, "not a JSON object")
        return RunManifest.from_dict(data)
