"""Worker threads: each owns a private CrawlerBox.

A worker is deliberately dumb — pull a job, hand it to the runner's
handler, repeat until the queue closes.  All retry/checkpoint/stats
policy lives in :class:`~repro.runner.runner.CorpusRunner`; all
per-message analysis state (crawler, RNG, parser) lives in the worker's
own :class:`~repro.core.pipeline.CrawlerBox`, so nothing mutable is
shared between workers except the read-mostly world fabric.

Idle workers *block* on the queue condition (``JobQueue.get`` with no
timeout) — they never poll; a put/requeue/close notifies them.

Why threads survive alongside the process backend: they start
instantly, need no picklable config (any live world object works), and
run on platforms where ``fork`` is unavailable and ``spawn`` is
hostile (Windows services, frozen binaries, interactive sessions whose
worlds were built in-process).  The tradeoff is the GIL: CPU-bound
analysis throughput stays at roughly one core, so ``--executor
process`` is the default for parallel runs whenever a
:class:`~repro.runner.executor.RunnerConfig` is available.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.runner.queue import Job, JobQueue

#: handler(worker, job) -> None; must never raise.
JobHandler = Callable[["Worker", Job], None]


class Worker(threading.Thread):
    """One analysis thread with a private pipeline instance."""

    def __init__(self, worker_id: int, queue: JobQueue, box, handler: JobHandler):
        super().__init__(name=f"repro-worker-{worker_id}", daemon=True)
        self.worker_id = worker_id
        self.queue = queue
        #: The worker-private CrawlerBox (built by the runner's factory).
        self.box = box
        self._handler = handler
        self.processed = 0

    def run(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:  # queue closed and drained
                return
            self._handler(self, job)
            self.processed += 1


def spawn_workers(
    jobs: int,
    queue: JobQueue,
    box_factory: Callable[[int], object],
    handler: JobHandler,
) -> list[Worker]:
    """Build and start ``jobs`` workers, each with a fresh CrawlerBox."""
    workers = [
        Worker(worker_id, queue, box_factory(worker_id), handler)
        for worker_id in range(jobs)
    ]
    for worker in workers:
        worker.start()
    return workers
