"""Incremental, mergeable running counters for an in-flight run.

Progress reporting must not re-scan completed records: every counter
here updates in O(1) per finished record and two partial runs (for
example a checkpointed prefix and a live continuation) merge with
:meth:`RunningStats.merge`.  The definitions mirror the batch
aggregations in :mod:`repro.analysis` — ``update`` reuses the same
per-record predicates, so a finished run's snapshot agrees with the
Section V figures computed from the full record list.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.evasion import (
    _is_credential_message,
    _uses_recaptcha,
    _uses_turnstile,
)
from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory


@dataclass
class RunningStats:
    """Counters updated as records complete."""

    analyzed: int = 0
    categories: Counter = field(default_factory=Counter)
    spear: int = 0
    active: int = 0
    credential_messages: int = 0
    turnstile: int = 0
    recaptcha: int = 0
    faulty_qr: int = 0
    console_hijack: int = 0
    dead_lettered: int = 0
    retried: int = 0
    #: Per-stage profiling totals (populated only under ``--profile``;
    #: see :mod:`repro.runner.profile`).
    stage_calls: Counter = field(default_factory=Counter)
    stage_seconds: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    def update(self, record: MessageRecord) -> None:
        """Fold one finished record into the counters."""
        from repro.qr.scanner import extract_url_strict

        self.analyzed += 1
        self.categories[record.category] += 1
        if record.category == MessageCategory.ACTIVE_PHISHING:
            self.active += 1
            if record.spear_brand is not None:
                self.spear += 1
        if record.qr_payloads and any(
            extract_url_strict(payload) is None for _, payload in record.qr_payloads
        ):
            self.faulty_qr += 1
        if any(
            crawl.signals is not None and crawl.signals.console_hijacked
            for crawl in record.crawls
        ):
            self.console_hijack += 1
        if _is_credential_message(record):
            self.credential_messages += 1
            if any(_uses_turnstile(crawl) for crawl in record.crawls):
                self.turnstile += 1
            if any(_uses_recaptcha(crawl) for crawl in record.crawls):
                self.recaptcha += 1

    # ------------------------------------------------------------------
    def merge(self, other: "RunningStats") -> "RunningStats":
        """A new RunningStats combining two disjoint partial runs."""
        merged = RunningStats()
        for name in (
            "analyzed",
            "spear",
            "active",
            "credential_messages",
            "turnstile",
            "recaptcha",
            "faulty_qr",
            "console_hijack",
            "dead_lettered",
            "retried",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.categories = self.categories + other.categories
        merged.stage_calls = self.stage_calls + other.stage_calls
        merged.stage_seconds = self.stage_seconds + other.stage_seconds
        return merged

    # ------------------------------------------------------------------
    @property
    def spear_fraction(self) -> float:
        return self.spear / self.active if self.active else 0.0

    @property
    def turnstile_fraction(self) -> float:
        return self.turnstile / self.credential_messages if self.credential_messages else 0.0

    def as_dict(self) -> dict:
        return {
            "analyzed": self.analyzed,
            "categories": dict(self.categories),
            "spear": self.spear,
            "active": self.active,
            "credential_messages": self.credential_messages,
            "turnstile": self.turnstile,
            "recaptcha": self.recaptcha,
            "faulty_qr": self.faulty_qr,
            "console_hijack": self.console_hijack,
            "dead_lettered": self.dead_lettered,
            "retried": self.retried,
            "stages": {
                name: {"calls": self.stage_calls[name], "seconds": self.stage_seconds[name]}
                for name in sorted(self.stage_calls)
            },
        }

    @classmethod
    def from_records(cls, records: list[MessageRecord]) -> "RunningStats":
        stats = cls()
        for record in records:
            stats.update(record)
        return stats
