"""Incremental, mergeable running counters for an in-flight run.

Progress reporting must not re-scan completed records: every counter
here updates in O(1) per finished record and two partial runs (for
example a checkpointed prefix and a live continuation) merge with
:meth:`RunningStats.merge`.  The definitions mirror the batch
aggregations in :mod:`repro.analysis` — ``update`` reuses the same
per-record predicates, so a finished run's snapshot agrees with the
Section V figures computed from the full record list.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.evasion import (
    _is_credential_message,
    _uses_recaptcha,
    _uses_turnstile,
)
from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory


@dataclass
class RunningStats:
    """Counters updated as records complete."""

    analyzed: int = 0
    categories: Counter = field(default_factory=Counter)
    spear: int = 0
    active: int = 0
    credential_messages: int = 0
    turnstile: int = 0
    recaptcha: int = 0
    faulty_qr: int = 0
    console_hijack: int = 0
    dead_lettered: int = 0
    retried: int = 0
    #: Messages rejected by the ingestion guard (or reaped by the stall
    #: watchdog) with a durable :class:`~repro.mail.guard.QuarantineReport`.
    quarantined: int = 0
    #: Stages degraded to ``failed`` by the per-message work budget
    #: (:class:`repro._budget.BudgetExceeded`) — distinct from the
    #: network fault engine's ``fault_budget_exhausted``.
    budget_stage_failures: int = 0
    #: Per-stage profiling totals (populated only under ``--profile``;
    #: see :mod:`repro.runner.profile`).
    stage_calls: Counter = field(default_factory=Counter)
    stage_seconds: Counter = field(default_factory=Counter)
    #: Fault-injection resilience totals, folded from each record's
    #: :class:`~repro.web.resilient.FaultTelemetry` (all zero — and the
    #: manifest omits the ``faults`` block — when no engine is active).
    fault_requests: int = 0
    fault_retries: int = 0
    fault_backoff_seconds: float = 0.0
    fault_deadline_hits: int = 0
    fault_breaker_trips: int = 0
    fault_unreachable: int = 0
    fault_budget_exhausted: int = 0
    fault_enrich_failures: int = 0
    fault_kinds: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    def update(self, record: MessageRecord) -> None:
        """Fold one finished record into the counters."""
        from repro.qr.scanner import extract_url_strict

        self.analyzed += 1
        self.categories[record.category] += 1
        if record.quarantine is not None:
            self.quarantined += 1
        self.budget_stage_failures += sum(
            1
            for error in record.stage_errors.values()
            if error.startswith("BudgetExceeded")
        )
        if record.category == MessageCategory.ACTIVE_PHISHING:
            self.active += 1
            if record.spear_brand is not None:
                self.spear += 1
        if record.qr_payloads and any(
            extract_url_strict(payload) is None for _, payload in record.qr_payloads
        ):
            self.faulty_qr += 1
        if any(
            crawl.signals is not None and crawl.signals.console_hijacked
            for crawl in record.crawls
        ):
            self.console_hijack += 1
        if _is_credential_message(record):
            self.credential_messages += 1
            if any(_uses_turnstile(crawl) for crawl in record.crawls):
                self.turnstile += 1
            if any(_uses_recaptcha(crawl) for crawl in record.crawls):
                self.recaptcha += 1
        telemetry = record.fault_telemetry
        if telemetry is not None:
            self.fault_requests += telemetry.requests_attempted
            self.fault_retries += telemetry.retries
            self.fault_backoff_seconds += telemetry.backoff_seconds
            self.fault_deadline_hits += telemetry.deadline_hits
            self.fault_breaker_trips += telemetry.breaker_trips
            self.fault_unreachable += telemetry.unreachable
            self.fault_budget_exhausted += int(telemetry.budget_exhausted)
            self.fault_enrich_failures += telemetry.enrich_failures
            self.fault_kinds.update(telemetry.fault_kinds)

    # ------------------------------------------------------------------
    #: Scalar counters combined by summation in absorb/merge.
    _SCALAR_FIELDS = (
        "analyzed",
        "spear",
        "active",
        "credential_messages",
        "turnstile",
        "recaptcha",
        "faulty_qr",
        "console_hijack",
        "dead_lettered",
        "retried",
        "quarantined",
        "budget_stage_failures",
        "fault_requests",
        "fault_retries",
        "fault_backoff_seconds",
        "fault_deadline_hits",
        "fault_breaker_trips",
        "fault_unreachable",
        "fault_budget_exhausted",
        "fault_enrich_failures",
    )

    def absorb(self, other: "RunningStats") -> None:
        """Fold ``other`` into this instance in place.

        The parent side of the process backend's stats plane: workers
        accumulate a local shard per result frame and the parent absorbs
        one shard per frame instead of recomputing every per-record
        predicate on its single core.
        """
        for name in self._SCALAR_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.categories.update(other.categories)
        self.stage_calls.update(other.stage_calls)
        self.stage_seconds.update(other.stage_seconds)
        self.fault_kinds.update(other.fault_kinds)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """A new RunningStats combining two disjoint partial runs."""
        merged = RunningStats()
        merged.absorb(self)
        merged.absorb(other)
        return merged

    # ------------------------------------------------------------------
    @property
    def spear_fraction(self) -> float:
        return self.spear / self.active if self.active else 0.0

    @property
    def turnstile_fraction(self) -> float:
        return self.turnstile / self.credential_messages if self.credential_messages else 0.0

    @property
    def has_fault_activity(self) -> bool:
        """Any resilience counter is nonzero (a fault engine was live)."""
        return bool(
            self.fault_requests
            or self.fault_retries
            or self.fault_deadline_hits
            or self.fault_breaker_trips
            or self.fault_unreachable
            or self.fault_budget_exhausted
            or self.fault_enrich_failures
            or self.fault_kinds
        )

    def as_dict(self) -> dict:
        data = {
            "analyzed": self.analyzed,
            "categories": dict(self.categories),
            "spear": self.spear,
            "active": self.active,
            "credential_messages": self.credential_messages,
            "turnstile": self.turnstile,
            "recaptcha": self.recaptcha,
            "faulty_qr": self.faulty_qr,
            "console_hijack": self.console_hijack,
            "dead_lettered": self.dead_lettered,
            "retried": self.retried,
            "stages": {
                name: {"calls": self.stage_calls[name], "seconds": self.stage_seconds[name]}
                for name in sorted(self.stage_calls)
            },
        }
        # Hostile-input counters appear only when nonzero: clean-corpus
        # manifests keep the historical key set byte-for-byte.
        if self.quarantined:
            data["quarantined"] = self.quarantined
        if self.budget_stage_failures:
            data["budget_stage_failures"] = self.budget_stage_failures
        # Emitted only under an active fault engine: faults-off manifests
        # keep the historical key set byte-for-byte.
        if self.has_fault_activity:
            data["faults"] = {
                "requests": self.fault_requests,
                "retries": self.fault_retries,
                "backoff_seconds": round(self.fault_backoff_seconds, 6),
                "deadline_hits": self.fault_deadline_hits,
                "breaker_trips": self.fault_breaker_trips,
                "unreachable": self.fault_unreachable,
                "budget_exhausted": self.fault_budget_exhausted,
                "enrich_failures": self.fault_enrich_failures,
                "kinds": {kind: self.fault_kinds[kind] for kind in sorted(self.fault_kinds)},
            }
        return data

    @classmethod
    def from_records(cls, records: list[MessageRecord]) -> "RunningStats":
        stats = cls()
        for record in records:
            stats.update(record)
        return stats

    @classmethod
    def from_dict(cls, data: dict) -> "RunningStats":
        """Inverse of :meth:`as_dict` (absent optional keys read as 0).

        Service mode depends on this roundtrip: a restarted daemon whose
        checkpoint was compacted with a retention cap can no longer
        recount old records, so it restores the manifest's snapshot and
        keeps merging live updates into it.
        """
        stats = cls()
        for name in (
            "analyzed",
            "spear",
            "active",
            "credential_messages",
            "turnstile",
            "recaptcha",
            "faulty_qr",
            "console_hijack",
            "dead_lettered",
            "retried",
            "quarantined",
            "budget_stage_failures",
        ):
            setattr(stats, name, int(data.get(name, 0)))
        stats.categories = Counter(
            {category: int(count) for category, count in (data.get("categories") or {}).items()}
        )
        for name, entry in (data.get("stages") or {}).items():
            stats.stage_calls[name] = int(entry["calls"])
            stats.stage_seconds[name] = float(entry["seconds"])
        faults = data.get("faults") or {}
        stats.fault_requests = int(faults.get("requests", 0))
        stats.fault_retries = int(faults.get("retries", 0))
        stats.fault_backoff_seconds = float(faults.get("backoff_seconds", 0.0))
        stats.fault_deadline_hits = int(faults.get("deadline_hits", 0))
        stats.fault_breaker_trips = int(faults.get("breaker_trips", 0))
        stats.fault_unreachable = int(faults.get("unreachable", 0))
        stats.fault_budget_exhausted = int(faults.get("budget_exhausted", 0))
        stats.fault_enrich_failures = int(faults.get("enrich_failures", 0))
        stats.fault_kinds = Counter(
            {kind: int(count) for kind, count in (faults.get("kinds") or {}).items()}
        )
        return stats
